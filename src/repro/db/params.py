"""Execution-time binding of query parameters into logical plans.

A prepared plan may contain :class:`~repro.db.expressions.Parameter` leaves
(``?`` positional / ``:name`` named placeholders).  Binding substitutes each
placeholder with a :class:`~repro.db.expressions.Literal` carrying the
supplied value, producing an ordinary plan that any engine evaluates as
usual.  The substitution is a single cheap tree walk -- orders of magnitude
less work than the parse -> rewrite -> optimize pipeline it lets prepared
statements skip -- and it never mutates the input plan, so a cached plan can
be bound concurrently with different values.

Both execution engines call :func:`bind_parameters` at the top of
``execute``; an unbound placeholder reaching an engine is therefore always
reported as a :class:`ParameterError` rather than failing deep inside
expression evaluation.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Sequence, Union

from repro.db import algebra
from repro.db.expressions import (
    And, Arithmetic, Between, Case, Column, Comparison, Expression,
    FunctionCall, InList, IsNull, Like, Literal, Negate, Not, Or, Parameter,
)

#: Accepted binding collections: a sequence for ``?`` placeholders or a
#: mapping for ``:name`` placeholders (``None`` when the query has none).
Params = Union[None, Sequence[Any], Mapping[str, Any]]


class ParameterError(ValueError):
    """Raised when bindings do not match a statement's placeholders."""


# ---------------------------------------------------------------------------
# Collection.
# ---------------------------------------------------------------------------

def expression_parameters(expr: Expression) -> List[Parameter]:
    """All :class:`Parameter` leaves of ``expr`` in pre-order."""
    found: List[Parameter] = []
    _collect_expression(expr, found)
    return found


def _collect_expression(expr: Expression, found: List[Parameter]) -> None:
    if isinstance(expr, Parameter):
        found.append(expr)
        return
    for child in expr.children():
        _collect_expression(child, found)


def _plan_expressions(plan: algebra.Operator) -> List[Expression]:
    """Every expression embedded in ``plan`` (one level, this node only)."""
    if isinstance(plan, algebra.Selection):
        return [plan.predicate]
    if isinstance(plan, algebra.Projection):
        return [expr for expr, _ in plan.items]
    if isinstance(plan, algebra.Join):
        return [plan.predicate] if plan.predicate is not None else []
    if isinstance(plan, algebra.Aggregate):
        exprs: List[Expression] = [expr for expr, _ in plan.group_by]
        exprs.extend(agg.argument for agg in plan.aggregates
                     if agg.argument is not None)
        return exprs
    if isinstance(plan, algebra.OrderBy):
        return [expr for expr, _ in plan.keys]
    if isinstance(plan, algebra.Limit) and isinstance(plan.count, Expression):
        return [plan.count]
    return []


def plan_parameters(plan: algebra.Operator) -> List[Parameter]:
    """All :class:`Parameter` leaves of a plan tree, in plan order."""
    found: List[Parameter] = []
    for expr in _plan_expressions(plan):
        _collect_expression(expr, found)
    for child in plan.children():
        found.extend(plan_parameters(child))
    return found


# ---------------------------------------------------------------------------
# Binding.
# ---------------------------------------------------------------------------

class ParameterBinder:
    """Resolves placeholders against one set of bindings.

    Normalizes the bindings once (named mappings are lower-cased up front)
    and rebuilds only the subtrees that actually contain a placeholder --
    untouched nodes are returned identically, so binding is a single linear
    walk with minimal allocation, cheap enough for the per-execute hot path.
    """

    __slots__ = ("_positional", "_named")

    def __init__(self, params: Params) -> None:
        self._positional: Union[None, Sequence[Any]] = None
        self._named: Union[None, Mapping[str, Any]] = None
        if params is None:
            return
        if isinstance(params, Mapping):
            self._named = {str(name).lower(): value
                           for name, value in params.items()}
        elif not isinstance(params, str):
            self._positional = params

    def resolve(self, parameter: Parameter) -> Literal:
        key = parameter.key
        if isinstance(key, int):
            if self._positional is None:
                raise ParameterError(
                    "statement uses positional '?' placeholders; supply a "
                    "sequence of values"
                )
            if key >= len(self._positional):
                raise ParameterError(
                    f"statement expects at least {key + 1} positional "
                    f"parameters but {len(self._positional)} were supplied"
                )
            return Literal(self._positional[key])
        if self._named is None:
            raise ParameterError(
                "statement uses named ':name' placeholders; supply a mapping "
                "of values"
            )
        if key not in self._named:
            raise ParameterError(f"no value supplied for parameter :{key}")
        return Literal(self._named[key])

    def bind(self, expr: Expression) -> Expression:
        """``expr`` with placeholders substituted (``expr`` itself when none)."""
        return _bind_expr(expr, self)


def bind_expression(expr: Expression, params: Params) -> Expression:
    """Substitute every parameter of ``expr``; unchanged when there are none."""
    return _bind_expr(expr, ParameterBinder(params))


def _bind_expr(expr: Expression, binder: ParameterBinder) -> Expression:
    if isinstance(expr, Parameter):
        return binder.resolve(expr)
    if isinstance(expr, (Literal, Column)):
        return expr

    def bind(child: Expression) -> Expression:
        return _bind_expr(child, binder)

    if isinstance(expr, Comparison):
        left, right = bind(expr.left), bind(expr.right)
        if left is expr.left and right is expr.right:
            return expr
        return Comparison(expr.op, left, right)
    if isinstance(expr, Arithmetic):
        left, right = bind(expr.left), bind(expr.right)
        if left is expr.left and right is expr.right:
            return expr
        return Arithmetic(expr.op, left, right)
    if isinstance(expr, (And, Or)):
        operands = tuple(bind(op) for op in expr.operands)
        if all(new is old for new, old in zip(operands, expr.operands)):
            return expr
        return type(expr)(*operands)
    if isinstance(expr, Not):
        operand = bind(expr.operand)
        return expr if operand is expr.operand else Not(operand)
    if isinstance(expr, Negate):
        operand = bind(expr.operand)
        return expr if operand is expr.operand else Negate(operand)
    if isinstance(expr, Between):
        operand, low, high = bind(expr.operand), bind(expr.low), bind(expr.high)
        if operand is expr.operand and low is expr.low and high is expr.high:
            return expr
        return Between(operand, low, high)
    if isinstance(expr, InList):
        operand = bind(expr.operand)
        values = tuple(bind(v) for v in expr.values)
        if operand is expr.operand and \
                all(new is old for new, old in zip(values, expr.values)):
            return expr
        return InList(operand, values)
    if isinstance(expr, IsNull):
        operand = bind(expr.operand)
        return expr if operand is expr.operand else IsNull(operand, expr.negated)
    if isinstance(expr, Like):
        operand = bind(expr.operand)
        return expr if operand is expr.operand else Like(operand, expr.pattern)
    if isinstance(expr, FunctionCall):
        args = tuple(bind(a) for a in expr.args)
        if all(new is old for new, old in zip(args, expr.args)):
            return expr
        return FunctionCall(expr.name, args)
    if isinstance(expr, Case):
        whens = tuple((bind(w), bind(r)) for w, r in expr.whens)
        else_result = (bind(expr.else_result)
                       if expr.else_result is not None else None)
        operand = bind(expr.operand) if expr.operand is not None else None
        unchanged = (
            else_result is expr.else_result and operand is expr.operand
            and all(w is ow and r is orr
                    for (w, r), (ow, orr) in zip(whens, expr.whens))
        )
        return expr if unchanged else Case(whens, else_result, operand)
    # Unknown expression type: safe to pass through only if no placeholder
    # hides inside it -- fail loudly instead of silently dropping a binding.
    if expression_parameters(expr):
        raise ParameterError(
            f"cannot bind parameters inside unsupported expression type "
            f"{type(expr).__name__}"
        )
    return expr


def check_bindings(parameters: Sequence[Parameter], params: Params,
                   exact: bool = False) -> None:
    """Validate that ``params`` covers ``parameters``.

    With ``exact=False`` (the engine-level check) surplus values are allowed:
    the optimizer may prune a placeholder out of a cached plan, so an engine
    only requires that every placeholder it still sees is bound.  The session
    layer re-checks with ``exact=True`` against the placeholders of the
    original statement, which is where a wrong argument count is a user error.
    """
    if not parameters:
        if exact and params is not None and len(params) > 0:
            raise ParameterError(
                f"statement takes no parameters but {len(params)} were supplied"
            )
        return
    positional = [p.key for p in parameters if isinstance(p.key, int)]
    if positional:
        expected = max(positional) + 1
        if params is None or isinstance(params, (Mapping, str)):
            raise ParameterError(
                f"statement expects {expected} positional parameters; supply "
                "a sequence of values"
            )
        mismatch = (len(params) != expected) if exact else (len(params) < expected)
        if mismatch:
            raise ParameterError(
                f"statement expects {expected} positional parameters but "
                f"{len(params)} were supplied"
            )
        return
    names = {p.key for p in parameters}
    if params is None or not isinstance(params, Mapping):
        raise ParameterError(
            "statement expects named parameters "
            f"({', '.join(sorted(':' + str(n) for n in names))}); supply a mapping"
        )
    supplied = {str(name).lower() for name in params}
    missing = names - supplied
    if missing:
        raise ParameterError(
            "missing values for parameters: "
            + ", ".join(sorted(":" + str(n) for n in missing))
        )
    if exact:
        surplus = supplied - names
        if surplus:
            raise ParameterError(
                "unknown parameters supplied: "
                + ", ".join(sorted(":" + str(n) for n in surplus))
            )


def bind_parameters(plan: algebra.Operator, params: Params = None) -> algebra.Operator:
    """Return ``plan`` with every placeholder replaced by a bound literal.

    Plans without placeholders are returned as-is.  Mismatched bindings
    raise :class:`ParameterError` (missing values always; surplus values
    only under the session layer's exact check, see :func:`check_bindings`).
    """
    parameters = plan_parameters(plan)
    check_bindings(parameters, params)
    if not parameters:
        return plan
    return _bind_plan(plan, ParameterBinder(params))


def _bind_plan(plan: algebra.Operator, binder: ParameterBinder) -> algebra.Operator:
    if isinstance(plan, algebra.Selection):
        child = _bind_plan(plan.child, binder)
        predicate = _bind_expr(plan.predicate, binder)
        if child is plan.child and predicate is plan.predicate:
            return plan
        return algebra.Selection(child, predicate)
    if isinstance(plan, algebra.Projection):
        child = _bind_plan(plan.child, binder)
        items = tuple((_bind_expr(expr, binder), name) for expr, name in plan.items)
        if child is plan.child and \
                all(new is old for (new, _), (old, _) in zip(items, plan.items)):
            return plan
        return algebra.Projection(child, items)
    if isinstance(plan, algebra.Qualify):
        child = _bind_plan(plan.child, binder)
        return plan if child is plan.child else algebra.Qualify(child, plan.qualifier)
    if isinstance(plan, algebra.Distinct):
        child = _bind_plan(plan.child, binder)
        return plan if child is plan.child else algebra.Distinct(child)
    if isinstance(plan, algebra.Aggregate):
        return algebra.Aggregate(
            _bind_plan(plan.child, binder),
            tuple((_bind_expr(expr, binder), name)
                  for expr, name in plan.group_by),
            tuple(
                algebra.AggregateFunction(
                    agg.func,
                    _bind_expr(agg.argument, binder)
                    if agg.argument is not None else None,
                    agg.name,
                )
                for agg in plan.aggregates
            ),
        )
    if isinstance(plan, algebra.OrderBy):
        return algebra.OrderBy(
            _bind_plan(plan.child, binder),
            tuple((_bind_expr(expr, binder), descending)
                  for expr, descending in plan.keys),
        )
    if isinstance(plan, algebra.Limit):
        child = _bind_plan(plan.child, binder)
        count = plan.count
        if isinstance(count, Expression):
            count = _bind_expr(count, binder)
        if child is plan.child and count is plan.count:
            return plan
        return algebra.Limit(child, count)
    if isinstance(plan, algebra.Join):
        left = _bind_plan(plan.left, binder)
        right = _bind_plan(plan.right, binder)
        predicate = (_bind_expr(plan.predicate, binder)
                     if plan.predicate is not None else None)
        if left is plan.left and right is plan.right and predicate is plan.predicate:
            return plan
        return algebra.Join(left, right, predicate)
    if isinstance(plan, (algebra.CrossProduct, algebra.Union,
                         algebra.Difference, algebra.Intersection)):
        left = _bind_plan(plan.left, binder)
        right = _bind_plan(plan.right, binder)
        if left is plan.left and right is plan.right:
            return plan
        return type(plan)(left, right)
    return plan
