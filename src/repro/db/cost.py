"""Cardinality estimation and the engine cost model.

This module turns the statistics of :mod:`repro.db.stats` into the two
numbers the optimizer and the ``auto`` engine need:

* :func:`estimate_cardinality` -- estimated output rows of a plan node,
  using textbook System-R style selectivity rules (equality ``1/NDV``,
  equi-join ``|L|*|R| / max(NDV)``, range scans at a fixed default, AND as
  a product, OR by inclusion-exclusion);
* :func:`estimate_engine_cost` -- abstract cost of running a plan on a
  named engine, combining the estimated rows flowing through every node
  with per-engine constants calibrated from ``BENCH_engines.json`` (the
  committed engine shoot-out: warm sqlite beats columnar by ~4-19x per
  row, columnar beats the row engine by ~3-6x, while sqlite pays the
  largest per-query overhead for SQL compilation and Enc decode).

Estimates are deliberately cheap (one recursive walk, no data access) and
deliberately approximate: they only need to *rank* join orders and
engines, not predict wall-clock time.  When statistics are missing the
estimator falls back to neutral defaults so the optimizer degrades to the
rule-based behaviour instead of guessing wildly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.db import algebra
from repro.db.expressions import (
    And,
    Between,
    Column,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.db.stats import ColumnStats, TableStats

__all__ = [
    "DEFAULT_ROW_COUNT",
    "DEFAULT_SELECTIVITY",
    "ENGINE_COSTS",
    "EngineCost",
    "PlanEstimate",
    "cheapest_engine",
    "estimate_cardinality",
    "estimate_engine_cost",
    "estimate_plan",
    "explain_rows",
    "join_cardinality",
    "predicate_selectivity",
]

#: Assumed row count for relations without statistics.
DEFAULT_ROW_COUNT = 1000.0

#: Selectivity of a predicate the estimator cannot analyse.
DEFAULT_SELECTIVITY = 0.25

#: Selectivity of an equality against a column without NDV statistics.
DEFAULT_EQ_SELECTIVITY = 0.1

#: Selectivity of a range predicate (``<``, ``>=``, BETWEEN, LIKE).
RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class EngineCost:
    """Cost constants of one engine: per-row work and per-query overhead.

    ``per_row`` is the abstract cost of moving one tuple through one plan
    operator; ``overhead`` is the fixed per-query cost (dispatch, SQL
    compilation, result decode).  Units are arbitrary -- only ratios
    matter, and the ratios mirror ``BENCH_engines.json``.
    """

    per_row: float
    overhead: float


#: Per-engine cost constants, calibrated from BENCH_engines.json: the row
#: engine is the per-tuple baseline; the columnar engine amortizes
#: interpretation over batches (~4x cheaper per row, some batch setup);
#: warm sqlite is another ~6x cheaper per row but pays the largest fixed
#: cost for SQL compilation plus Enc encode/decode at the boundary.
ENGINE_COSTS: Dict[str, EngineCost] = {
    "row": EngineCost(per_row=1.0, overhead=20.0),
    "columnar": EngineCost(per_row=0.25, overhead=60.0),
    "sqlite": EngineCost(per_row=0.04, overhead=220.0),
}


class _Scope:
    """Column statistics visible at one plan node, keyed by name.

    Lookups accept bare and qualified names; a bare name shared by several
    relations in scope resolves to ``None`` (ambiguous), matching the
    conservative behaviour of the optimizer's name analysis.
    """

    __slots__ = ("_by_name", "_ambiguous")

    def __init__(self) -> None:
        self._by_name: Dict[str, ColumnStats] = {}
        self._ambiguous: set = set()

    def add(self, name: str, stats: ColumnStats) -> None:
        key = name.lower()
        if key in self._by_name or key in self._ambiguous:
            self._by_name.pop(key, None)
            self._ambiguous.add(key)
        else:
            self._by_name[key] = stats

    def lookup(self, column: Column) -> Optional[ColumnStats]:
        stats = self._by_name.get(column.full_name.lower())
        if stats is None and column.qualifier:
            stats = self._by_name.get(column.name.lower())
        return stats

    def merged(self, other: "_Scope") -> "_Scope":
        scope = _Scope()
        for source in (self, other):
            for key, stats in source._by_name.items():
                scope.add(key, stats)
            scope._ambiguous.update(source._ambiguous)
            for key in source._ambiguous:
                scope._by_name.pop(key, None)
        return scope


@dataclass
class PlanEstimate:
    """Estimated output of one plan node: rows plus visible column stats."""

    rows: float
    scope: _Scope


def _stats_lookup(stats: Any):
    """Normalize the ``stats`` argument to a ``name -> TableStats`` callable.

    Accepts a :class:`~repro.db.stats.StatsCatalog` (or anything with a
    ``table_stats`` method), a plain dict, a callable, or None.
    """
    if stats is None:
        return lambda name: None
    table_stats = getattr(stats, "table_stats", None)
    if callable(table_stats):
        return table_stats
    if isinstance(stats, dict):
        lowered = {key.lower(): value for key, value in stats.items()}
        return lambda name: lowered.get(name.lower())
    if callable(stats):
        return stats
    return lambda name: None


def _literal_side(expr: Expression) -> bool:
    """True when ``expr`` contains no column references (constant-ish)."""
    return not expr.columns()


def _column_operand(expr: Expression) -> Optional[Column]:
    """The expression itself when it is a bare column reference."""
    return expr if isinstance(expr, Column) else None


def _equality_selectivity(column: Optional[ColumnStats]) -> float:
    if column is None or column.ndv <= 0:
        return DEFAULT_EQ_SELECTIVITY
    return min(1.0, 1.0 / column.ndv)


def predicate_selectivity(predicate: Optional[Expression],
                          scope: _Scope) -> float:
    """Estimated fraction of rows that satisfy ``predicate``.

    Implements the classic rules: equality against a constant is
    ``1/NDV``; range comparisons and LIKE use fixed defaults; IS NULL uses
    the observed null fraction; IN sums equality selectivities; AND is a
    product (independence assumption); OR is inclusion-exclusion; NOT is
    the complement.  Anything else gets :data:`DEFAULT_SELECTIVITY`.
    """
    if predicate is None:
        return 1.0
    if isinstance(predicate, Literal):
        if predicate.value is True:
            return 1.0
        if predicate.value in (False, None):
            return 0.0
        return DEFAULT_SELECTIVITY
    if isinstance(predicate, And):
        result = 1.0
        for operand in predicate.operands:
            result *= predicate_selectivity(operand, scope)
        return result
    if isinstance(predicate, Or):
        result = 0.0
        for operand in predicate.operands:
            part = predicate_selectivity(operand, scope)
            result = result + part - result * part
        return min(1.0, result)
    if isinstance(predicate, Not):
        return max(0.0, 1.0 - predicate_selectivity(predicate.operand, scope))
    if isinstance(predicate, Comparison):
        left_col = _column_operand(predicate.left)
        right_col = _column_operand(predicate.right)
        if predicate.op == "=":
            if left_col is not None and _literal_side(predicate.right):
                return _equality_selectivity(scope.lookup(left_col))
            if right_col is not None and _literal_side(predicate.left):
                return _equality_selectivity(scope.lookup(right_col))
            if left_col is not None and right_col is not None:
                # Column = column inside one scope (e.g. a self-join key
                # after a cross product): treat like an equi-join key.
                left_stats = scope.lookup(left_col)
                right_stats = scope.lookup(right_col)
                ndv = max(
                    left_stats.ndv if left_stats else 0,
                    right_stats.ndv if right_stats else 0,
                )
                return min(1.0, 1.0 / ndv) if ndv > 0 else DEFAULT_EQ_SELECTIVITY
            return DEFAULT_EQ_SELECTIVITY
        if predicate.op in ("!=", "<>"):
            column = left_col if left_col is not None else right_col
            return max(0.0, 1.0 - _equality_selectivity(
                scope.lookup(column) if column is not None else None))
        return RANGE_SELECTIVITY
    if isinstance(predicate, Between):
        return RANGE_SELECTIVITY * 0.75
    if isinstance(predicate, InList):
        column = _column_operand(predicate.operand)
        per_value = _equality_selectivity(
            scope.lookup(column) if column is not None else None)
        return min(1.0, per_value * max(1, len(predicate.values)))
    if isinstance(predicate, IsNull):
        column = _column_operand(predicate.operand)
        stats = scope.lookup(column) if column is not None else None
        null_fraction = stats.null_fraction if stats is not None else 0.1
        return max(0.0, 1.0 - null_fraction) if predicate.negated else null_fraction
    if isinstance(predicate, Like):
        return RANGE_SELECTIVITY
    return DEFAULT_SELECTIVITY


def join_cardinality(left: PlanEstimate, right: PlanEstimate,
                     predicate: Optional[Expression]) -> float:
    """Estimated rows of ``left JOIN right ON predicate``.

    Each equi-join conjunct divides the cross-product cardinality by the
    larger key NDV (capped by the smaller input, which an FK join cannot
    exceed by much); remaining conjuncts contribute their plain
    selectivity against the merged scope.
    """
    rows = left.rows * right.rows
    if predicate is None:
        return rows
    merged = left.scope.merged(right.scope)
    conjuncts = (list(predicate.operands) if isinstance(predicate, And)
                 else [predicate])
    for conjunct in conjuncts:
        factor = None
        if isinstance(conjunct, Comparison) and conjunct.op == "=":
            left_col = _column_operand(conjunct.left)
            right_col = _column_operand(conjunct.right)
            if left_col is not None and right_col is not None:
                sides = []
                for column in (left_col, right_col):
                    stats = (left.scope.lookup(column)
                             or right.scope.lookup(column))
                    if stats is not None and stats.ndv > 0:
                        sides.append(stats.ndv)
                if sides:
                    factor = 1.0 / max(sides)
        if factor is None:
            factor = predicate_selectivity(conjunct, merged)
        rows *= factor
    return rows


def estimate_plan(plan: algebra.Operator, stats: Any = None) -> PlanEstimate:
    """Estimate rows and visible column statistics for ``plan``.

    ``stats`` is anything :func:`_stats_lookup` accepts (usually the
    session's :class:`~repro.db.stats.StatsCatalog`).  Missing statistics
    degrade to :data:`DEFAULT_ROW_COUNT` rows and default selectivities.
    """
    lookup = _stats_lookup(stats)
    return _estimate(plan, lookup, None)


def _estimate(plan: algebra.Operator, lookup, qualifier: Optional[str]
              ) -> PlanEstimate:
    if isinstance(plan, algebra.RelationRef):
        table: Optional[TableStats] = lookup(plan.name)
        scope = _Scope()
        rows = float(table.row_count) if table is not None else DEFAULT_ROW_COUNT
        if table is not None:
            prefix = qualifier or plan.effective_name
            for stats in table.columns.values():
                base = stats.name.split(".")[-1]
                scope.add(base, stats)
                scope.add(f"{prefix}.{base}", stats)
        return PlanEstimate(rows, scope)
    if isinstance(plan, algebra.Qualify):
        return _estimate(plan.child, lookup, plan.qualifier)
    if isinstance(plan, algebra.Selection):
        child = _estimate(plan.child, lookup, qualifier)
        selectivity = predicate_selectivity(plan.predicate, child.scope)
        return PlanEstimate(child.rows * selectivity, child.scope)
    if isinstance(plan, algebra.Projection):
        child = _estimate(plan.child, lookup, qualifier)
        scope = _Scope()
        for item, name in plan.items:
            if isinstance(item, Column):
                stats = child.scope.lookup(item)
                if stats is not None:
                    scope.add(name, stats)
        return PlanEstimate(child.rows, scope)
    if isinstance(plan, algebra.Join):
        left = _estimate(plan.left, lookup, qualifier)
        right = _estimate(plan.right, lookup, qualifier)
        rows = join_cardinality(left, right, plan.predicate)
        return PlanEstimate(rows, left.scope.merged(right.scope))
    if isinstance(plan, algebra.CrossProduct):
        left = _estimate(plan.left, lookup, qualifier)
        right = _estimate(plan.right, lookup, qualifier)
        return PlanEstimate(left.rows * right.rows,
                            left.scope.merged(right.scope))
    if isinstance(plan, algebra.Union):
        left = _estimate(plan.left, lookup, qualifier)
        right = _estimate(plan.right, lookup, qualifier)
        return PlanEstimate(left.rows + right.rows, left.scope)
    if isinstance(plan, (algebra.Difference, algebra.Intersection)):
        left = _estimate(plan.left, lookup, qualifier)
        right = _estimate(plan.right, lookup, qualifier)
        if isinstance(plan, algebra.Intersection):
            return PlanEstimate(min(left.rows, right.rows), left.scope)
        return PlanEstimate(left.rows, left.scope)
    if isinstance(plan, algebra.Distinct):
        child = _estimate(plan.child, lookup, qualifier)
        return PlanEstimate(child.rows, child.scope)
    if isinstance(plan, algebra.Aggregate):
        child = _estimate(plan.child, lookup, qualifier)
        if not plan.group_by:
            return PlanEstimate(min(child.rows, 1.0), _Scope())
        groups = 1.0
        for expr, _name in plan.group_by:
            stats = child.scope.lookup(expr) if isinstance(expr, Column) else None
            groups *= stats.ndv if stats is not None and stats.ndv > 0 else 10.0
        return PlanEstimate(min(child.rows, groups), _Scope())
    if isinstance(plan, algebra.OrderBy):
        child = _estimate(plan.child, lookup, qualifier)
        return PlanEstimate(child.rows, child.scope)
    if isinstance(plan, algebra.Limit):
        child = _estimate(plan.child, lookup, qualifier)
        count = plan.count
        if isinstance(count, Literal):
            count = count.value
        if isinstance(count, (int, float)) and not isinstance(count, bool):
            return PlanEstimate(min(child.rows, float(count)), child.scope)
        return PlanEstimate(child.rows, child.scope)
    # Unknown operator: be neutral.
    children = getattr(plan, "child", None)
    if children is not None:
        return _estimate(children, lookup, qualifier)
    return PlanEstimate(DEFAULT_ROW_COUNT, _Scope())


def estimate_cardinality(plan: algebra.Operator, stats: Any = None) -> float:
    """Estimated number of output rows of ``plan`` (see :func:`estimate_plan`)."""
    return estimate_plan(plan, stats).rows


def _processed_rows(plan: algebra.Operator, lookup) -> Tuple[float, float]:
    """(total rows flowing through all nodes, output rows) of ``plan``."""
    estimate = _estimate(plan, lookup, None)
    total = estimate.rows
    for child in plan.children():
        child_total, _ = _processed_rows(child, lookup)
        total += child_total
    return total, estimate.rows


def estimate_engine_cost(plan: algebra.Operator, engine_name: str,
                         stats: Any = None) -> float:
    """Abstract cost of running ``plan`` on ``engine_name``.

    ``overhead + per_row * (rows through every node)`` using the
    calibrated :data:`ENGINE_COSTS`; unknown engines cost like the row
    engine so a custom registration is never penalized by the model.
    """
    constants = ENGINE_COSTS.get(engine_name, ENGINE_COSTS["row"])
    lookup = _stats_lookup(stats)
    total, _ = _processed_rows(plan, lookup)
    return constants.overhead + constants.per_row * total


def cheapest_engine(plan: algebra.Operator, candidates: List[str],
                    stats: Any = None) -> Tuple[str, Dict[str, float]]:
    """The cheapest of ``candidates`` for ``plan``, plus all costs.

    Ties break toward the earlier candidate, so callers list their
    preference order.  Returns ``(name, {candidate: cost})``.
    """
    costs = {name: estimate_engine_cost(plan, name, stats)
             for name in candidates}
    best = min(candidates, key=lambda name: costs[name])
    return best, costs


def explain_rows(plan: algebra.Operator, stats: Any = None
                 ) -> List[Tuple[int, str, float]]:
    """Per-node ``(depth, description, estimated rows)`` in render order.

    The same pre-order walk as :meth:`algebra.Operator.render`, annotated
    with the cardinality estimate of each node -- the backbone of
    ``EXPLAIN`` output.
    """
    lookup = _stats_lookup(stats)
    lines: List[Tuple[int, str, float]] = []

    def walk(node: algebra.Operator, depth: int) -> None:
        estimate = _estimate(node, lookup, None)
        lines.append((depth, node.describe(), estimate.rows))
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return lines
