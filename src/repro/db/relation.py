"""K-relations: relations whose tuples carry semiring annotations.

A :class:`KRelation` maps rows (tuples of attribute values) to annotations
from a chosen semiring.  Rows mapped to the semiring's zero are absent by
convention; the class maintains that invariant so that iteration, counting
and equality behave like the mathematical object.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.semirings import BOOLEAN, NATURAL, Semiring
from repro.semirings.base import SemiringHomomorphism
from repro.db.schema import RelationSchema

Row = Tuple[Any, ...]

#: Absence marker distinct from any semiring element (even a hypothetical
#: ``None``-valued one) for the insert fast path.
_ABSENT = object()


class KRelation:
    """A finite map from rows to non-zero semiring annotations."""

    def __init__(self, schema: RelationSchema, semiring: Semiring,
                 data: Optional[Dict[Row, Any]] = None) -> None:
        self.schema = schema
        self.semiring = semiring
        self._data: Dict[Row, Any] = {}
        #: Mutation counter: bumped by every ``add`` / ``set_annotation`` so
        #: caching consumers (the SQLite engine's table loader) can detect
        #: in-place changes without hashing the contents.
        self._version = 0
        if data:
            for row, annotation in data.items():
                self.add(row, annotation)

    # -- construction -------------------------------------------------------

    def add(self, row: Sequence[Any], annotation: Any = None) -> None:
        """Add ``annotation`` (default 1_K) to the row's current annotation."""
        self.add_validated(self.schema.validate_row(row), annotation)

    def add_validated(self, row: Row, annotation: Any = None) -> None:
        """Like :meth:`add` for a row already validated against this schema.

        Skips the per-row schema re-validation (the semiring merge and the
        mutation-counter bump still apply); bulk callers that validate a
        whole statement up front -- the session's ``INSERT`` path -- use it
        to avoid paying validation per target relation per row.
        """
        semiring = self.semiring
        if annotation is None:
            annotation = semiring.one
        semiring.check(annotation)
        self._version += 1
        current = self._data.get(row, _ABSENT)
        if current is _ABSENT:
            # New tuple: ``plus(zero, x) == x`` in every lawful semiring, so
            # skip the generic merge -- bulk inserts are almost entirely
            # first sightings, and the merge would allocate per row.
            if not semiring.is_zero(annotation):
                self._data[row] = annotation
            return
        combined = semiring.plus(current, annotation)
        if semiring.is_zero(combined):
            self._data.pop(row, None)
        else:
            self._data[row] = combined

    def set_annotation(self, row: Sequence[Any], annotation: Any) -> None:
        """Overwrite the annotation of ``row`` (removing it if zero)."""
        row = self.schema.validate_row(row)
        self.semiring.check(annotation)
        self._version += 1
        if self.semiring.is_zero(annotation):
            self._data.pop(row, None)
        else:
            self._data[row] = annotation

    @classmethod
    def _from_validated(cls, schema: RelationSchema, semiring: Semiring,
                        data: Dict[Row, Any]) -> "KRelation":
        """Wrap an already-validated ``row -> non-zero annotation`` mapping.

        Internal fast path for operators that copy or transform whole
        relations: it skips the per-row schema validation and semiring checks
        of :meth:`add`, which the source rows have already passed.  The caller
        transfers ownership of ``data``.
        """
        relation = cls.__new__(cls)
        relation.schema = schema
        relation.semiring = semiring
        relation._data = data
        relation._version = 0
        return relation

    def copy(self) -> "KRelation":
        """Shallow copy (rows and annotations are immutable values)."""
        return KRelation._from_validated(self.schema, self.semiring, dict(self._data))

    # -- access -------------------------------------------------------------

    def annotation(self, row: Sequence[Any]) -> Any:
        """Annotation of ``row`` (0_K if absent)."""
        return self._data.get(tuple(row), self.semiring.zero)

    def __getitem__(self, row: Sequence[Any]) -> Any:
        return self.annotation(row)

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._data

    def rows(self) -> Iterator[Row]:
        """Iterate over rows with non-zero annotations."""
        return iter(self._data.keys())

    def items(self) -> Iterator[Tuple[Row, Any]]:
        """Iterate over ``(row, annotation)`` pairs."""
        return iter(self._data.items())

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __len__(self) -> int:
        """Number of distinct rows with non-zero annotations."""
        return len(self._data)

    def total_multiplicity(self) -> Any:
        """Semiring sum over all annotations (bag cardinality for N)."""
        return self.semiring.sum(self._data.values())

    def is_empty(self) -> bool:
        """True if no row carries a non-zero annotation."""
        return not self._data

    # -- transformations ------------------------------------------------------

    def map_annotations(self, homomorphism: SemiringHomomorphism) -> "KRelation":
        """Apply a semiring homomorphism to every annotation.

        The result is a relation over the homomorphism's target semiring.
        Rows whose image is the target's zero are dropped.
        """
        target = homomorphism.target
        is_zero = target.is_zero
        data = {}
        for row, annotation in self._data.items():
            image = homomorphism(annotation)
            if not is_zero(image):
                data[row] = image
        return KRelation._from_validated(self.schema, target, data)

    def rename(self, new_name: str) -> "KRelation":
        """Same contents under a renamed schema."""
        return KRelation._from_validated(
            self.schema.rename(new_name), self.semiring, dict(self._data)
        )

    def to_rows(self, expand_multiplicity: bool = False) -> List[Row]:
        """Materialize rows as a list.

        With ``expand_multiplicity`` and an integer-annotated relation (bag
        semantics), each row appears as many times as its multiplicity,
        mirroring how a conventional DBMS would return duplicates.
        """
        if not expand_multiplicity:
            return sorted(self._data.keys(), key=_row_sort_key)
        expanded: List[Row] = []
        for row, annotation in sorted(self._data.items(), key=lambda kv: _row_sort_key(kv[0])):
            count = annotation if isinstance(annotation, int) and not isinstance(annotation, bool) else 1
            expanded.extend([row] * count)
        return expanded

    # -- comparisons ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KRelation):
            return NotImplemented
        return (
            self.semiring == other.semiring
            and self.schema.attribute_names == other.schema.attribute_names
            and self._data == other._data
        )

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable; not hashable
        raise TypeError("KRelation objects are mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"<KRelation {self.schema.name} [{self.semiring.name}] "
            f"{len(self._data)} rows>"
        )

    def pretty(self, limit: int = 20) -> str:
        """Human-readable table rendering (for examples and debugging)."""
        header = list(self.schema.attribute_names) + [self.semiring.name]
        rows = [
            [repr(v) for v in row] + [repr(annotation)]
            for row, annotation in sorted(self.items(), key=lambda kv: _row_sort_key(kv[0]))
        ]
        shown = rows[:limit]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in shown)) if shown else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in shown:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        if len(rows) > limit:
            lines.append(f"... ({len(rows) - limit} more rows)")
        return "\n".join(lines)


def _row_sort_key(row: Row) -> Tuple:
    """Total order over heterogeneous rows (None < numbers < strings < other)."""
    key = []
    for value in row:
        if value is None:
            key.append((0, ""))
        elif isinstance(value, bool):
            key.append((1, int(value)))
        elif isinstance(value, (int, float)):
            key.append((1, value))
        elif isinstance(value, str):
            key.append((2, value))
        else:
            key.append((3, str(value)))
    return tuple(key)


def bag_relation(schema: RelationSchema, rows: Iterable[Sequence[Any]]) -> KRelation:
    """Build an N-relation from an iterable of rows (duplicates accumulate)."""
    relation = KRelation(schema, NATURAL)
    for row in rows:
        relation.add(row, 1)
    return relation


def set_relation(schema: RelationSchema, rows: Iterable[Sequence[Any]]) -> KRelation:
    """Build a B-relation from an iterable of rows (duplicates collapse)."""
    relation = KRelation(schema, BOOLEAN)
    for row in rows:
        relation.add(row, True)
    return relation
