"""Database instances: named collections of K-relations over one semiring."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.semirings import Semiring
from repro.semirings.base import SemiringHomomorphism
from repro.db.relation import KRelation
from repro.db.schema import DatabaseSchema, SchemaError


class Database:
    """A collection of :class:`KRelation` instances sharing one semiring.

    Relation names are case-insensitive, matching the SQL front-end.
    """

    def __init__(self, semiring: Semiring, name: str = "db",
                 engine: Optional[object] = None) -> None:
        self.semiring = semiring
        self.name = name
        #: Default execution engine for queries over this database: an engine
        #: name or instance, or None for the process-wide default (see
        #: :func:`repro.db.engine.get_engine`).
        self.engine = engine
        #: Optional persistent backing store
        #: (:class:`repro.api.store.UADBStore`).  When set, the SQLite
        #: execution engine attaches to the store file directly instead of
        #: loading a private in-memory copy of the relations.  Copies made
        #: with :meth:`copy` / :meth:`map_annotations` are in-memory and do
        #: not inherit it.
        self.store = None
        self._relations: Dict[str, KRelation] = {}

    # -- population ----------------------------------------------------------

    def add_relation(self, relation: KRelation, replace: bool = False) -> None:
        """Register ``relation``; it must use the database's semiring."""
        if relation.semiring != self.semiring:
            raise ValueError(
                f"relation {relation.schema.name!r} uses semiring "
                f"{relation.semiring.name}, database uses {self.semiring.name}"
            )
        key = relation.schema.name.lower()
        if key in self._relations and not replace:
            raise SchemaError(f"relation {relation.schema.name!r} already exists")
        self._relations[key] = relation

    def drop_relation(self, name: str) -> None:
        """Remove a relation by name (no-op if absent)."""
        self._relations.pop(name.lower(), None)

    # -- access ---------------------------------------------------------------

    def relation(self, name: str) -> KRelation:
        """Return the relation called ``name`` (case-insensitive)."""
        try:
            return self._relations[name.lower()]
        except KeyError as exc:
            raise SchemaError(f"database {self.name!r} has no relation {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._relations

    def __iter__(self) -> Iterator[KRelation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def relation_names(self) -> Tuple[str, ...]:
        """Names of the registered relations in registration order."""
        return tuple(rel.schema.name for rel in self._relations.values())

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema (derived from the registered relations)."""
        schema = DatabaseSchema()
        for relation in self._relations.values():
            schema.add(relation.schema)
        return schema

    # -- transformations --------------------------------------------------------

    def map_annotations(self, homomorphism: SemiringHomomorphism,
                        name: Optional[str] = None) -> "Database":
        """Apply a semiring homomorphism to every relation's annotations."""
        result = Database(homomorphism.target, name or self.name, engine=self.engine)
        for relation in self._relations.values():
            result.add_relation(relation.map_annotations(homomorphism))
        return result

    def copy(self, name: Optional[str] = None) -> "Database":
        """Deep copy of relation contents (schemas are shared, rows copied)."""
        result = Database(self.semiring, name or self.name, engine=self.engine)
        for relation in self._relations.values():
            result.add_relation(relation.copy())
        return result

    def __repr__(self) -> str:
        return f"<Database {self.name!r} [{self.semiring.name}] {len(self)} relations>"
