"""Per-table statistics for cost-based optimization.

The statistics layer feeds the cost model (:mod:`repro.db.cost`) and the
optimizer's join-reordering pass (:func:`repro.db.optimizer.reorder_joins`)
with the small set of facts cardinality estimation needs:

* **row counts** -- distinct annotated tuples per relation,
* **per-column NDV** -- number of distinct values, exact up to
  :data:`SKETCH_SIZE` values and a KMV (k-minimum-values) estimate beyond,
* **per-column min/max** -- for comparable (numeric/string) values,
* **per-column null fraction**.

Statistics are collected in one pass on registration
(:meth:`StatsCatalog.collect`) and maintained *incrementally* on ``INSERT``
(:meth:`StatsCatalog.update_rows`) -- the sketches are mergeable, so the
insert path never rescans the table.  Coherence with the relation contents
uses the same fingerprint discipline as the storage layer: every
:class:`TableStats` remembers the :class:`~repro.db.relation.KRelation`
identity and mutation counter (``_version``) it describes, and
:meth:`StatsCatalog.fresh` / :meth:`StatsCatalog.refresh` detect and repair
out-of-band mutations.

Persistence rides in the WAL store (the ``uadb_stats`` table, see
:meth:`repro.api.store.UADBStore.save_stats`): statistics survive the
process alongside the data they describe, and the *stats version* counter
(:meth:`repro.api.store.UADBStore.stats_version`) invalidates cached plans
whose join order was chosen under stale statistics.

Distinct-value sketches hash with :func:`zlib.crc32` (stable across
processes), never Python's salted ``hash()``, so persisted sketches merge
correctly after a reload.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.relation import KRelation, Row

__all__ = [
    "SKETCH_SIZE",
    "ColumnStats",
    "DistinctSketch",
    "StatsCatalog",
    "TableStats",
]

#: Distinct hashes kept per column: exact NDV up to this many distinct
#: values, a KMV estimate beyond.
SKETCH_SIZE = 256

#: The hash space of :func:`zlib.crc32` (the KMV scale factor).
_HASH_SPACE = 2 ** 32


def _stable_hash(value: Any) -> int:
    """A process-stable 32-bit hash of ``value`` (crc32 of its repr).

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), which
    would break persisted sketches; crc32 of the repr is stable, cheap, and
    collision-safe enough for NDV estimation at catalog scale.
    """
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


class DistinctSketch:
    """A mergeable NDV sketch: exact small sets, KMV beyond ``k`` values.

    Keeps the ``k`` smallest stable hashes seen.  While fewer than ``k``
    distinct hashes arrived the estimate is exact; once saturated, the
    classic k-minimum-values estimator ``(k - 1) * H / kth_smallest`` takes
    over (``H`` = hash space size).  Adding is O(1) amortized; merging two
    sketches is a set union re-capped to ``k``.
    """

    __slots__ = ("k", "hashes", "saturated", "_largest")

    def __init__(self, k: int = SKETCH_SIZE) -> None:
        self.k = k
        self.hashes: set = set()
        self.saturated = False
        #: Cached ``max(hashes)`` while saturated (None = recompute).  Keeps
        #: the common no-replacement add O(1); without it every value of a
        #: high-NDV column pays an O(k) scan, which dominates bulk ingest.
        self._largest: Any = None

    def add(self, value: Any) -> None:
        """Account one (non-null) value."""
        self.add_hash(_stable_hash(value))

    def add_hash(self, hashed: int) -> None:
        """Account one pre-hashed value (the merge/restore path)."""
        hashes = self.hashes
        if hashed in hashes:
            return
        if len(hashes) < self.k:
            hashes.add(hashed)
            return
        self.saturated = True
        largest = self._largest
        if largest is None:
            largest = self._largest = max(hashes)
        if hashed < largest:
            hashes.discard(largest)
            hashes.add(hashed)
            self._largest = max(hashes)

    def estimate(self) -> int:
        """The estimated number of distinct values seen."""
        if not self.saturated:
            return len(self.hashes)
        kth = max(self.hashes)
        return max(self.k, round((self.k - 1) * _HASH_SPACE / (kth + 1)))

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready form (sorted hashes keep the file diffable)."""
        return {"k": self.k, "saturated": self.saturated,
                "hashes": sorted(self.hashes)}

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "DistinctSketch":
        """Rebuild a sketch persisted by :meth:`to_json`."""
        sketch = cls(int(payload.get("k", SKETCH_SIZE)))
        sketch.hashes = set(payload.get("hashes", ()))
        sketch.saturated = bool(payload.get("saturated", False))
        return sketch


#: Value types whose min/max survive the JSON round trip.
_ORDERED_JSON_TYPES = (int, float, str)


class ColumnStats:
    """Statistics of one column: NDV sketch, min/max, null counts."""

    __slots__ = ("name", "sketch", "null_count", "value_count",
                 "minimum", "maximum", "orderable")

    def __init__(self, name: str) -> None:
        self.name = name
        self.sketch = DistinctSketch()
        self.null_count = 0
        self.value_count = 0
        #: Smallest / largest comparable value seen (None while unknown).
        self.minimum: Any = None
        self.maximum: Any = None
        #: False once incomparable (mixed-type) values defeated min/max.
        self.orderable = True

    def add(self, value: Any) -> None:
        """Account one value of the column."""
        self.value_count += 1
        if value is None:
            self.null_count += 1
            return
        self.sketch.add(value)
        if not self.orderable or not isinstance(value, _ORDERED_JSON_TYPES):
            self.orderable = isinstance(value, bool) and self.orderable
            if not self.orderable:
                self.minimum = self.maximum = None
                return
        try:
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        except TypeError:
            # Mixed types (e.g. int vs str in an ANY column): give up on
            # range statistics, keep NDV and null counts.
            self.orderable = False
            self.minimum = self.maximum = None

    @property
    def ndv(self) -> int:
        """Estimated number of distinct non-null values."""
        return self.sketch.estimate()

    @property
    def null_fraction(self) -> float:
        """Fraction of values that are NULL (0.0 when the column is empty)."""
        if not self.value_count:
            return 0.0
        return self.null_count / self.value_count

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready form for the store's ``uadb_stats`` table."""
        return {
            "name": self.name,
            "sketch": self.sketch.to_json(),
            "null_count": self.null_count,
            "value_count": self.value_count,
            "minimum": self.minimum if self.orderable else None,
            "maximum": self.maximum if self.orderable else None,
            "orderable": self.orderable,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "ColumnStats":
        """Rebuild column statistics persisted by :meth:`to_json`."""
        stats = cls(payload["name"])
        stats.sketch = DistinctSketch.from_json(payload.get("sketch", {}))
        stats.null_count = int(payload.get("null_count", 0))
        stats.value_count = int(payload.get("value_count", 0))
        stats.minimum = payload.get("minimum")
        stats.maximum = payload.get("maximum")
        stats.orderable = bool(payload.get("orderable", True))
        return stats

    def __repr__(self) -> str:
        return (f"<ColumnStats {self.name!r} ndv={self.ndv} "
                f"nulls={self.null_fraction:.2f}>")


class TableStats:
    """Statistics of one relation, fingerprinted against its contents.

    ``row_count`` counts distinct annotated tuples (the quantity every
    engine iterates over).  The fingerprint (relation identity +
    ``_version``) is in-memory only; reloaded statistics start unpinned and
    are re-pinned by :meth:`StatsCatalog.refresh`.
    """

    __slots__ = ("name", "row_count", "columns", "_relation", "_fingerprint")

    def __init__(self, name: str, column_names: Sequence[str]) -> None:
        self.name = name
        self.row_count = 0
        #: Column statistics in schema order, keyed by lower-cased base name.
        self.columns: Dict[str, ColumnStats] = {
            column.lower().split(".")[-1]: ColumnStats(column)
            for column in column_names
        }
        self._relation: Optional[KRelation] = None
        self._fingerprint = -1

    # -- collection ---------------------------------------------------------

    @classmethod
    def collect(cls, relation: KRelation) -> "TableStats":
        """One-pass full collection over ``relation``."""
        stats = cls(relation.schema.name,
                    relation.schema.attribute_names)
        stats.update_rows(relation.rows())
        stats.row_count = len(relation)  # exact, not merge-approximated
        stats.pin(relation)
        return stats

    def update_rows(self, rows: Iterable[Row]) -> None:
        """Incrementally account newly inserted rows.

        ``row_count`` treats every inserted row as new; an insert that only
        raises the multiplicity of an existing tuple over-counts by one --
        an acceptable estimation error that a later :meth:`refresh` repairs.
        """
        column_stats = list(self.columns.values())
        count = 0
        for row in rows:
            count += 1
            for stats, value in zip(column_stats, row):
                stats.add(value)
        self.row_count += count

    def pin(self, relation: KRelation) -> None:
        """Record which relation state these statistics describe."""
        self._relation = relation
        self._fingerprint = relation._version

    def fresh(self, relation: KRelation) -> bool:
        """True while ``relation`` is unchanged since :meth:`pin`."""
        return (self._relation is relation
                and self._fingerprint == relation._version)

    # -- lookups used by the cost model --------------------------------------

    def column(self, name: str) -> Optional[ColumnStats]:
        """Statistics for a column by (possibly qualified) name."""
        return self.columns.get(name.lower().split(".")[-1])

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> str:
        """Serialize for the store's ``uadb_stats`` table."""
        return json.dumps({
            "name": self.name,
            "row_count": self.row_count,
            "columns": [stats.to_json() for stats in self.columns.values()],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "TableStats":
        """Rebuild table statistics persisted by :meth:`to_json`."""
        data = json.loads(payload)
        stats = cls(data["name"], [])
        stats.row_count = int(data.get("row_count", 0))
        for column_payload in data.get("columns", ()):
            column = ColumnStats.from_json(column_payload)
            stats.columns[column.name.lower().split(".")[-1]] = column
        return stats

    def __repr__(self) -> str:
        return f"<TableStats {self.name!r} rows={self.row_count}>"


class StatsCatalog:
    """All table statistics of one catalog, with store persistence.

    The session owns one catalog per connection and attaches it to its
    databases as ``database.stats`` so the evaluator and the ``auto``
    engine can reach it; the optimizer receives it through
    ``optimize_plan(..., stats=...)``.
    """

    def __init__(self, store: Optional[object] = None) -> None:
        self._tables: Dict[str, TableStats] = {}
        self._store = store
        self._loaded_version = -1
        if store is not None:
            self.reload()

    # -- lookups --------------------------------------------------------------

    def table_stats(self, name: str) -> Optional[TableStats]:
        """Statistics for relation ``name`` (case-insensitive), or None."""
        return self._tables.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    # -- maintenance ----------------------------------------------------------

    def collect(self, relation: KRelation) -> TableStats:
        """(Re)collect full statistics for ``relation`` and persist them."""
        stats = TableStats.collect(relation)
        self._tables[relation.schema.name.lower()] = stats
        self._persist(stats)
        return stats

    def update_rows(self, name: str, rows: Sequence[Row]) -> None:
        """Incrementally account inserted ``rows`` (the INSERT hot path).

        Unknown relations are collected lazily on the next :meth:`refresh`;
        the incremental path never rescans the table.
        """
        stats = self._tables.get(name.lower())
        if stats is None:
            return
        stats.update_rows(rows)
        self._persist(stats)

    def adopt(self, relation: KRelation) -> TableStats:
        """Trust loaded statistics for ``relation`` or recollect them.

        Used on the store-reopen path: persisted statistics whose row count
        still matches the loaded relation are pinned to it as-is; anything
        else (no statistics, or drifted counts) triggers a fresh scan.
        """
        stats = self._tables.get(relation.schema.name.lower())
        if stats is not None and stats.row_count == len(relation):
            stats.pin(relation)
            return stats
        return self.collect(relation)

    def mark_current(self, relation: KRelation) -> None:
        """Re-pin ``relation``'s statistics after the in-memory mutation."""
        stats = self._tables.get(relation.schema.name.lower())
        if stats is not None:
            stats.pin(relation)

    def fresh(self, relation: KRelation) -> bool:
        """True while the stored statistics match ``relation`` exactly."""
        stats = self._tables.get(relation.schema.name.lower())
        return stats is not None and stats.fresh(relation)

    def refresh(self, database) -> None:
        """Repair statistics for any relation mutated out of band.

        The fast path is one fingerprint check per relation (the same
        discipline as the store's table sync), so calling this per query is
        cheap.
        """
        for relation in database:
            if not self.fresh(relation):
                self.collect(relation)

    def drop(self, name: str) -> None:
        """Forget statistics for ``name`` (dropped/replaced relations)."""
        self._tables.pop(name.lower(), None)

    # -- persistence ----------------------------------------------------------

    def _persist(self, stats: TableStats) -> None:
        if self._store is None:
            return
        try:
            self._store.save_stats(stats.name, stats.to_json())
        except Exception:  # pragma: no cover - stats loss is never fatal
            pass

    def reload(self) -> None:
        """Load persisted statistics from the store (reopen path)."""
        if self._store is None:
            return
        try:
            payloads = self._store.load_all_stats()
        except Exception:  # pragma: no cover - a statless store is fine
            return
        for name, payload in payloads.items():
            try:
                self._tables[name.lower()] = TableStats.from_json(payload)
            except (ValueError, KeyError):
                continue
        self._loaded_version = getattr(self._store, "stats_version", -1)

    def maybe_reload(self) -> None:
        """Re-read persisted statistics when another connection advanced them."""
        if self._store is None:
            return
        version = getattr(self._store, "stats_version", -1)
        if version != self._loaded_version:
            self.reload()

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Row counts and per-column NDVs as a JSON-ready dict (for tests
        and observability)."""
        return {
            name: {
                "row_count": stats.row_count,
                "columns": {
                    column.name: {"ndv": column.ndv,
                                  "null_fraction": column.null_fraction}
                    for column in stats.columns.values()
                },
            }
            for name, stats in sorted(self._tables.items())
        }

    def __repr__(self) -> str:
        return f"<StatsCatalog {len(self._tables)} tables>"
