"""An in-memory, semiring-annotated relational database engine.

This package is the *substrate* the UA-DB reproduction runs on.  The paper
implements UA-DBs as a query-rewriting front-end on top of a commercial DBMS;
here the backend is a small but complete relational engine:

* :mod:`repro.db.schema` -- attributes, relation schemas, database schemas,
* :mod:`repro.db.relation` -- K-relations (annotation-carrying relations) and
  convenience constructors for bag/set relations,
* :mod:`repro.db.database` -- named collections of relations,
* :mod:`repro.db.expressions` -- scalar expressions and predicates,
* :mod:`repro.db.algebra` -- relational algebra operator trees (RA+ plus
  distinct, aggregation, ordering needed by the workload queries),
* :mod:`repro.db.optimizer` -- logical plan rewrites (pushdown, pruning, ...),
* :mod:`repro.db.engine` -- pluggable execution engines (row, columnar),
* :mod:`repro.db.evaluator` -- the optimize-then-execute facade,
* :mod:`repro.db.sql` -- a SQL subset front-end (lexer, parser, translator).
"""

from repro.db.schema import Attribute, RelationSchema, DatabaseSchema, DataType
from repro.db.relation import KRelation, bag_relation, set_relation
from repro.db.database import Database
from repro.db.evaluator import evaluate
from repro.db.engine import (
    ColumnarEngine,
    ExecutionEngine,
    RowEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.db.optimizer import optimize_plan

__all__ = [
    "Attribute",
    "RelationSchema",
    "DatabaseSchema",
    "DataType",
    "KRelation",
    "bag_relation",
    "set_relation",
    "Database",
    "evaluate",
    "ColumnarEngine",
    "ExecutionEngine",
    "RowEngine",
    "available_engines",
    "get_engine",
    "register_engine",
    "optimize_plan",
]
