"""Relational algebra operator trees.

The paper's formal results cover RA+ (selection, projection, join /
cross-product, union).  The engine additionally supports duplicate
elimination, renaming/qualification, grouping with aggregation, ordering and
limits because the evaluation workloads (TPC-H-style queries, MayBMS-style
confidence queries) need them.  Only the RA+ core participates in the UA-DB
rewriting and correctness theorems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.db.expressions import Expression


class Operator:
    """Base class for relational algebra operators."""

    def children(self) -> Tuple["Operator", ...]:
        """Child operators (empty for leaves)."""
        return ()

    def describe(self) -> str:
        """One-line description used in plan rendering."""
        return type(self).__name__

    def render(self, indent: int = 0) -> str:
        """Multi-line textual rendering of the plan tree."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    # Number of non-leaf operators; used by the Figure 10 experiment to
    # characterize query complexity.
    def operator_count(self) -> int:
        """Number of operators in the tree (excluding relation references)."""
        own = 0 if isinstance(self, RelationRef) else 1
        return own + sum(child.operator_count() for child in self.children())


@dataclass(frozen=True)
class RelationRef(Operator):
    """A reference to a stored relation, optionally under an alias."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        """Alias if present, else the relation name."""
        return self.alias or self.name

    def describe(self) -> str:
        if self.alias:
            return f"Relation({self.name} AS {self.alias})"
        return f"Relation({self.name})"


@dataclass(frozen=True)
class Qualify(Operator):
    """Prefix every column name of the input with ``qualifier.``.

    Used by the SQL translator when a FROM item has an alias or participates
    in a multi-relation FROM clause, so that qualified column references
    resolve unambiguously.
    """

    child: Operator
    qualifier: str

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Qualify({self.qualifier})"


@dataclass(frozen=True)
class Selection(Operator):
    """Keep rows satisfying ``predicate`` (sigma)."""

    child: Operator
    predicate: Expression

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Selection({self.predicate.to_sql()})"


@dataclass(frozen=True)
class Projection(Operator):
    """Generalized projection: a list of ``(expression, output name)`` items (pi)."""

    child: Operator
    items: Tuple[Tuple[Expression, str], ...]

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    @property
    def output_names(self) -> Tuple[str, ...]:
        """Names of the produced columns, in order."""
        return tuple(name for _, name in self.items)

    def describe(self) -> str:
        cols = ", ".join(f"{expr.to_sql()} AS {name}" for expr, name in self.items)
        return f"Projection({cols})"


@dataclass(frozen=True)
class CrossProduct(Operator):
    """Cartesian product of two inputs (x)."""

    left: Operator
    right: Operator

    def children(self) -> Tuple[Operator, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Join(Operator):
    """Theta join: cross product filtered by ``predicate`` (None = cross product)."""

    left: Operator
    right: Operator
    predicate: Optional[Expression] = None

    def children(self) -> Tuple[Operator, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        if self.predicate is None:
            return "Join(TRUE)"
        return f"Join({self.predicate.to_sql()})"


@dataclass(frozen=True)
class Union(Operator):
    """Bag union (UNION ALL); schemas must be union-compatible."""

    left: Operator
    right: Operator

    def children(self) -> Tuple[Operator, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Difference(Operator):
    """Annotation difference (EXCEPT ALL): left annotations monus right annotations.

    Not part of RA+; requires the semiring to have a monus (e.g. N, B, N[X]).
    Under bag semantics this is SQL's ``EXCEPT ALL``; collapsing the result
    with :class:`Distinct` yields set difference.  The UA-DB extension in
    :mod:`repro.extensions.uapdb` gives this operator certain-answer bounds.
    """

    left: Operator
    right: Operator

    def children(self) -> Tuple[Operator, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Intersection(Operator):
    """Annotation intersection (INTERSECT ALL): the GLB of the two annotations.

    Not part of RA+; well defined for any l-semiring.  Under bag semantics the
    result multiplicity is the minimum of the two input multiplicities.
    """

    left: Operator
    right: Operator

    def children(self) -> Tuple[Operator, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Distinct(Operator):
    """Duplicate elimination: collapse every non-zero annotation to 1_K."""

    child: Operator

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)


@dataclass(frozen=True)
class AggregateFunction:
    """One aggregate in a GROUP BY query: ``func(argument) AS name``."""

    func: str
    argument: Optional[Expression]
    name: str

    _SUPPORTED = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.func.lower() not in self._SUPPORTED:
            raise ValueError(f"unsupported aggregate function {self.func!r}")


@dataclass(frozen=True)
class Aggregate(Operator):
    """Grouping and aggregation (gamma).

    Not part of RA+; provided for workload queries.  Group rows are annotated
    with 1_K (each group exists once) unless the evaluator is asked to
    propagate certainty, which the UA-DB front-end does separately.
    """

    child: Operator
    group_by: Tuple[Tuple[Expression, str], ...]
    aggregates: Tuple[AggregateFunction, ...]

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def describe(self) -> str:
        groups = ", ".join(name for _, name in self.group_by)
        aggs = ", ".join(f"{a.func}(...) AS {a.name}" for a in self.aggregates)
        return f"Aggregate(group by [{groups}]; {aggs})"


@dataclass(frozen=True)
class OrderBy(Operator):
    """Sort specification: ``(expression, descending)`` pairs.

    Ordering only affects :class:`Limit` and result rendering; relations are
    unordered collections.
    """

    child: Operator
    keys: Tuple[Tuple[Expression, bool], ...]

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Limit(Operator):
    """Keep the first ``count`` rows according to the child's ordering.

    ``count`` is either a plain non-negative integer or an
    :class:`~repro.db.expressions.Expression` (a ``Parameter`` placeholder or
    the ``Literal`` it was bound to), so ``LIMIT ?`` / ``LIMIT :n`` statements
    can be prepared once and executed with different row counts.  Engines
    normalize it with :func:`repro.db.engine.common.resolve_limit_count`.
    """

    child: Operator
    count: object

    def describe(self) -> str:
        if isinstance(self.count, Expression):
            return f"Limit({self.count.to_sql()})"
        return f"Limit({self.count})"

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)


def natural_join_predicate(left_names: Sequence[str], right_names: Sequence[str]):
    """Columns shared by two schemas (helper for building natural joins)."""
    left_lower = {name.lower() for name in left_names}
    return [name for name in right_names if name.lower() in left_lower]
