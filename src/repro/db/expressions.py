"""Scalar expressions and predicates evaluated over rows.

Expressions follow SQL's three-valued logic: comparisons involving NULL
(``None``) evaluate to *unknown* (represented as ``None``), and the boolean
connectives follow Kleene logic.  Selections keep a row only when the
predicate evaluates to ``True``, which is exactly what the Libkin baseline
relies on and what a conventional SQL engine does.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class ExpressionError(ValueError):
    """Raised for malformed expressions or unresolvable column references."""


class _Ambiguous:
    """Sentinel marking ambiguous unqualified column names."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<ambiguous>"


_AMBIGUOUS = _Ambiguous()


class RowEnvironment:
    """Maps column names (qualified and bare) to values for one row."""

    __slots__ = ("_full", "_short")

    def __init__(self, column_names: Sequence[str], row: Sequence[Any]) -> None:
        self._full: Dict[str, Any] = {}
        self._short: Dict[str, Any] = {}
        seen_bases = set()
        for name, value in zip(column_names, row):
            lowered = name.lower()
            self._full[lowered] = value
            base = lowered.split(".")[-1]
            if base in seen_bases:
                self._short[base] = _AMBIGUOUS
            else:
                self._short[base] = value
                seen_bases.add(base)

    def lookup(self, name: str, qualifier: Optional[str] = None) -> Any:
        """Resolve a column reference, honoring qualifiers and suffix matching."""
        if qualifier:
            key = f"{qualifier}.{name}".lower()
            if key in self._full:
                return self._full[key]
            # Fall back: the column may be stored unqualified (single relation).
            bare = name.lower()
            if bare in self._full:
                return self._full[bare]
            raise ExpressionError(f"unknown column {qualifier}.{name}")
        lowered = name.lower()
        if lowered in self._full:
            return self._full[lowered]
        if lowered in self._short:
            value = self._short[lowered]
            if value is _AMBIGUOUS:
                raise ExpressionError(f"ambiguous column reference {name!r}")
            return value
        raise ExpressionError(f"unknown column {name!r}")


class RowEnvironmentBuilder:
    """Builds :class:`RowEnvironment` objects for many rows of one schema.

    ``RowEnvironment.__init__`` lowers, splits and dedupes the column names
    for every single row -- pure waste inside an operator loop where the
    names never change.  The builder does that name analysis once and then
    stamps out per-row environments with two plain dict constructions.
    """

    __slots__ = ("_full_keys", "_short_items")

    def __init__(self, column_names: Sequence[str]) -> None:
        self._full_keys = tuple(name.lower() for name in column_names)
        short_items: List[Tuple[str, int]] = []
        seen: Dict[str, int] = {}
        for index, lowered in enumerate(self._full_keys):
            base = lowered.split(".")[-1]
            if base in seen:
                short_items[seen[base]] = (base, -1)  # ambiguous
            else:
                seen[base] = len(short_items)
                short_items.append((base, index))
        self._short_items = tuple(short_items)

    def build(self, row: Sequence[Any]) -> RowEnvironment:
        """An environment for ``row`` (same semantics as ``RowEnvironment``)."""
        env = RowEnvironment.__new__(RowEnvironment)
        env._full = dict(zip(self._full_keys, row))
        env._short = {
            base: (_AMBIGUOUS if index < 0 else row[index])
            for base, index in self._short_items
        }
        return env


class NameLookup:
    """Column-name resolution maps built once and reused many times.

    Applies exactly the precedence rules of :meth:`RowEnvironment.lookup`
    (qualified name, then bare-name fallback, then unambiguous suffix match),
    but maps names to arbitrary payloads instead of one row's values.  The
    columnar engine (payload = column vectors) and the plan optimizer
    (payload = expressions or canonical names) build on this class so their
    static resolution can never drift from the row engine's per-row lookup.
    ``RowEnvironment`` keeps its own inlined copy of the rules because it is
    rebuilt per tuple on the row engine's hot path.
    """

    __slots__ = ("_full", "_short")

    def __init__(self, names: Sequence[str], payloads: Sequence[Any]) -> None:
        self._full: Dict[str, Any] = {}
        self._short: Dict[str, Any] = {}
        seen_bases = set()
        for name, payload in zip(names, payloads):
            lowered = name.lower()
            self._full[lowered] = payload
            base = lowered.split(".")[-1]
            if base in seen_bases:
                self._short[base] = _AMBIGUOUS
            else:
                self._short[base] = payload
                seen_bases.add(base)

    def lookup(self, name: str, qualifier: Optional[str] = None) -> Any:
        """Resolve a reference; raises :class:`ExpressionError` on failure."""
        if qualifier:
            key = f"{qualifier}.{name}".lower()
            if key in self._full:
                return self._full[key]
            bare = name.lower()
            if bare in self._full:
                return self._full[bare]
            raise ExpressionError(f"unknown column {qualifier}.{name}")
        lowered = name.lower()
        if lowered in self._full:
            return self._full[lowered]
        if lowered in self._short:
            payload = self._short[lowered]
            if payload is _AMBIGUOUS:
                raise ExpressionError(f"ambiguous column reference {name!r}")
            return payload
        raise ExpressionError(f"unknown column {name!r}")

    def find(self, name: str, qualifier: Optional[str] = None) -> Any:
        """Like :meth:`lookup` but returns None on unknown/ambiguous names."""
        try:
            return self.lookup(name, qualifier)
        except ExpressionError:
            return None


class Expression:
    """Base class for scalar expressions."""

    def evaluate(self, env: RowEnvironment) -> Any:
        """Evaluate against a row environment."""
        raise NotImplementedError

    def columns(self) -> List["Column"]:
        """All column references appearing in the expression (pre-order)."""
        return []

    def children(self) -> Tuple["Expression", ...]:
        """Direct subexpressions, in evaluation order.

        The canonical traversal hook: generic walkers (parameter collection,
        plan binding, ...) use it so a new expression type only has to
        override ``children`` once to be visible to all of them.  Leaves
        inherit the empty default.
        """
        return ()

    def __repr__(self) -> str:
        return self.to_sql()

    def to_sql(self) -> str:
        """Render the expression as SQL text (best effort, for debugging)."""
        raise NotImplementedError


@dataclass(frozen=True, repr=False)
class Literal(Expression):
    """A constant value (numbers, strings, booleans or NULL)."""

    value: Any

    def evaluate(self, env: RowEnvironment) -> Any:
        return self.value

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True, repr=False)
class Column(Expression):
    """A reference to a column, optionally qualified by a relation alias."""

    name: str
    qualifier: Optional[str] = None

    def evaluate(self, env: RowEnvironment) -> Any:
        return env.lookup(self.name, self.qualifier)

    def columns(self) -> List["Column"]:
        return [self]

    @property
    def full_name(self) -> str:
        """Qualified name if a qualifier is present, else the bare name."""
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def to_sql(self) -> str:
        return self.full_name


@dataclass(frozen=True, repr=False)
class Parameter(Expression):
    """A query parameter placeholder (``?`` positional or ``:name`` named).

    Parameters are leaves like :class:`Literal`, but they carry no value: they
    are substituted with literals at execution time (see
    :func:`repro.db.params.bind_parameters`).  ``key`` is a 0-based integer
    for positional placeholders and a lower-cased string for named ones.
    Evaluating an unbound parameter is an error -- it means a plan containing
    placeholders reached an engine without bindings.
    """

    key: Any

    @property
    def placeholder(self) -> str:
        """The placeholder as it appeared in the SQL text (best effort)."""
        if isinstance(self.key, int):
            return "?"
        return f":{self.key}"

    def evaluate(self, env: RowEnvironment) -> Any:
        raise ExpressionError(
            f"unbound query parameter {self.placeholder!r}; supply bindings via "
            "execute(sql, params) or evaluate(..., params=...)"
        )

    def to_sql(self) -> str:
        return self.placeholder


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True, repr=False)
class Comparison(Expression):
    """A binary comparison using three-valued logic for NULLs."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, env: RowEnvironment) -> Optional[bool]:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if left is None or right is None:
            return None
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError:
            # Mixed-type comparisons (e.g. string vs number) are unknown.
            return None

    def columns(self) -> List[Column]:
        return self.left.columns() + self.right.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True, repr=False)
class And(Expression):
    """Kleene conjunction over any number of operands."""

    operands: Tuple[Expression, ...]

    def __init__(self, *operands: Expression) -> None:
        flat: List[Expression] = []
        for op in operands:
            if isinstance(op, And):
                flat.extend(op.operands)
            else:
                flat.append(op)
        object.__setattr__(self, "operands", tuple(flat))

    def evaluate(self, env: RowEnvironment) -> Optional[bool]:
        saw_unknown = False
        for operand in self.operands:
            value = operand.evaluate(env)
            if value is False:
                return False
            if value is None:
                saw_unknown = True
        return None if saw_unknown else True

    def columns(self) -> List[Column]:
        return [c for op in self.operands for c in op.columns()]

    def children(self) -> Tuple[Expression, ...]:
        return self.operands

    def to_sql(self) -> str:
        return "(" + " AND ".join(op.to_sql() for op in self.operands) + ")"


@dataclass(frozen=True, repr=False)
class Or(Expression):
    """Kleene disjunction over any number of operands."""

    operands: Tuple[Expression, ...]

    def __init__(self, *operands: Expression) -> None:
        flat: List[Expression] = []
        for op in operands:
            if isinstance(op, Or):
                flat.extend(op.operands)
            else:
                flat.append(op)
        object.__setattr__(self, "operands", tuple(flat))

    def evaluate(self, env: RowEnvironment) -> Optional[bool]:
        saw_unknown = False
        for operand in self.operands:
            value = operand.evaluate(env)
            if value is True:
                return True
            if value is None:
                saw_unknown = True
        return None if saw_unknown else False

    def columns(self) -> List[Column]:
        return [c for op in self.operands for c in op.columns()]

    def children(self) -> Tuple[Expression, ...]:
        return self.operands

    def to_sql(self) -> str:
        return "(" + " OR ".join(op.to_sql() for op in self.operands) + ")"


@dataclass(frozen=True, repr=False)
class Not(Expression):
    """Kleene negation."""

    operand: Expression

    def evaluate(self, env: RowEnvironment) -> Optional[bool]:
        value = self.operand.evaluate(env)
        if value is None:
            return None
        return not value

    def columns(self) -> List[Column]:
        return self.operand.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        return f"(NOT {self.operand.to_sql()})"


_ARITHMETIC: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0 else None,
}


@dataclass(frozen=True, repr=False)
class Arithmetic(Expression):
    """Binary arithmetic; NULL-propagating."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, env: RowEnvironment) -> Any:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if left is None or right is None:
            return None
        try:
            return _ARITHMETIC[self.op](left, right)
        except TypeError:
            return None

    def columns(self) -> List[Column]:
        return self.left.columns() + self.right.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True, repr=False)
class Negate(Expression):
    """Unary numeric negation; NULL-propagating."""

    operand: Expression

    def evaluate(self, env: RowEnvironment) -> Any:
        value = self.operand.evaluate(env)
        return None if value is None else -value

    def columns(self) -> List[Column]:
        return self.operand.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        return f"(-{self.operand.to_sql()})"


@dataclass(frozen=True, repr=False)
class Between(Expression):
    """``expr BETWEEN low AND high`` with three-valued logic."""

    operand: Expression
    low: Expression
    high: Expression

    def evaluate(self, env: RowEnvironment) -> Optional[bool]:
        value = self.operand.evaluate(env)
        low = self.low.evaluate(env)
        high = self.high.evaluate(env)
        if value is None or low is None or high is None:
            return None
        try:
            return low <= value <= high
        except TypeError:
            return None

    def columns(self) -> List[Column]:
        return self.operand.columns() + self.low.columns() + self.high.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand, self.low, self.high)

    def to_sql(self) -> str:
        return f"({self.operand.to_sql()} BETWEEN {self.low.to_sql()} AND {self.high.to_sql()})"


@dataclass(frozen=True, repr=False)
class InList(Expression):
    """``expr IN (v1, v2, ...)`` with three-valued logic."""

    operand: Expression
    values: Tuple[Expression, ...]

    def evaluate(self, env: RowEnvironment) -> Optional[bool]:
        value = self.operand.evaluate(env)
        if value is None:
            return None
        saw_unknown = False
        for candidate in self.values:
            other = candidate.evaluate(env)
            if other is None:
                saw_unknown = True
            elif value == other:
                return True
        return None if saw_unknown else False

    def columns(self) -> List[Column]:
        cols = self.operand.columns()
        for value in self.values:
            cols.extend(value.columns())
        return cols

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,) + self.values

    def to_sql(self) -> str:
        inner = ", ".join(v.to_sql() for v in self.values)
        return f"({self.operand.to_sql()} IN ({inner}))"


@dataclass(frozen=True, repr=False)
class IsNull(Expression):
    """``expr IS NULL`` / ``expr IS NOT NULL`` (never unknown)."""

    operand: Expression
    negated: bool = False

    def evaluate(self, env: RowEnvironment) -> bool:
        is_null = self.operand.evaluate(env) is None
        return not is_null if self.negated else is_null

    def columns(self) -> List[Column]:
        return self.operand.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"


@dataclass(frozen=True, repr=False)
class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: str

    def evaluate(self, env: RowEnvironment) -> Optional[bool]:
        value = self.operand.evaluate(env)
        if value is None:
            return None
        regex = re.escape(self.pattern).replace("%", ".*").replace("_", ".")
        return re.fullmatch(regex, str(value)) is not None

    def columns(self) -> List[Column]:
        return self.operand.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        return f"({self.operand.to_sql()} LIKE '{self.pattern}')"


@dataclass(frozen=True, repr=False)
class Case(Expression):
    """Searched or simple CASE expression."""

    whens: Tuple[Tuple[Expression, Expression], ...]
    else_result: Optional[Expression] = None
    operand: Optional[Expression] = None

    def evaluate(self, env: RowEnvironment) -> Any:
        if self.operand is not None:
            subject = self.operand.evaluate(env)
            for when_value, result in self.whens:
                if subject is not None and subject == when_value.evaluate(env):
                    return result.evaluate(env)
        else:
            for condition, result in self.whens:
                if condition.evaluate(env) is True:
                    return result.evaluate(env)
        if self.else_result is not None:
            return self.else_result.evaluate(env)
        return None

    def columns(self) -> List[Column]:
        cols: List[Column] = []
        if self.operand is not None:
            cols.extend(self.operand.columns())
        for condition, result in self.whens:
            cols.extend(condition.columns())
            cols.extend(result.columns())
        if self.else_result is not None:
            cols.extend(self.else_result.columns())
        return cols

    def children(self) -> Tuple[Expression, ...]:
        parts: List[Expression] = []
        if self.operand is not None:
            parts.append(self.operand)
        for condition, result in self.whens:
            parts.extend((condition, result))
        if self.else_result is not None:
            parts.append(self.else_result)
        return tuple(parts)

    def to_sql(self) -> str:
        parts = ["CASE"]
        if self.operand is not None:
            parts.append(self.operand.to_sql())
        for condition, result in self.whens:
            parts.append(f"WHEN {condition.to_sql()} THEN {result.to_sql()}")
        if self.else_result is not None:
            parts.append(f"ELSE {self.else_result.to_sql()}")
        parts.append("END")
        return " ".join(parts)


def _sql_least(*args: Any) -> Any:
    present = [a for a in args if a is not None]
    return min(present) if present else None


def _sql_greatest(*args: Any) -> Any:
    present = [a for a in args if a is not None]
    return max(present) if present else None


def _sql_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _rect_contains(rect: Any, point: Any) -> Optional[bool]:
    """Spatial containment check used by the geocoding example.

    ``rect`` is ``((lat1, lon1), (lat2, lon2))`` and ``point`` is
    ``(lat, lon)``; corner order does not matter.
    """
    if rect is None or point is None:
        return None
    (lat1, lon1), (lat2, lon2) = rect
    lat, lon = point
    return (min(lat1, lat2) <= lat <= max(lat1, lat2)
            and min(lon1, lon2) <= lon <= max(lon1, lon2))


#: Registry of scalar functions available to :class:`FunctionCall`.
SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": lambda x: None if x is None else abs(x),
    "least": _sql_least,
    "greatest": _sql_greatest,
    "coalesce": _sql_coalesce,
    "upper": lambda s: None if s is None else str(s).upper(),
    "lower": lambda s: None if s is None else str(s).lower(),
    "length": lambda s: None if s is None else len(str(s)),
    "round": lambda x, digits=0: None if x is None else round(x, int(digits)),
    "sqrt": lambda x: None if x is None or x < 0 else math.sqrt(x),
    "contains": _rect_contains,
}


@dataclass(frozen=True, repr=False)
class FunctionCall(Expression):
    """A call to a registered scalar function."""

    name: str
    args: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.name.lower() not in SCALAR_FUNCTIONS:
            raise ExpressionError(f"unknown scalar function {self.name!r}")

    def evaluate(self, env: RowEnvironment) -> Any:
        func = SCALAR_FUNCTIONS[self.name.lower()]
        return func(*(arg.evaluate(env) for arg in self.args))

    def columns(self) -> List[Column]:
        return [c for arg in self.args for c in arg.columns()]

    def children(self) -> Tuple[Expression, ...]:
        return self.args

    def to_sql(self) -> str:
        inner = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.name}({inner})"


def conjunction(predicates: Sequence[Expression]) -> Expression:
    """AND together a list of predicates (TRUE literal if the list is empty)."""
    predicates = [p for p in predicates if p is not None]
    if not predicates:
        return Literal(True)
    if len(predicates) == 1:
        return predicates[0]
    return And(*predicates)
