"""Schemas: attributes, relation schemas and database schemas."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class DataType(enum.Enum):
    """Attribute data types supported by the engine.

    The engine is dynamically typed; types are advisory and used for
    validation, pretty-printing and workload generation.  ``ANY`` accepts any
    value including ``None`` (SQL NULL).
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"
    ANY = "any"

    def accepts(self, value: Any) -> bool:
        """Return True if ``value`` is a legal instance of this type (NULL always is)."""
        if value is None:
            return True
        if self is DataType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is DataType.STRING:
            return isinstance(value, str)
        if self is DataType.BOOLEAN:
            return isinstance(value, bool)
        return True


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relation schema."""

    name: str
    data_type: DataType = DataType.ANY

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")

    def __str__(self) -> str:
        return self.name


class SchemaError(ValueError):
    """Raised for malformed schemas or schema mismatches."""


@dataclass(frozen=True)
class RelationSchema:
    """A relation name plus an ordered list of attributes.

    Attribute names must be unique (case-insensitive, since the SQL front-end
    is case-insensitive for identifiers).
    """

    name: str
    attributes: Tuple[Attribute, ...]

    def __init__(self, name: str, attributes: Iterable[Attribute | str]) -> None:
        attrs = tuple(
            attr if isinstance(attr, Attribute) else Attribute(attr)
            for attr in attributes
        )
        seen = set()
        for attr in attrs:
            lowered = attr.name.lower()
            if lowered in seen:
                raise SchemaError(f"duplicate attribute {attr.name!r} in relation {name!r}")
            seen.add(lowered)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Names of the attributes, in order."""
        return tuple(attr.name for attr in self.attributes)

    def index_of(self, attribute: str) -> int:
        """Position of ``attribute`` (case-insensitive); raises SchemaError if absent."""
        lowered = attribute.lower()
        for index, attr in enumerate(self.attributes):
            if attr.name.lower() == lowered:
                return index
        raise SchemaError(f"relation {self.name!r} has no attribute {attribute!r}")

    def has_attribute(self, attribute: str) -> bool:
        """True if the schema contains ``attribute`` (case-insensitive)."""
        lowered = attribute.lower()
        return any(attr.name.lower() == lowered for attr in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the :class:`Attribute` called ``name``."""
        return self.attributes[self.index_of(name)]

    def project(self, names: Sequence[str], relation_name: Optional[str] = None) -> "RelationSchema":
        """Schema resulting from projecting onto ``names`` (kept in given order)."""
        return RelationSchema(
            relation_name or self.name,
            tuple(self.attribute(name) for name in names),
        )

    def rename(self, new_name: str) -> "RelationSchema":
        """Same attributes under a different relation name."""
        return RelationSchema(new_name, self.attributes)

    def concat(self, other: "RelationSchema", name: Optional[str] = None) -> "RelationSchema":
        """Concatenate two schemas (cross product / join result schema).

        Colliding attribute names are disambiguated by prefixing the source
        relation name (``rel.attr``), matching common SQL engine behaviour.
        """
        left_names = {attr.name.lower() for attr in self.attributes}
        attributes: List[Attribute] = list(self.attributes)
        for attr in other.attributes:
            if attr.name.lower() in left_names:
                attributes.append(Attribute(f"{other.name}.{attr.name}", attr.data_type))
            else:
                attributes.append(attr)
        return RelationSchema(name or f"{self.name}_{other.name}", attributes)

    def validate_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Check arity and types of ``row`` and return it as a tuple."""
        row = tuple(row)
        if len(row) != self.arity:
            raise SchemaError(
                f"row {row!r} has {len(row)} values but relation {self.name!r} "
                f"has arity {self.arity}"
            )
        for attr, value in zip(self.attributes, row):
            if not attr.data_type.accepts(value):
                raise SchemaError(
                    f"value {value!r} is not a valid {attr.data_type.value} for "
                    f"attribute {attr.name!r} of {self.name!r}"
                )
        return row

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __str__(self) -> str:
        cols = ", ".join(f"{a.name}" for a in self.attributes)
        return f"{self.name}({cols})"


@dataclass
class DatabaseSchema:
    """A named set of relation schemas."""

    relations: Dict[str, RelationSchema] = field(default_factory=dict)

    def add(self, schema: RelationSchema) -> None:
        """Register a relation schema (case-insensitive name, must be fresh)."""
        key = schema.name.lower()
        if key in self.relations:
            raise SchemaError(f"relation {schema.name!r} already exists in the schema")
        self.relations[key] = schema

    def get(self, name: str) -> RelationSchema:
        """Look up a relation schema by (case-insensitive) name."""
        try:
            return self.relations[name.lower()]
        except KeyError as exc:
            raise SchemaError(f"unknown relation {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)
