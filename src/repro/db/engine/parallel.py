"""Intra-query parallelism for the columnar engine.

Large batches are split into contiguous row chunks and fanned out over a
lazily created ``multiprocessing`` pool (``fork`` start method, so workers
inherit the interpreter state without re-importing the package).  Three
columnar hot spots parallelize:

* **selection** -- each worker evaluates the predicate over its chunk and
  compresses the chunk's value columns and annotation vector;
* **projection** -- each worker evaluates the projection expressions over
  its chunk;
* **hash-join build** -- each worker buckets its slice of the right input's
  key columns, and the parent merges the partial tables in chunk order.

Annotation vectors ride to the workers through
:class:`multiprocessing.shared_memory.SharedMemory` when they are
numpy-backed (the N/B fast path; the UA pair is two component arrays), and
fall back to pickling otherwise -- object-dtype vectors (overflow-guarded
exact ints) and generic semiring lists cannot be memory-mapped.

Everything is **cost-gated**: a batch only takes the parallel path when the
layer is enabled, at least two workers are available and the batch clears
the row threshold (:func:`eligible`).  Every parallel call site keeps its
serial implementation as the fallback for ineligible batches *and* for any
failure in the parallel path.  Environment knobs:

* ``REPRO_PARALLEL`` -- ``0`` disables the layer entirely;
* ``REPRO_PARALLEL_WORKERS`` -- pool size (default ``os.cpu_count()``);
* ``REPRO_PARALLEL_THRESHOLD`` -- minimum batch length (default 50000).

:func:`stats` exposes task/chunk counters and worker utilization
(busy-time over wall-time summed across chunks) for ``GET /metrics``.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised indirectly via the fast path
    import numpy as _np
except ImportError:  # pragma: no cover - pure-Python fallback
    _np = None

try:
    import multiprocessing
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - multiprocessing is stdlib
    multiprocessing = None  # type: ignore[assignment]
    _shm = None  # type: ignore[assignment]

__all__ = [
    "ENV_VAR", "WORKERS_ENV_VAR", "THRESHOLD_ENV_VAR",
    "eligible", "configure", "shutdown", "stats", "reset_stats",
    "parallel_filter", "parallel_project", "parallel_build",
]

ENV_VAR = "REPRO_PARALLEL"
WORKERS_ENV_VAR = "REPRO_PARALLEL_WORKERS"
THRESHOLD_ENV_VAR = "REPRO_PARALLEL_THRESHOLD"

#: Minimum batch length before chunking is worth the fan-out overhead.
DEFAULT_THRESHOLD = 50_000

_LOCK = threading.RLock()
_POOL = None
_POOL_WORKERS = 0

#: ``configure()`` overrides; None defers to the environment.
_OVERRIDES: Dict[str, Optional[Any]] = {
    "enabled": None, "workers": None, "threshold": None,
}

_STATS = {"tasks": 0, "chunks": 0, "busy_seconds": 0.0, "wall_seconds": 0.0}


# ---------------------------------------------------------------------------
# Configuration and gating.
# ---------------------------------------------------------------------------

def _enabled() -> bool:
    if _OVERRIDES["enabled"] is not None:
        return bool(_OVERRIDES["enabled"])
    return os.environ.get(ENV_VAR, "1").strip().lower() not in ("0", "false", "no", "off")


def _workers() -> int:
    if _OVERRIDES["workers"] is not None:
        return int(_OVERRIDES["workers"])
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _threshold() -> int:
    if _OVERRIDES["threshold"] is not None:
        return int(_OVERRIDES["threshold"])
    raw = os.environ.get(THRESHOLD_ENV_VAR, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_THRESHOLD


def _fork_available() -> bool:
    if multiprocessing is None:
        return False
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def eligible(length: int) -> bool:
    """True when a batch of ``length`` rows should take the parallel path.

    The gate is the cost model's cheap stand-in: fan-out pays off only when
    the per-row work dwarfs the fixed chunking/IPC overhead, which the row
    threshold approximates.  Also requires the layer to be enabled, at
    least two configured workers, and a platform with ``fork``.
    """
    return (
        length >= _threshold()
        and _enabled()
        and _workers() >= 2
        and _fork_available()
    )


def configure(enabled: Optional[bool] = None, workers: Optional[int] = None,
              threshold: Optional[int] = None) -> None:
    """Override the environment-derived settings (primarily for tests).

    Passing ``None`` leaves a setting untouched; call :func:`reset` to drop
    every override.  Changing the worker count shuts the current pool down
    so the next parallel call rebuilds it at the new size.
    """
    global _POOL_WORKERS
    with _LOCK:
        if enabled is not None:
            _OVERRIDES["enabled"] = enabled
        if threshold is not None:
            _OVERRIDES["threshold"] = threshold
        if workers is not None:
            _OVERRIDES["workers"] = workers
            if _POOL is not None and _POOL_WORKERS != workers:
                shutdown()


def reset() -> None:
    """Drop every ``configure()`` override and shut the pool down."""
    with _LOCK:
        for key in _OVERRIDES:
            _OVERRIDES[key] = None
        shutdown()


def shutdown() -> None:
    """Terminate the worker pool (it is rebuilt lazily on next use)."""
    global _POOL, _POOL_WORKERS
    with _LOCK:
        if _POOL is not None:
            _POOL.terminate()
            _POOL.join()
            _POOL = None
            _POOL_WORKERS = 0


atexit.register(shutdown)


def _pool():
    """The lazily created fork-context pool at the configured size."""
    global _POOL, _POOL_WORKERS
    with _LOCK:
        workers = _workers()
        if _POOL is not None and _POOL_WORKERS != workers:
            shutdown()
        if _POOL is None:
            context = multiprocessing.get_context("fork")
            _POOL = context.Pool(processes=workers)
            _POOL_WORKERS = workers
        return _POOL


# ---------------------------------------------------------------------------
# Observability.
# ---------------------------------------------------------------------------

def stats() -> Dict[str, Any]:
    """Counters and utilization of the parallel layer.

    ``utilization`` is summed worker busy-time over summed parent
    wall-time: values near the worker count mean the pool ran saturated,
    values well below 1.0 mean fan-out overhead dominated.
    """
    with _LOCK:
        wall = _STATS["wall_seconds"]
        return {
            "enabled": _enabled(),
            "workers": _workers(),
            "threshold": _threshold(),
            "tasks": _STATS["tasks"],
            "chunks": _STATS["chunks"],
            "busy_seconds": round(_STATS["busy_seconds"], 6),
            "wall_seconds": round(wall, 6),
            "utilization": round(_STATS["busy_seconds"] / wall, 4) if wall else 0.0,
        }


def reset_stats() -> None:
    """Zero the task/chunk/time counters."""
    with _LOCK:
        _STATS.update(tasks=0, chunks=0, busy_seconds=0.0, wall_seconds=0.0)


def _record(chunks: int, busy: float, wall: float) -> None:
    with _LOCK:
        _STATS["tasks"] += 1
        _STATS["chunks"] += chunks
        _STATS["busy_seconds"] += busy
        _STATS["wall_seconds"] += wall


# ---------------------------------------------------------------------------
# Shared-memory transport for annotation vectors.
# ---------------------------------------------------------------------------

def _export_annotation(ann: Any) -> Tuple[Any, List[Any]]:
    """Package an annotation vector for a worker.

    Returns ``(spec, segments)`` where ``spec`` is picklable and
    ``segments`` are the SharedMemory blocks the parent must unlink once
    the task completes.  numpy arrays (except object dtype, whose elements
    are pointers) are copied into shared memory; the UA pair recurses into
    its two component vectors; everything else is pickled as-is.
    """
    if _np is not None and isinstance(ann, _np.ndarray) and ann.dtype != object:
        segment = _shm.SharedMemory(create=True, size=max(1, ann.nbytes))
        view = _np.ndarray(ann.shape, dtype=ann.dtype, buffer=segment.buf)
        if ann.size:
            view[:] = ann
        return ("shm", (segment.name, ann.dtype.str, ann.shape)), [segment]
    if isinstance(ann, tuple) and len(ann) == 2:
        specs, segments = [], []
        for component in ann:
            spec, component_segments = _export_annotation(component)
            specs.append(spec)
            segments.extend(component_segments)
        return ("pair", tuple(specs)), segments
    return ("pickle", ann), []


def _import_annotation(spec: Tuple[str, Any]) -> Any:
    """Rebuild an annotation vector inside a worker (copies out of SHM)."""
    kind, payload = spec
    if kind == "shm":
        name, dtype, shape = payload
        segment = _shm.SharedMemory(name=name)
        try:
            view = _np.ndarray(shape, dtype=_np.dtype(dtype), buffer=segment.buf)
            return view.copy()
        finally:
            segment.close()
    if kind == "pair":
        return tuple(_import_annotation(component) for component in payload)
    return payload


def _release(segments: List[Any]) -> None:
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except Exception:  # pragma: no cover - cleanup best-effort
            pass


def _slice_annotation(ann: Any, start: int, stop: int) -> Any:
    if isinstance(ann, tuple) and len(ann) == 2:
        return (ann[0][start:stop], ann[1][start:stop])
    return ann[start:stop]


def _compress_annotation(ann: Any, mask: Sequence[bool]) -> Any:
    if isinstance(ann, tuple) and len(ann) == 2:
        return (_compress_annotation(ann[0], mask),
                _compress_annotation(ann[1], mask))
    if _np is not None and isinstance(ann, _np.ndarray):
        return ann[_np.asarray(mask, dtype=bool)]
    return [value for value, keep in zip(ann, mask) if keep]


def _chunk_ranges(length: int, chunks: int) -> List[Tuple[int, int]]:
    size = max(1, (length + chunks - 1) // chunks)
    return [(start, min(start + size, length))
            for start in range(0, length, size)]


# ---------------------------------------------------------------------------
# Worker entry points (top level so the pool can address them by name).
# ---------------------------------------------------------------------------

def _run_filter_chunk(payload):
    """Worker: evaluate a predicate over a chunk, compress columns + ann."""
    # Imported inside the worker body: parallel.py must not import the
    # columnar engine at module level (columnar imports this module).
    from repro.db.engine.columnar import _ColumnContext, _eval_vector

    predicate, names, columns, length, ann_spec = payload
    started = time.perf_counter()
    ann = _import_annotation(ann_spec)
    ctx = _ColumnContext(names, columns, length)
    mask = [value is True for value in _eval_vector(predicate, ctx)]
    kept = sum(mask)
    if kept == length:
        out_columns, out_ann = columns, ann
    else:
        out_columns = [[value for value, keep in zip(column, mask) if keep]
                       for column in columns]
        out_ann = _compress_annotation(ann, mask)
    return out_columns, out_ann, kept, time.perf_counter() - started


def _run_project_chunk(payload):
    """Worker: evaluate projection expressions over a chunk of columns."""
    from repro.db.engine.columnar import _ColumnContext, _eval_vector

    expressions, names, columns, length = payload
    started = time.perf_counter()
    ctx = _ColumnContext(names, columns, length)
    out = [_eval_vector(expression, ctx) for expression in expressions]
    return out, time.perf_counter() - started


def _run_build_chunk(payload):
    """Worker: bucket a slice of join-key columns by composite key."""
    key_columns, offset = payload
    started = time.perf_counter()
    buckets: Dict[Tuple, List[int]] = {}
    for local_index, key in enumerate(zip(*key_columns)):
        buckets.setdefault(key, []).append(offset + local_index)
    return buckets, time.perf_counter() - started


# ---------------------------------------------------------------------------
# Parent-side entry points used by the columnar engine.
# ---------------------------------------------------------------------------

def parallel_filter(batch, predicate, ops):
    """Filter ``batch`` by ``predicate`` across the pool; a new batch.

    ``ops`` is the executor's annotation-vector implementation (used to
    concatenate the compressed chunk vectors).  Raises on any worker
    failure -- the caller falls back to the serial path.
    """
    from repro.db.engine.columnar import _Batch

    started = time.perf_counter()
    ranges = _chunk_ranges(batch.length, _workers())
    names = batch.schema.attribute_names
    payloads = []
    segments: List[Any] = []
    try:
        for start, stop in ranges:
            spec, chunk_segments = _export_annotation(
                _slice_annotation(batch.ann, start, stop))
            segments.extend(chunk_segments)
            payloads.append((predicate, names,
                             [column[start:stop] for column in batch.columns],
                             stop - start, spec))
        results = _pool().map(_run_filter_chunk, payloads)
    finally:
        _release(segments)
    busy = sum(result[3] for result in results)
    kept = sum(result[2] for result in results)
    if kept == batch.length:
        _record(len(ranges), busy, time.perf_counter() - started)
        return batch
    columns = [[] for _ in batch.columns]
    ann_chunks = [result[1] for result in results]
    for chunk_columns, _ann, chunk_kept, _busy in results:
        if chunk_kept:
            for merged, chunk in zip(columns, chunk_columns):
                merged.extend(chunk)
    ann = ann_chunks[0]
    for chunk in ann_chunks[1:]:
        ann = ops.concat(ann, chunk)
    _record(len(ranges), busy, time.perf_counter() - started)
    return _Batch(batch.schema, columns, ann, kept, batch.consolidated)


def parallel_project(batch, expressions):
    """Evaluate ``expressions`` over ``batch`` across the pool; columns.

    Returns one output column per expression (annotations are untouched by
    projection, so they stay in the parent).  Raises on worker failure.
    """
    started = time.perf_counter()
    ranges = _chunk_ranges(batch.length, _workers())
    names = batch.schema.attribute_names
    expressions = list(expressions)
    payloads = [(expressions, names,
                 [column[start:stop] for column in batch.columns],
                 stop - start)
                for start, stop in ranges]
    results = _pool().map(_run_project_chunk, payloads)
    busy = sum(result[1] for result in results)
    columns: List[List[Any]] = [[] for _ in expressions]
    for chunk_columns, _busy in results:
        for merged, chunk in zip(columns, chunk_columns):
            merged.extend(chunk)
    _record(len(ranges), busy, time.perf_counter() - started)
    return columns


def parallel_build(key_columns, length):
    """Build a hash-join bucket table over the pool; ``{key: [indices]}``.

    Chunks are merged in ascending range order, so bucket index lists come
    out identical to the serial single-pass build.  Raises on failure.
    """
    started = time.perf_counter()
    ranges = _chunk_ranges(length, _workers())
    payloads = [([column[start:stop] for column in key_columns], start)
                for start, stop in ranges]
    results = _pool().map(_run_build_chunk, payloads)
    busy = sum(result[1] for result in results)
    buckets: Dict[Tuple, List[int]] = {}
    for chunk_buckets, _busy in results:
        for key, indices in chunk_buckets.items():
            existing = buckets.get(key)
            if existing is None:
                buckets[key] = indices
            else:
                existing.extend(indices)
    _record(len(ranges), busy, time.perf_counter() - started)
    return buckets
