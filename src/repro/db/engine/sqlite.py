"""The SQLite-backed execution engine.

Makes the paper's "lightweight, on a conventional DBMS" claim literal: the
optimized algebra plan is compiled to a single SQL statement (see
:mod:`repro.db.engine.compiler`), the referenced base relations are loaded
into an in-memory stdlib :mod:`sqlite3` database in the ``Enc`` table layout
(data columns ``c0..cN`` + integer annotation column ``a``), and the whole
query -- joins, selections, the UA-rewritten certainty arithmetic -- runs
natively in SQLite's C engine.  Only the final (usually small) result
crosses back into Python, where it is decoded into a :class:`KRelation`.

Everything expensive is cached and reused across executions:

* **compiled SQL** -- an LRU keyed by the (hashable, frozen-dataclass) plan
  itself plus the semiring, revalidated against the referenced relations'
  schemas, so a prepared statement in the session layer compiles its SQL
  once and every later ``execute()`` is bind + run;
* **connections and tables** -- one ``:memory:`` connection per
  :class:`Database` (weakly keyed, so dropped databases free their store),
  with per-relation fingerprints (object identity + mutation counter) that
  reload a table only when the catalog or its contents actually changed;
* **prepared statements** -- ``sqlite3`` keeps a per-connection statement
  cache, so re-executing the same SQL text skips SQLite's own parser too.

Parameter placeholders pass straight through as SQLite bind parameters
(``?N`` / ``:name``); the plan is *not* re-bound or re-compiled per
execution.

**Store-backed databases skip loading entirely**: when ``database.store``
points at a persistent ``.uadb`` file (see :mod:`repro.api.store`), the
file already holds every relation in the engine's table layout, so the
engine attaches to it (per-thread WAL connections, no copy) and staleness
checks reduce to the store's per-relation fingerprints -- a session-level
``INSERT`` is an incremental append there, never a whole-table reload.

Plans the compiler cannot express -- unsupported operators or scalar
functions, semirings without an integer encoding, values or annotations
SQLite cannot store (e.g. multiplicities beyond 64 bits) -- **fall back**
to the columnar engine with a ``repro.db.engine.sqlite`` logger warning
instead of raising, so the engine is always safe to select.
"""

from __future__ import annotations

import logging
import sqlite3
import threading
import weakref
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Tuple

from repro.db import algebra
from repro.db.database import Database
from repro.db.expressions import Parameter
from repro.db.params import ParameterBinder, Params, check_bindings
from repro.db.relation import KRelation
from repro.db.engine.base import ExecutionEngine
from repro.db.engine.common import resolve_limit_count, write_enc_table
from repro.db.engine.compiler import (
    AnnotationSQL,
    CompiledQuery,
    NotSupportedError,
    annotation_sql,
    compile_plan,
    table_name,
)

logger = logging.getLogger(__name__)


class _TableState:
    """Fingerprint of one loaded (or unloadable) relation.

    Holds a strong reference to the relation object: it pins the identity
    check (``is``) against id reuse and costs only the reference -- the row
    data is shared, not copied.  ``error`` records a failed load (values
    SQLite cannot store), so later executions skip the doomed re-load and
    fall back immediately until the relation actually changes.
    """

    __slots__ = ("relation", "version", "error")

    def __init__(self, relation: KRelation, version: int,
                 error: "NotSupportedError | None" = None) -> None:
        self.relation = relation
        self.version = version
        self.error = error

    def fresh(self, relation: KRelation) -> bool:
        return self.relation is relation and self.version == relation._version


class _SQLiteStore:
    """The per-:class:`Database` SQLite side: connection + loaded tables."""

    def __init__(self, semiring_ops: AnnotationSQL) -> None:
        self.ops = semiring_ops
        # One connection serves every thread (guarded by ``lock``); sqlite3's
        # per-connection statement cache makes repeated SQL text cheap.
        self.connection = sqlite3.connect(":memory:", check_same_thread=False)
        # The evaluator's LIKE is case-sensitive; SQLite's default is not.
        self.connection.execute("PRAGMA case_sensitive_like = ON")
        self.lock = threading.RLock()
        self.tables: Dict[str, _TableState] = {}
        self.loads = 0

    def refresh(self, database: Database, names: Tuple[str, ...]) -> None:
        """(Re)load every named relation whose fingerprint went stale."""
        for name in names:
            relation = database.relation(name)
            state = self.tables.get(name)
            if state is not None and state.fresh(relation):
                if state.error is not None:
                    raise state.error
                continue
            self._load(name, relation)

    def _load(self, name: str, relation: KRelation) -> None:
        version = relation._version
        table = table_name(name)
        cursor = self.connection.cursor()
        try:
            # Shared physical design (type-less columns, per-column indexes,
            # ANALYZE) with the persistent store: see write_enc_table.
            write_enc_table(cursor, table, relation.schema.arity,
                            self.ops.encode, relation.items())
        except (sqlite3.Error, OverflowError, TypeError, ValueError) as exc:
            # Unbindable values (tuples, >64-bit multiplicities, ...): drop
            # the half-loaded table and remember the verdict so the next
            # execution falls back without re-attempting the load.
            cursor.execute(f"DROP TABLE IF EXISTS {table}")
            self.connection.commit()
            error = NotSupportedError(
                f"relation {name!r} holds values SQLite cannot store: {exc}"
            )
            error.__cause__ = exc
            self.tables[name] = _TableState(relation, version, error)
            raise error
        self.connection.commit()
        self.tables[name] = _TableState(relation, version)
        self.loads += 1


class _NullLock:
    """No-op context: store-backed reads run lock-free (WAL, per-thread
    connections); the store serializes its own writes internally."""

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


class _PersistentStoreAdapter:
    """Adapts a persistent ``.uadb`` store to the engine's store interface.

    For a store-backed :class:`Database` (``database.store`` set by a
    persistent session), there is nothing to encode-and-load: the store file
    already holds every relation in the engine's ``Enc`` table layout, so
    the engine attaches to it and runs compiled SQL directly.  ``refresh``
    degrades to the store's lock-free fingerprint check per relation
    (rewriting a table only after an out-of-band in-memory mutation), and
    each thread queries over its own WAL-mode connection, so concurrent
    readers do not serialize.
    """

    __slots__ = ("store", "ops", "lock")

    def __init__(self, store) -> None:
        self.store = store
        self.ops = store.ops
        self.lock = _NullLock()

    @property
    def connection(self) -> sqlite3.Connection:
        return self.store.connection()

    @property
    def loads(self) -> int:
        return self.store.loads

    def refresh(self, database: Database, names: Tuple[str, ...]) -> None:
        for name in names:
            self.store.sync(name, database.relation(name))


class SQLiteEngine(ExecutionEngine):
    """Compiles plans to SQL and executes them natively on stdlib SQLite."""

    name = "sqlite"
    #: Engine delegated to when a plan is outside the compilable fragment.
    fallback = "columnar"

    def __init__(self, compiled_cache_size: int = 256) -> None:
        #: (plan, semiring name) -> compiled; shared across structurally
        #: equal plans (every session compiles its own plan object for the
        #: same SQL, and all of them should hit one compile).
        self._compiled: "OrderedDict[Any, CompiledQuery]" = OrderedDict()
        #: id(plan) -> (plan, semiring name, compiled).  Identity-keyed
        #: fast path in front of ``_compiled``: hashing a deep plan
        #: dataclass costs more than the rest of the lookup, and an equal
        #: plan interned by *another* session would pay a full ``__eq__``
        #: on every probe.  Entries hold a strong reference to their plan,
        #: so a live entry's id cannot be recycled -- an id match plus an
        #: identity check is exact.
        self._by_plan: "OrderedDict[int, tuple]" = OrderedDict()
        self._compiled_cache_size = compiled_cache_size
        self._lock = threading.RLock()
        self._stores: "weakref.WeakKeyDictionary[Database, _SQLiteStore]" = (
            weakref.WeakKeyDictionary()
        )
        self._warned: set = set()
        self.compile_hits = 0
        self.compile_misses = 0
        self.fallbacks = 0

    # -- public entry points ----------------------------------------------------

    def execute(self, plan: algebra.Operator, database: Database,
                params: Params = None) -> KRelation:
        compiled = self._compiled_query(plan, database)
        if isinstance(compiled, NotSupportedError):
            return self._fall_back(plan, database, params, compiled,
                                   self._cache_key(plan, database))
        # Binding mismatches are *user* errors and must raise exactly like
        # the interpreting engines, never trigger a fallback.
        check_bindings(compiled.parameters, params)
        self._check_limit_bindings(compiled, params)
        arguments = self._bind_arguments(compiled, params)
        try:
            store = self._store(database)
            with store.lock:
                store.refresh(database, compiled.relations)
                rows = store.connection.execute(compiled.sql, arguments).fetchall()
        except (NotSupportedError, sqlite3.Error, OverflowError) as exc:
            return self._fall_back(plan, database, params, exc,
                                   self._cache_key(plan, database))
        return self._decode(compiled, database, rows)

    def compiled_sql(self, plan: algebra.Operator, database: Database) -> str:
        """The SQL text ``plan`` compiles to (cached like ``execute``).

        Raises :class:`NotSupportedError` for plans outside the fragment --
        useful to check whether a query would fall back.
        """
        compiled = self._compiled_query(plan, database)
        if isinstance(compiled, NotSupportedError):
            raise compiled
        return compiled.sql

    def stats(self) -> Dict[str, int]:
        """Cache/fallback counters for observability and tests."""
        with self._lock:
            loads = sum(store.loads for store in self._stores.values())
            return {
                "compiled_plans": len(self._compiled),
                "compile_hits": self.compile_hits,
                "compile_misses": self.compile_misses,
                "table_loads": loads,
                "fallbacks": self.fallbacks,
                "databases": len(self._stores),
            }

    # -- compilation cache ------------------------------------------------------

    @staticmethod
    def _cache_key(plan: algebra.Operator, database: Database):
        """Hashable cache key, or None (hand-built plans may embed
        unhashable literals; those compile uncached rather than refuse)."""
        key = (plan, database.semiring.name)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def _compiled_query(self, plan: algebra.Operator,
                        database: Database) -> "CompiledQuery | NotSupportedError":
        """The compiled query -- or the cached *unsupported* verdict.

        Negative results are cached too: re-executing a plan outside the
        fragment (e.g. every ``"direct"``-mode statement) costs one
        dictionary hit, not a full compile walk per execution.  A stale
        negative verdict after a schema change merely keeps routing that
        plan through the (correct) fallback engine.
        """
        semiring_name = database.semiring.name
        with self._lock:
            entry = self._by_plan.get(id(plan))
            if (entry is not None and entry[0] is plan
                    and entry[1] == semiring_name):
                cached = entry[2]
                if (isinstance(cached, NotSupportedError)
                        or self._deps_hold(cached, database)):
                    self._by_plan.move_to_end(id(plan))
                    self.compile_hits += 1
                    return cached
        key = self._cache_key(plan, database)
        if key is not None:
            with self._lock:
                cached = self._compiled.get(key)
                if cached is not None and (
                    isinstance(cached, NotSupportedError)
                    or self._deps_hold(cached, database)
                ):
                    self._compiled.move_to_end(key)
                    self.compile_hits += 1
                    self._remember(plan, semiring_name, cached)
                    return cached
                self.compile_misses += 1
        try:
            compiled: "CompiledQuery | NotSupportedError" = \
                compile_plan(plan, database)
        except NotSupportedError as exc:
            compiled = exc
        with self._lock:
            if key is not None:
                self._compiled[key] = compiled
                self._compiled.move_to_end(key)
                while len(self._compiled) > self._compiled_cache_size:
                    self._compiled.popitem(last=False)
            self._remember(plan, semiring_name, compiled)
        return compiled

    def _remember(self, plan: algebra.Operator, semiring_name: str,
                  compiled: "CompiledQuery | NotSupportedError") -> None:
        """Install the identity-keyed alias for ``plan`` (lock held)."""
        self._by_plan[id(plan)] = (plan, semiring_name, compiled)
        self._by_plan.move_to_end(id(plan))
        while len(self._by_plan) > self._compiled_cache_size:
            self._by_plan.popitem(last=False)

    @staticmethod
    def _deps_hold(compiled: CompiledQuery, database: Database) -> bool:
        """True while the referenced relations still have the compiled schemas."""
        for name, schema_name, attribute_names in compiled.schema_deps:
            if name not in database:
                return False
            schema = database.relation(name).schema
            if schema.name != schema_name or schema.attribute_names != attribute_names:
                return False
        return True

    # -- execution helpers ------------------------------------------------------

    def _store(self, database: Database) -> "_SQLiteStore | _PersistentStoreAdapter":
        with self._lock:
            store = self._stores.get(database)
            if store is None:
                persistent = getattr(database, "store", None)
                if persistent is not None:
                    store = _PersistentStoreAdapter(persistent)
                else:
                    store = _SQLiteStore(annotation_sql(database.semiring))
                self._stores[database] = store
            return store

    @staticmethod
    def _bind_arguments(compiled: CompiledQuery, params: Params):
        """Shape ``params`` for sqlite3 (placeholders pass straight through)."""
        if not compiled.parameters:
            return ()
        if isinstance(params, Mapping):
            # The parser lower-cases ':name' keys; match the supplied mapping.
            # sqlite3 ignores surplus named values, like check_bindings.
            return {str(name).lower(): value for name, value in params.items()}
        # sqlite3 requires exactly max-index values for ?N placeholders;
        # check_bindings has ensured at least that many are present, and
        # surplus values (optimized-away placeholders) are dropped here.
        return tuple(params)[:compiled.max_positional_index() + 1]

    @staticmethod
    def _check_limit_bindings(compiled: CompiledQuery, params: Params) -> None:
        """LIMIT parameters must bind to ints, exactly like the other engines."""
        if not compiled.limit_parameters:
            return
        binder = ParameterBinder(params)
        for key in compiled.limit_parameters:
            resolve_limit_count(binder.resolve(Parameter(key)))

    def _decode(self, compiled: CompiledQuery, database: Database,
                rows: List[Tuple]) -> KRelation:
        """Sum remaining fragments and rebuild the annotated relation."""
        semiring = database.semiring
        decode = self._store(database).ops.decode
        plus = semiring.plus
        data: Dict[Tuple, Any] = {}
        for row in rows:
            values = row[:-1]
            annotation = decode(row[-1])
            current = data.get(values)
            data[values] = annotation if current is None else plus(current, annotation)
        return KRelation._from_validated(compiled.schema, semiring, data)

    def _fall_back(self, plan: algebra.Operator, database: Database,
                   params: Params, reason: Exception, key=None) -> KRelation:
        from repro.db.engine import get_engine

        with self._lock:
            self.fallbacks += 1
            # Warn once per plan, not once per execution: a prepared
            # statement outside the fragment may run thousands of times.
            warn = key is None or key not in self._warned
            if key is not None:
                self._warned.add(key)
                if len(self._warned) > 4 * self._compiled_cache_size:
                    self._warned.clear()
        if warn:
            from repro.db import cost

            fallback_cost = cost.estimate_engine_cost(
                plan, self.fallback, getattr(database, "stats", None))
            logger.warning(
                "sqlite engine cannot run this plan (%s); falling back to "
                "the %r engine (estimated cost %.0f)",
                reason, self.fallback, fallback_cost,
            )
        return get_engine(self.fallback).execute(plan, database, params=params)
