"""Algebra plan -> one SQL statement (a CTE per operator).

:func:`compile_plan` turns a :mod:`repro.db.algebra` tree into a single
SQLite statement over base tables laid out in the multiset side of the
paper's ``Enc`` encoding: the tuple's data values in columns ``c0..cN`` and
its integer-encoded annotation in a trailing column ``a`` (for the encoded
UA-databases the certainty marker ``C`` is itself one of the data columns,
so the whole Figure 9 rewriting compiles like any other query).  Each
operator becomes a common table expression combining its inputs with the
semiring arithmetic of :mod:`repro.db.engine.compiler.annotations`:

=================  ==========================================================
operator           CTE shape
=================  ==========================================================
RelationRef        the loaded base table itself (no CTE)
Qualify            none -- column renaming is compile-time metadata only
Selection          ``SELECT ... WHERE pred`` (SQL 3VL == the evaluator's)
Projection         ``SELECT exprs, SUM(a) GROUP BY exprs`` (annotation sum)
Join/CrossProduct  ``SELECT l.*, r.*, l.a * r.a FROM l, r [WHERE pred]``
Union              ``UNION ALL`` of the two inputs
Distinct           ``SELECT DISTINCT cols, 1 AS a``
Difference         grouped inputs, ``LEFT JOIN`` on null-safe ``IS``, monus
Intersection       grouped inputs, inner join, greatest lower bound
Aggregate          annotation-weighted SQL aggregates, ``GROUP BY`` keys
OrderBy            identity (relations are unordered; Limit consumes keys)
Limit              group fragments, ``ORDER BY keys, c0.. LIMIT n``
=================  ==========================================================

Intermediate results may carry *fragments* -- several rows for one tuple
whose annotations sum to the tuple's true annotation.  That is sound for
selection, join, union and projection (semiring distributivity) and the
compiler consolidates fragments with a ``GROUP BY`` exactly where identity
of tuples matters: before Difference/Intersection/Limit, and before
aggregates when the semiring's weights are not linear (the B semiring).
The engine's result decoding sums whatever fragments remain.

Column names are never quoted into SQL: every logical attribute is mapped
to a positional ``cN`` identifier and resolved through the same
:class:`~repro.db.expressions.NameLookup` rules the interpreting engines
use, so qualified references, suffix matching and ambiguity errors behave
identically.  Anything outside the fragment raises
:class:`NotSupportedError` and the engine falls back to the columnar
backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.db import algebra
from repro.db.database import Database
from repro.db.expressions import Expression, NameLookup, Parameter
from repro.db.schema import Attribute, RelationSchema
from repro.db.engine.common import resolve_limit_count
from repro.db.engine.compiler.annotations import AnnotationSQL, annotation_sql
from repro.db.engine.compiler.errors import NotSupportedError
from repro.db.engine.compiler.expr import (
    ColumnRef,
    ExpressionCompiler,
    parameter_placeholder,
)


def table_name(relation_name: str) -> str:
    """The (quoted) SQLite table holding a stored relation."""
    return '"r_' + relation_name.lower().replace('"', '""') + '"'


@dataclass(frozen=True)
class CompiledQuery:
    """A plan compiled to SQL, plus everything needed to run and decode it."""

    #: The full statement (``WITH ... SELECT * FROM qN``).
    sql: str
    #: Result schema with exactly the attribute names the row engine produces.
    schema: RelationSchema
    #: Lower-cased names of the stored relations the statement reads.
    relations: Tuple[str, ...]
    #: Every parameter placeholder compiled into the SQL (plan order).
    parameters: Tuple[Parameter, ...]
    #: Keys of parameters used as LIMIT counts (validated as ints at bind).
    limit_parameters: Tuple[Any, ...]
    #: ``(lower name, schema name, attribute names)`` of each read relation;
    #: a cached compilation is only reusable while these still hold.
    schema_deps: Tuple[Tuple[str, str, Tuple[str, ...]], ...]

    def max_positional_index(self) -> int:
        """Highest 0-based positional parameter index (-1 when none)."""
        indexes = [p.key for p in self.parameters if isinstance(p.key, int)]
        return max(indexes) if indexes else -1


class _Part(NamedTuple):
    """One compiled operator: a FROM-clause source plus its logical schema.

    ``source`` is either a quoted base-table name or a CTE name; its SQL
    columns are always ``c0..c{arity-1}`` followed by the annotation ``a``.
    """

    source: str
    schema: RelationSchema


class PlanCompiler:
    """Compiles one plan against one database's catalog and semiring."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.annotation: AnnotationSQL = annotation_sql(database.semiring)
        self._ctes: List[Tuple[str, str]] = []
        self._parameters: List[Parameter] = []
        self._limit_parameters: List[Any] = []
        self._deps: Dict[str, RelationSchema] = {}

    # -- entry point ----------------------------------------------------------

    def compile(self, plan: algebra.Operator) -> CompiledQuery:
        part = self._compile(plan)
        lines = []
        if self._ctes:
            defs = ",\n".join(f"{name} AS (\n  {body}\n)" for name, body in self._ctes)
            lines.append(f"WITH {defs}")
        lines.append(f"SELECT * FROM {part.source}")
        return CompiledQuery(
            sql="\n".join(lines),
            schema=part.schema,
            relations=tuple(self._deps),
            parameters=tuple(self._parameters),
            limit_parameters=tuple(self._limit_parameters),
            schema_deps=tuple(
                (name, schema.name, schema.attribute_names)
                for name, schema in self._deps.items()
            ),
        )

    # -- plumbing -------------------------------------------------------------

    def _compile(self, plan: algebra.Operator) -> _Part:
        method = getattr(self, f"_compile_{type(plan).__name__.lower()}", None)
        if method is None:
            raise NotSupportedError(
                f"operator {type(plan).__name__} is outside the "
                "SQL-compilable fragment"
            )
        return method(plan)

    def _add_cte(self, body: str) -> str:
        name = f"q{len(self._ctes) + 1}"
        self._ctes.append((name, body))
        return name

    @staticmethod
    def _columns(arity: int, prefix: str = "") -> List[str]:
        return [f"{prefix}c{i}" for i in range(arity)]

    @staticmethod
    def _refs(schema: RelationSchema, prefix: str = "") -> List[ColumnRef]:
        """Typed SQL references for a schema's attributes (types feed the
        cross-type comparison guard elision)."""
        return [
            ColumnRef(f"{prefix}c{i}", attribute.data_type)
            for i, attribute in enumerate(schema.attributes)
        ]

    def _scope(self, schema: RelationSchema, prefix: str = "") -> ExpressionCompiler:
        lookup = NameLookup(schema.attribute_names, self._refs(schema, prefix))
        return ExpressionCompiler(lookup, self._parameters)

    def _select_list(self, columns: List[str], annotation: str) -> str:
        items = [f"{ref} AS c{i}" for i, ref in enumerate(columns)]
        items.append(f"{annotation} AS a")
        return ", ".join(items)

    def _consolidated(self, part: _Part) -> _Part:
        """Merge duplicate tuple fragments: one row per tuple, summed ``a``."""
        arity = part.schema.arity
        select = self._select_list(self._columns(arity),
                                   self.annotation.plus_aggregate("a"))
        group = ", ".join(str(i + 1) for i in range(arity)) or "NULL"
        body = f"SELECT {select} FROM {part.source} GROUP BY {group}"
        return _Part(self._add_cte(body), part.schema)

    def _check_union_compatible(self, left: _Part, right: _Part,
                                operator: str) -> None:
        # Falling back reproduces the interpreting engines' EvaluationError
        # for genuinely incompatible inputs.
        if left.schema.arity != right.schema.arity:
            raise NotSupportedError(
                f"{operator} inputs are not union-compatible; delegating the "
                "error to the fallback engine"
            )

    # -- leaves ---------------------------------------------------------------

    def _compile_relationref(self, plan: algebra.RelationRef) -> _Part:
        relation = self.database.relation(plan.name)  # SchemaError if absent
        schema = relation.schema
        if plan.alias and plan.alias.lower() != plan.name.lower():
            schema = schema.rename(plan.alias)
        self._deps[plan.name.lower()] = relation.schema
        return _Part(table_name(plan.name), schema)

    # -- unary operators --------------------------------------------------------

    def _compile_qualify(self, plan: algebra.Qualify) -> _Part:
        child = self._compile(plan.child)
        attributes = [
            Attribute(f"{plan.qualifier}.{attr.name.split('.')[-1]}", attr.data_type)
            for attr in child.schema.attributes
        ]
        return _Part(child.source, RelationSchema(plan.qualifier, attributes))

    def _compile_selection(self, plan: algebra.Selection) -> _Part:
        child = self._compile(plan.child)
        predicate = self._scope(child.schema).compile(plan.predicate)
        select = self._select_list(self._columns(child.schema.arity), "a")
        body = f"SELECT {select} FROM {child.source} WHERE {predicate}"
        return _Part(self._add_cte(body), child.schema)

    def _compile_projection(self, plan: algebra.Projection) -> _Part:
        # No ``GROUP BY``: output tuples that coincide simply stay separate
        # *fragments* whose annotations the consumers sum -- skipping the
        # per-projection aggregation pass is the single biggest win of the
        # fragment representation (the optimizer pushes pruning projections
        # onto every scan, which would otherwise re-hash whole base tables).
        child = self._compile(plan.child)
        scope = self._scope(child.schema)
        exprs = [scope.compile(expr) for expr, _ in plan.items]
        select = self._select_list(exprs, "a")
        body = f"SELECT {select} FROM {child.source}"
        schema = RelationSchema(
            child.schema.name,
            [Attribute(name, self._output_type(expr, child.schema))
             for expr, name in plan.items],
        )
        return _Part(self._add_cte(body), schema)

    @staticmethod
    def _output_type(expr: Expression, child_schema: RelationSchema):
        """Declared type of a projected expression (ANY when not a column).

        The interpreting engines leave projection outputs untyped;
        KRelation equality only compares attribute *names*, so carrying the
        source column's type here is purely compiler-internal -- it lets
        comparisons above a pruning projection keep their guard elision.
        """
        from repro.db.schema import DataType
        from repro.db.expressions import Column as ColumnExpr

        if isinstance(expr, ColumnExpr):
            lookup = NameLookup(
                child_schema.attribute_names,
                [attribute.data_type for attribute in child_schema.attributes],
            )
            found = lookup.find(expr.name, expr.qualifier)
            if found is not None:
                return found
        return DataType.ANY

    def _compile_distinct(self, plan: algebra.Distinct) -> _Part:
        child = self._compile(plan.child)
        select = self._select_list(self._columns(child.schema.arity),
                                   self.annotation.one)
        body = f"SELECT DISTINCT {select} FROM {child.source}"
        return _Part(self._add_cte(body), child.schema)

    # -- binary operators ---------------------------------------------------------

    def _compile_join(self, plan: algebra.Join) -> _Part:
        return self._join(plan.left, plan.right, plan.predicate)

    def _compile_crossproduct(self, plan: algebra.CrossProduct) -> _Part:
        return self._join(plan.left, plan.right, None)

    def _join(self, left_plan: algebra.Operator, right_plan: algebra.Operator,
              predicate: Optional[Expression]) -> _Part:
        left = self._compile(left_plan)
        right = self._compile(right_plan)
        schema = left.schema.concat(right.schema)
        columns = (self._columns(left.schema.arity, "l.")
                   + self._columns(right.schema.arity, "r."))
        select = self._select_list(columns, self.annotation.times("l.a", "r.a"))
        body = (f"SELECT {select} "
                f"FROM {left.source} AS l, {right.source} AS r")
        if predicate is not None:
            refs = self._refs(left.schema, "l.") + self._refs(right.schema, "r.")
            lookup = NameLookup(schema.attribute_names, refs)
            compiled = ExpressionCompiler(lookup, self._parameters)
            body += f" WHERE {compiled.compile(predicate)}"
        return _Part(self._add_cte(body), schema)

    def _compile_union(self, plan: algebra.Union) -> _Part:
        left = self._compile(plan.left)
        right = self._compile(plan.right)
        self._check_union_compatible(left, right, "UNION")
        select = self._select_list(self._columns(left.schema.arity), "a")
        body = (f"SELECT {select} FROM {left.source} "
                f"UNION ALL SELECT {select} FROM {right.source}")
        return _Part(self._add_cte(body), left.schema)

    def _null_safe_on(self, arity: int) -> str:
        conjuncts = [f"l.c{i} IS r.c{i}" for i in range(arity)]
        return " AND ".join(conjuncts) if conjuncts else "1 = 1"

    def _compile_difference(self, plan: algebra.Difference) -> _Part:
        left = self._compile(plan.left)
        right = self._compile(plan.right)
        self._check_union_compatible(left, right, "EXCEPT")
        left = self._consolidated(left)
        right = self._consolidated(right)
        arity = left.schema.arity
        remaining = self.annotation.monus("l.a", "COALESCE(r.a, 0)")
        select = self._select_list(self._columns(arity, "l."), remaining)
        body = (f"SELECT {select} FROM {left.source} AS l "
                f"LEFT JOIN {right.source} AS r ON {self._null_safe_on(arity)} "
                f"WHERE {remaining} > 0")
        return _Part(self._add_cte(body), left.schema)

    def _compile_intersection(self, plan: algebra.Intersection) -> _Part:
        left = self._compile(plan.left)
        right = self._compile(plan.right)
        self._check_union_compatible(left, right, "INTERSECT")
        left = self._consolidated(left)
        right = self._consolidated(right)
        arity = left.schema.arity
        select = self._select_list(self._columns(arity, "l."),
                                   self.annotation.glb("l.a", "r.a"))
        body = (f"SELECT {select} FROM {left.source} AS l "
                f"JOIN {right.source} AS r ON {self._null_safe_on(arity)}")
        return _Part(self._add_cte(body), left.schema)

    # -- extended operators ----------------------------------------------------------

    def _aggregate_sql(self, func: str, argument: Optional[str]) -> str:
        """One annotation-weighted SQL aggregate (``a`` = tuple multiplicity).

        Mirrors ``combine_aggregate``: COUNT/SUM/AVG weight each tuple by its
        bag multiplicity, NULL arguments are ignored (an all-NULL group sums
        to NULL, exactly SQL's behaviour), MIN/MAX are weight-independent.
        """
        if func == "count":
            if argument is None:
                return "SUM(a)"
            return f"SUM(CASE WHEN {argument} IS NULL THEN 0 ELSE a END)"
        if func == "sum":
            return f"SUM(({argument}) * a)"
        if func == "avg":
            return (f"(CAST(SUM(({argument}) * a) AS REAL) / "
                    f"SUM(CASE WHEN {argument} IS NULL THEN 0 ELSE a END))")
        if func == "min":
            return f"MIN({argument})"
        if func == "max":
            return f"MAX({argument})"
        raise NotSupportedError(f"aggregate function {func!r} has no SQL translation")

    def _compile_aggregate(self, plan: algebra.Aggregate) -> _Part:
        child = self._compile(plan.child)
        if not self.annotation.linear_weights:
            # B-annotated fragments would double-count: a tuple weighs 1
            # however many fragments it arrives in.
            child = self._consolidated(child)
        scope = self._scope(child.schema)
        items = [scope.compile(expr) for expr, _ in plan.group_by]
        for aggregate in plan.aggregates:
            argument = (scope.compile(aggregate.argument)
                        if aggregate.argument is not None else None)
            items.append(self._aggregate_sql(aggregate.func.lower(), argument))
        select = self._select_list(items, self.annotation.one)
        group = ", ".join(str(i + 1) for i in range(len(plan.group_by))) or "NULL"
        body = f"SELECT {select} FROM {child.source} GROUP BY {group}"
        names = [name for _, name in plan.group_by]
        names.extend(aggregate.name for aggregate in plan.aggregates)
        schema = RelationSchema(child.schema.name,
                                [Attribute(name) for name in names])
        return _Part(self._add_cte(body), schema)

    def _compile_orderby(self, plan: algebra.OrderBy) -> _Part:
        # Relations are unordered; ordering only matters under a Limit, which
        # peels the keys off itself.  A bare OrderBy is the identity.
        return self._compile(plan.child)

    def _limit_count_sql(self, count: Any) -> str:
        if isinstance(count, Parameter):
            self._parameters.append(count)
            self._limit_parameters.append(count.key)
            # A negative LIMIT means "no limit" to SQLite but "no rows" to
            # the engines; clamp at execution time.
            return f"MAX({parameter_placeholder(count)}, 0)"
        return str(max(resolve_limit_count(count), 0))

    def _compile_limit(self, plan: algebra.Limit) -> _Part:
        child_plan = plan.child
        keys: Tuple[Tuple[Expression, bool], ...] = ()
        if isinstance(child_plan, algebra.OrderBy):
            keys = child_plan.keys
            child_plan = child_plan.child
        part = self._consolidated(self._compile(child_plan))
        arity = part.schema.arity
        scope = self._scope(part.schema)
        order = [
            f"{scope.compile(expr)} {'DESC' if descending else 'ASC'}"
            for expr, descending in keys
        ]
        # Ties (and the keyless case) break on the full row, matching
        # select_limit_rows; SQLite's cross-type ordering (NULL < numbers <
        # text) coincides with _row_sort_key.  Known limitation: an explicit
        # ORDER BY key over a *mixed-type* column diverges -- the
        # interpreters' _OrderKey falls back to pairwise str() comparison
        # there, which is not expressible as a SQL sort key.
        order.extend(self._columns(arity))
        order_clause = f" ORDER BY {', '.join(order)}" if order else ""
        select = self._select_list(self._columns(arity), "a")
        body = (f"SELECT {select} FROM {part.source}"
                f"{order_clause} LIMIT {self._limit_count_sql(plan.count)}")
        return _Part(self._add_cte(body), part.schema)


def compile_plan(plan: algebra.Operator, database: Database) -> CompiledQuery:
    """Compile ``plan`` into one SQL statement over ``database``'s catalog.

    Raises :class:`NotSupportedError` when any operator, expression or the
    database's semiring cannot be expressed faithfully in SQLite SQL.
    """
    return PlanCompiler(database).compile(plan)
