"""Errors raised by the algebra -> SQL compiler."""

from __future__ import annotations

from repro.db.engine.base import EvaluationError


class NotSupportedError(EvaluationError):
    """The plan, expression or database lies outside the SQL-compilable fragment.

    Raised by the compiler (unsupported operator / scalar function /
    semiring) and by the table loader (values or annotations SQLite cannot
    store).  The SQLite engine treats it as a signal to *fall back* to the
    columnar engine with a logged warning rather than an error the caller
    sees -- every plan another engine can evaluate must still produce a
    result, just without the native-SQL speedup.
    """
