"""The algebra -> SQL translation layer behind the SQLite engine.

Splits into three pieces:

* :mod:`~repro.db.engine.compiler.annotations` -- how a semiring's
  annotation arithmetic reads as SQL over the encoded ``a`` column,
* :mod:`~repro.db.engine.compiler.expr` -- scalar expressions to SQL text
  (with the evaluator's three-valued logic preserved),
* :mod:`~repro.db.engine.compiler.plan` -- operator trees to one statement,
  a CTE per operator.

The compiler is engine-agnostic: it produces a :class:`CompiledQuery`
(SQL text + result schema + parameter/bookkeeping metadata) and leaves
loading, execution and decoding to :mod:`repro.db.engine.sqlite`.
Unsupported constructs raise :class:`NotSupportedError`.
"""

from repro.db.engine.compiler.annotations import AnnotationSQL, annotation_sql
from repro.db.engine.compiler.errors import NotSupportedError
from repro.db.engine.compiler.expr import (
    ExpressionCompiler,
    parameter_placeholder,
    sql_literal,
)
from repro.db.engine.compiler.plan import (
    CompiledQuery,
    PlanCompiler,
    compile_plan,
    table_name,
)

__all__ = [
    "AnnotationSQL",
    "CompiledQuery",
    "ExpressionCompiler",
    "NotSupportedError",
    "PlanCompiler",
    "annotation_sql",
    "compile_plan",
    "parameter_placeholder",
    "sql_literal",
    "table_name",
]
