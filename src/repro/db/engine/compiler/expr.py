"""Scalar expression -> SQLite SQL text.

The compiled text must evaluate exactly like
:meth:`repro.db.expressions.Expression.evaluate` for every row the engines
can agree on.  SQLite's three-valued logic matches the Python evaluator's
Kleene semantics for comparisons, AND/OR/NOT, BETWEEN, IN and CASE; the
places where SQLite's defaults differ are compiled around explicitly:

* ``/`` is true division returning NULL on a zero divisor, so the left
  operand is cast to REAL (SQLite would otherwise truncate integers),
* ordering comparisons (``<``/``<=``/``>``/``>=``/``BETWEEN``) whose
  operand types are not statically known are wrapped in a ``TYPEOF`` guard
  yielding NULL when one operand is numeric and the other is not -- the
  evaluator treats such comparisons as *unknown*, where SQLite would rank
  every number below every text value; typed columns compiled against a
  typed scope skip the runtime check entirely,
* ``least`` / ``greatest`` ignore NULL arguments (SQLite's scalar
  ``MIN``/``MAX`` return NULL if *any* argument is NULL), compiled as
  ``MIN(COALESCE(a, b), COALESCE(b, a))`` folded pairwise,
* ``LIKE`` relies on ``PRAGMA case_sensitive_like = ON`` (set by the
  engine's connection setup) to match the evaluator's case-sensitive regex.

Scalar functions with no faithful SQLite counterpart (``round`` -- Python
uses banker's rounding, ``sqrt`` -- not in all builds and NULL-vs-NaN on
negatives, ``contains`` -- operates on tuple values SQLite cannot store)
raise :class:`NotSupportedError` so the engine falls back.  Parameter
placeholders are passed straight through as SQLite bind parameters
(``?N`` 1-based positional / ``:name``) and recorded with the collector so
the engine can validate bindings without re-walking the plan.
"""

from __future__ import annotations

import math
from typing import Any, List, NamedTuple

from repro.db.schema import DataType
from repro.db.expressions import (
    And,
    Arithmetic,
    Between,
    Case,
    Column,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    NameLookup,
    Negate,
    Not,
    Or,
    Parameter,
)
from repro.db.engine.compiler.errors import NotSupportedError


def sql_string(value: str) -> str:
    """A single-quoted SQL string literal."""
    return "'" + value.replace("'", "''") + "'"


def sql_literal(value: Any) -> str:
    """Render a Python constant as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise NotSupportedError(f"non-finite float literal {value!r}")
        return repr(value)
    if isinstance(value, str):
        return sql_string(value)
    raise NotSupportedError(
        f"literal of type {type(value).__name__} has no SQL representation"
    )


def parameter_placeholder(parameter: Parameter) -> str:
    """The SQLite placeholder for a repro parameter.

    repro numbers positional parameters from 0, SQLite's ``?NNN`` from 1;
    named parameters map one-to-one (the parser lower-cases names, and the
    engine lower-cases the supplied mapping to match).
    """
    if isinstance(parameter.key, int):
        return f"?{parameter.key + 1}"
    return f":{parameter.key}"


class ColumnRef(NamedTuple):
    """A resolved column: its SQL identifier plus the declared data type.

    The type drives guard elision: comparisons between operands whose
    SQLite storage class is statically known need no runtime ``TYPEOF``
    check (typed relations validate their rows on insert).
    """

    sql: str
    data_type: DataType = DataType.ANY


#: Declared types whose values land in SQLite's numeric storage classes
#: (booleans are stored as 0/1 integers).
_NUMERIC_TYPES = (DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN)


def _pairwise_extremum(func: str, parts: List[str]) -> str:
    """Fold ``least``/``greatest`` semantics (NULLs ignored) over ``parts``."""
    if not parts:
        return "NULL"
    result = parts[0]
    for part in parts[1:]:
        result = f"{func}(COALESCE({result}, {part}), COALESCE({part}, {result}))"
    return result


class ExpressionCompiler:
    """Compiles expressions against one scope of named columns.

    ``lookup`` maps logical column names to SQL references (``c3`` /
    ``l.c0`` ...) with exactly the resolution rules of
    :class:`~repro.db.expressions.RowEnvironment`, so unknown or ambiguous
    references raise the same :class:`ExpressionError` the interpreting
    engines would.  ``parameters`` is the compilation-wide collector shared
    with the plan compiler.
    """

    def __init__(self, lookup: NameLookup,
                 parameters: List[Parameter]) -> None:
        self._lookup = lookup
        self._parameters = parameters

    def compile(self, expr: Expression) -> str:
        method = getattr(self, f"_compile_{type(expr).__name__.lower()}", None)
        if method is None:
            raise NotSupportedError(
                f"expression type {type(expr).__name__} is outside the "
                "SQL-compilable fragment"
            )
        return method(expr)

    # -- leaves ---------------------------------------------------------------

    def _compile_literal(self, expr: Literal) -> str:
        return sql_literal(expr.value)

    def _compile_column(self, expr: Column) -> str:
        payload = self._lookup.lookup(expr.name, expr.qualifier)
        if isinstance(payload, ColumnRef):
            return payload.sql
        return payload

    def _compile_parameter(self, expr: Parameter) -> str:
        self._parameters.append(expr)
        return parameter_placeholder(expr)

    # -- logic ----------------------------------------------------------------

    def _numericness(self, expr: Expression):
        """Static storage-class of ``expr``: 'num', 'text', 'null' or None.

        'num'/'text' mean every non-NULL value the expression can produce
        lands in that SQLite storage class (typed relations validate their
        rows on insert); 'null' marks a literal NULL; None is unknown (ANY
        columns, parameters, CASE, ...).
        """
        if isinstance(expr, Literal):
            value = expr.value
            if value is None:
                return "null"
            if isinstance(value, (bool, int, float)):
                return "num"
            if isinstance(value, str):
                return "text"
            return None
        if isinstance(expr, Column):
            payload = self._lookup.find(expr.name, expr.qualifier)
            if isinstance(payload, ColumnRef):
                if payload.data_type in _NUMERIC_TYPES:
                    return "num"
                if payload.data_type is DataType.STRING:
                    return "text"
            return None
        if isinstance(expr, (Negate, Arithmetic)):
            # SQLite arithmetic always yields a numeric value or NULL.
            return "num"
        if isinstance(expr, FunctionCall):
            name = expr.name.lower()
            if name in ("abs", "length"):
                return "num"
            if name in ("upper", "lower"):
                return "text"
        return None

    def _needs_type_guard(self, operands) -> bool:
        """True when an ordering comparison could cross the number/text divide.

        The evaluator turns such a comparison into *unknown*; SQLite would
        instead rank every number below every text value.  Statically
        same-class operands (and literal-NULL operands, whose comparison is
        NULL either way) skip the runtime check.
        """
        classes = [self._numericness(operand) for operand in operands]
        if "null" in classes:
            return False
        known = [c for c in classes if c is not None]
        if len(known) < len(classes):
            return True
        return any(c != known[0] for c in known)

    @staticmethod
    def _numeric_guard(*parts: str) -> str:
        """SQL for "all operands on the same side of the number/text divide"
        (NULL operands pass the guard and propagate NULL through the
        comparison itself)."""
        flags = [f"(TYPEOF({part}) IN ('integer', 'real'))" for part in parts]
        return " AND ".join(f"{flags[0]} = {flag}" for flag in flags[1:])

    def _range_operand(self, expr: Expression) -> str:
        """Compile an ordering-compared column with a ``+`` no-index hint.

        Unary ``+`` is the identity on every SQLite value but stops the
        planner from driving the scan off that column's index: range
        predicates on the workload columns are rarely selective enough to
        beat a scan, while equality (join) predicates keep full index use.
        (The ``TYPEOF``-guarded compilation path gets the same effect from
        its CASE wrapper.)
        """
        compiled = self.compile(expr)
        if isinstance(expr, Column):
            return f"+{compiled}"
        return compiled

    def _compile_comparison(self, expr: Comparison) -> str:
        if expr.op in ("=", "!=", "<>"):
            # Python's == / != never raise across types (they just answer
            # False / True), which is SQLite's cross-type behaviour too.
            return f"({self.compile(expr.left)} {expr.op} {self.compile(expr.right)})"
        if not self._needs_type_guard((expr.left, expr.right)):
            left = self._range_operand(expr.left)
            right = self._range_operand(expr.right)
            return f"({left} {expr.op} {right})"
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        guard = self._numeric_guard(left, right)
        return f"(CASE WHEN {guard} THEN {left} {expr.op} {right} END)"

    def _compile_and(self, expr: And) -> str:
        return "(" + " AND ".join(self.compile(op) for op in expr.operands) + ")"

    def _compile_or(self, expr: Or) -> str:
        return "(" + " OR ".join(self.compile(op) for op in expr.operands) + ")"

    def _compile_not(self, expr: Not) -> str:
        return f"(NOT {self.compile(expr.operand)})"

    # -- arithmetic -------------------------------------------------------------

    def _compile_arithmetic(self, expr: Arithmetic) -> str:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if expr.op == "/":
            # Python division is true division (int/int -> float) and yields
            # NULL on a zero divisor; SQLite does both once the dividend is
            # REAL (x / 0 and x / 0.0 are NULL).
            return f"(CAST({left} AS REAL) / {right})"
        return f"({left} {expr.op} {right})"

    def _compile_negate(self, expr: Negate) -> str:
        return f"(-{self.compile(expr.operand)})"

    # -- predicates -------------------------------------------------------------

    def _compile_between(self, expr: Between) -> str:
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        if not self._needs_type_guard((expr.operand, expr.low, expr.high)):
            operand = self._range_operand(expr.operand)
            return f"({operand} BETWEEN {low} AND {high})"
        operand = self.compile(expr.operand)
        guard = self._numeric_guard(operand, low, high)
        return f"(CASE WHEN {guard} THEN {operand} BETWEEN {low} AND {high} END)"

    def _compile_inlist(self, expr: InList) -> str:
        values = ", ".join(self.compile(value) for value in expr.values)
        return f"({self.compile(expr.operand)} IN ({values}))"

    def _compile_isnull(self, expr: IsNull) -> str:
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({self.compile(expr.operand)} {suffix})"

    def _compile_like(self, expr: Like) -> str:
        return f"({self.compile(expr.operand)} LIKE {sql_string(expr.pattern)})"

    def _compile_case(self, expr: Case) -> str:
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(self.compile(expr.operand))
        for condition, result in expr.whens:
            parts.append(f"WHEN {self.compile(condition)} THEN {self.compile(result)}")
        if expr.else_result is not None:
            parts.append(f"ELSE {self.compile(expr.else_result)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"

    # -- scalar functions --------------------------------------------------------

    #: Functions that map 1:1 onto a SQLite builtin with identical NULL
    #: behaviour (SQLite upper/lower/length coerce numbers to text exactly
    #: like the evaluator's str() conversion).
    _DIRECT = {"abs": "ABS", "upper": "UPPER", "lower": "LOWER",
               "length": "LENGTH"}

    def _compile_functioncall(self, expr: FunctionCall) -> str:
        name = expr.name.lower()
        args = [self.compile(arg) for arg in expr.args]
        if name in self._DIRECT:
            return f"{self._DIRECT[name]}({', '.join(args)})"
        if name == "coalesce":
            if not args:
                return "NULL"
            if len(args) == 1:
                return args[0]
            return f"COALESCE({', '.join(args)})"
        if name == "least":
            return _pairwise_extremum("MIN", args)
        if name == "greatest":
            return _pairwise_extremum("MAX", args)
        raise NotSupportedError(
            f"scalar function {expr.name!r} has no faithful SQLite translation"
        )
