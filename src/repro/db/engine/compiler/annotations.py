"""SQL encodings of semiring annotation arithmetic.

The compiled queries carry each tuple's annotation in a trailing integer
column ``a`` (the multiset side of the paper's ``Enc`` encoding: for the
encoded UA-databases the certainty marker ``C`` is an ordinary *data* column
and ``a`` holds the N multiplicity).  Every semiring the compiler supports
must say how its operations read as SQL over that column:

* ``N`` (bags): ``+`` is integer addition (``SUM``), ``*`` multiplication,
  the monus is truncated subtraction and the natural order is ``<=``.
* ``B`` (sets): annotations are stored as 0/1; ``+`` is ``OR`` (``MAX``),
  ``*`` is ``AND`` (``MIN``) and the monus is ``a AND NOT b``.

Everything else (UA pairs as Python objects, provenance polynomials, ...)
raises :class:`NotSupportedError`, which the SQLite engine turns into a
fallback to the columnar engine.
"""

from __future__ import annotations

from typing import Any

from repro.semirings import Semiring
from repro.semirings.boolean import BooleanSemiring
from repro.semirings.natural import NaturalSemiring
from repro.db.engine.compiler.errors import NotSupportedError


class AnnotationSQL:
    """SQL fragments implementing one semiring's operations over column ``a``."""

    #: The SQL literal for 1_K.
    one = "1"
    #: True when a fragment's aggregate weight equals its annotation value,
    #: i.e. ``weight(a1 + a2) == weight(a1) + weight(a2)``.  When False the
    #: compiler must consolidate duplicate tuple fragments before weighting
    #: an aggregate (see ``annotation_weight`` in ``repro.db.engine.common``).
    linear_weights = True

    def plus_aggregate(self, expr: str) -> str:
        """Aggregate summing annotations of rows collapsed by a GROUP BY."""
        raise NotImplementedError

    def times(self, left: str, right: str) -> str:
        """Annotation product (joins)."""
        raise NotImplementedError

    def monus(self, left: str, right: str) -> str:
        """Truncated difference (EXCEPT ALL); ``right`` may be NULL-coalesced."""
        raise NotImplementedError

    def glb(self, left: str, right: str) -> str:
        """Greatest lower bound (INTERSECT ALL)."""
        raise NotImplementedError

    def encode(self, annotation: Any) -> int:
        """Map a semiring annotation to the stored integer."""
        raise NotImplementedError

    def decode(self, value: int) -> Any:
        """Map a stored integer back to a semiring annotation."""
        raise NotImplementedError


class NaturalAnnotationSQL(AnnotationSQL):
    """Bag multiplicities: annotations are the integers themselves."""

    linear_weights = True

    def plus_aggregate(self, expr: str) -> str:
        return f"SUM({expr})"

    def times(self, left: str, right: str) -> str:
        return f"({left} * {right})"

    def monus(self, left: str, right: str) -> str:
        return f"MAX({left} - {right}, 0)"

    def glb(self, left: str, right: str) -> str:
        return f"MIN({left}, {right})"

    def encode(self, annotation: Any) -> int:
        return int(annotation)

    def decode(self, value: int) -> Any:
        return int(value)


class BooleanAnnotationSQL(AnnotationSQL):
    """Set membership: True is stored as 1, operations are MIN/MAX over 0/1."""

    #: A tuple's aggregate weight is 1 regardless of its 0/1 annotation, so
    #: duplicate fragments of the same tuple must be consolidated before
    #: weighting (two fragments of one tuple still weigh 1, not 2).
    linear_weights = False

    def plus_aggregate(self, expr: str) -> str:
        return f"MAX({expr})"

    def times(self, left: str, right: str) -> str:
        return f"MIN({left}, {right})"

    def monus(self, left: str, right: str) -> str:
        # a AND NOT b over {0, 1}.
        return f"MIN({left}, 1 - MIN({right}, 1))"

    def glb(self, left: str, right: str) -> str:
        return f"MIN({left}, {right})"

    def encode(self, annotation: Any) -> int:
        return 1 if annotation else 0

    def decode(self, value: int) -> Any:
        return bool(value)


def annotation_sql(semiring: Semiring) -> AnnotationSQL:
    """The SQL encoding of ``semiring``'s operations.

    Raises :class:`NotSupportedError` for semirings whose annotations are not
    (bounded) integers -- those plans fall back to the interpreting engines.
    """
    if isinstance(semiring, NaturalSemiring):
        return NaturalAnnotationSQL()
    if isinstance(semiring, BooleanSemiring):
        return BooleanAnnotationSQL()
    raise NotSupportedError(
        f"semiring {semiring.name} has no SQL encoding; only N (bags) and "
        "B (sets) annotations can run on the SQLite backend"
    )
