"""Vectorized columnar execution engine.

Plans are evaluated over :class:`_Batch` objects: column-major value vectors
plus an annotation vector (see :mod:`repro.db.engine.vectors`).  Compared to
the row engine, the batch representation removes the per-row costs that
dominate interpretation -- building a :class:`RowEnvironment` dict per tuple,
re-validating rows on every operator, and re-resolving column names row by
row.  Expressions are evaluated column-at-a-time with names resolved once per
batch, joins gather matched rows with index vectors, and annotation
combination runs over whole vectors (numpy-accelerated for N, B and the UA
pair semiring).

Both engines must return identical relations; semantics with latitude
(ordering ties, aggregate weights, union compatibility) are shared via
:mod:`repro.db.engine.common`.
"""

from __future__ import annotations

import logging
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.db import algebra
from repro.db.database import Database
from repro.db.expressions import (
    _ARITHMETIC,
    _COMPARATORS,
    SCALAR_FUNCTIONS,
    And,
    Arithmetic,
    Between,
    Case,
    Column,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    NameLookup,
    Negate,
    Not,
    Or,
    Parameter,
    RowEnvironment,
)
from repro.db.relation import KRelation, Row
from repro.db.schema import Attribute, RelationSchema
from repro.db.engine.base import EvaluationError, ExecutionEngine
from repro.db.engine.common import (
    annotation_weight,
    check_union_compatible,
    combine_aggregate,
    equality_columns,
    resolve_limit_count,
    select_limit_rows,
)
from repro.db.engine import parallel
from repro.db.engine.vectors import annotation_ops
from repro.semirings.boolean import BooleanSemiring
from repro.semirings.natural import NaturalSemiring
from repro.semirings.ua import UASemiring

logger = logging.getLogger(__name__)


class ColumnarEngine(ExecutionEngine):
    """Column-at-a-time evaluation with vectorized annotation arithmetic."""

    name = "columnar"

    def execute(self, plan: algebra.Operator, database: Database,
                params=None) -> KRelation:
        executor = _ColumnarExecutor(database)
        return executor.to_relation(executor.run(self.bind(plan, params)))


class _Batch:
    """A column-major slice of a relation.

    ``consolidated`` marks batches whose rows are distinct and whose
    annotations are non-zero -- the invariant a :class:`KRelation` maintains.
    Operators that merge duplicates (projection, union) clear it; operators
    that need it (distinct, aggregate, limit, difference) re-establish it.
    """

    __slots__ = ("schema", "columns", "ann", "length", "consolidated")

    def __init__(self, schema: RelationSchema, columns: List[List[Any]],
                 ann: Any, length: int, consolidated: bool) -> None:
        self.schema = schema
        self.columns = columns
        self.ann = ann
        self.length = length
        self.consolidated = consolidated

    def rows(self) -> List[Row]:
        """Materialize the batch's rows as tuples (row-major view)."""
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))


class _ColumnContext:
    """Per-batch column name resolution (the columnar RowEnvironment).

    Resolution follows :class:`NameLookup` -- the shared implementation of
    :meth:`RowEnvironment.lookup`'s precedence rules -- built once per batch
    and mapping names to whole column vectors instead of row values.
    """

    __slots__ = ("names", "columns", "length", "_lookup")

    def __init__(self, names: Sequence[str], columns: List[List[Any]],
                 length: int) -> None:
        self.names = tuple(names)
        self.columns = columns
        self.length = length
        self._lookup = NameLookup(names, columns)

    def column(self, ref: Column) -> List[Any]:
        return self._lookup.lookup(ref.name, ref.qualifier)


# ---------------------------------------------------------------------------
# Vectorized expression evaluation.
# ---------------------------------------------------------------------------

def _eval_vector(expr: Expression, ctx: _ColumnContext) -> List[Any]:
    """Evaluate ``expr`` over every row of the batch, returning a column."""
    handler = _VECTOR_HANDLERS.get(type(expr))
    if handler is not None:
        return handler(expr, ctx)
    # Unknown expression type: fall back to row-at-a-time evaluation.
    rows = zip(*ctx.columns) if ctx.columns else iter([()] * ctx.length)
    return [expr.evaluate(RowEnvironment(ctx.names, row)) for row in rows]


def _vec_literal(expr: Literal, ctx: _ColumnContext) -> List[Any]:
    return [expr.value] * ctx.length


def _vec_column(expr: Column, ctx: _ColumnContext) -> List[Any]:
    return ctx.column(expr)


def _vec_parameter(expr: Parameter, ctx: _ColumnContext) -> List[Any]:
    raise EvaluationError(
        f"unbound query parameter {expr.placeholder!r} reached the columnar "
        "engine; supply bindings via execute(plan, database, params=...)"
    )


def _vec_comparison(expr: Comparison, ctx: _ColumnContext) -> List[Any]:
    op = _COMPARATORS[expr.op]
    left = _eval_vector(expr.left, ctx)
    right = _eval_vector(expr.right, ctx)
    out: List[Any] = []
    append = out.append
    for a, b in zip(left, right):
        if a is None or b is None:
            append(None)
            continue
        try:
            append(op(a, b))
        except TypeError:
            # Mixed-type comparisons (e.g. string vs number) are unknown.
            append(None)
    return out


def _vec_and(expr: And, ctx: _ColumnContext) -> List[Any]:
    state: List[Any] = [True] * ctx.length
    for operand in expr.operands:
        column = _eval_vector(operand, ctx)
        for i, value in enumerate(column):
            if state[i] is False:
                continue
            if value is False:
                state[i] = False
            elif value is None:
                state[i] = None
    return state


def _vec_or(expr: Or, ctx: _ColumnContext) -> List[Any]:
    state: List[Any] = [False] * ctx.length
    for operand in expr.operands:
        column = _eval_vector(operand, ctx)
        for i, value in enumerate(column):
            if state[i] is True:
                continue
            if value is True:
                state[i] = True
            elif value is None:
                state[i] = None
    return state


def _vec_not(expr: Not, ctx: _ColumnContext) -> List[Any]:
    return [None if v is None else (not v) for v in _eval_vector(expr.operand, ctx)]


def _vec_arithmetic(expr: Arithmetic, ctx: _ColumnContext) -> List[Any]:
    op = _ARITHMETIC[expr.op]
    left = _eval_vector(expr.left, ctx)
    right = _eval_vector(expr.right, ctx)
    out: List[Any] = []
    append = out.append
    for a, b in zip(left, right):
        if a is None or b is None:
            append(None)
            continue
        try:
            append(op(a, b))
        except TypeError:
            append(None)
    return out


def _vec_negate(expr: Negate, ctx: _ColumnContext) -> List[Any]:
    return [None if v is None else -v for v in _eval_vector(expr.operand, ctx)]


def _vec_between(expr: Between, ctx: _ColumnContext) -> List[Any]:
    values = _eval_vector(expr.operand, ctx)
    lows = _eval_vector(expr.low, ctx)
    highs = _eval_vector(expr.high, ctx)
    out: List[Any] = []
    append = out.append
    for value, low, high in zip(values, lows, highs):
        if value is None or low is None or high is None:
            append(None)
            continue
        try:
            append(low <= value <= high)
        except TypeError:
            append(None)
    return out


def _vec_inlist(expr: InList, ctx: _ColumnContext) -> List[Any]:
    values = _eval_vector(expr.operand, ctx)
    candidates = [_eval_vector(candidate, ctx) for candidate in expr.values]
    out: List[Any] = []
    append = out.append
    for i, value in enumerate(values):
        if value is None:
            append(None)
            continue
        saw_unknown = False
        matched = False
        for candidate in candidates:
            other = candidate[i]
            if other is None:
                saw_unknown = True
            elif value == other:
                matched = True
                break
        append(True if matched else (None if saw_unknown else False))
    return out


def _vec_isnull(expr: IsNull, ctx: _ColumnContext) -> List[Any]:
    if expr.negated:
        return [v is not None for v in _eval_vector(expr.operand, ctx)]
    return [v is None for v in _eval_vector(expr.operand, ctx)]


def _vec_like(expr: Like, ctx: _ColumnContext) -> List[Any]:
    regex = re.compile(re.escape(expr.pattern).replace("%", ".*").replace("_", "."))
    out: List[Any] = []
    append = out.append
    for value in _eval_vector(expr.operand, ctx):
        if value is None:
            append(None)
        else:
            append(regex.fullmatch(str(value)) is not None)
    return out


def _vec_case(expr: Case, ctx: _ColumnContext) -> List[Any]:
    results = [_eval_vector(result, ctx) for _, result in expr.whens]
    else_column = (
        _eval_vector(expr.else_result, ctx) if expr.else_result is not None else None
    )
    out: List[Any] = [None] * ctx.length
    if expr.operand is not None:
        subjects = _eval_vector(expr.operand, ctx)
        whens = [_eval_vector(when_value, ctx) for when_value, _ in expr.whens]
        for i, subject in enumerate(subjects):
            chosen = else_column[i] if else_column is not None else None
            if subject is not None:
                for branch, when_column in enumerate(whens):
                    if subject == when_column[i]:
                        chosen = results[branch][i]
                        break
            out[i] = chosen
        return out
    conditions = [_eval_vector(condition, ctx) for condition, _ in expr.whens]
    for i in range(ctx.length):
        chosen = else_column[i] if else_column is not None else None
        for branch, condition in enumerate(conditions):
            if condition[i] is True:
                chosen = results[branch][i]
                break
        out[i] = chosen
    return out


def _vec_function(expr: FunctionCall, ctx: _ColumnContext) -> List[Any]:
    func = SCALAR_FUNCTIONS[expr.name.lower()]
    args = [_eval_vector(arg, ctx) for arg in expr.args]
    if not args:
        return [func() for _ in range(ctx.length)]
    return [func(*values) for values in zip(*args)]


_VECTOR_HANDLERS: Dict[type, Callable[[Any, _ColumnContext], List[Any]]] = {
    Literal: _vec_literal,
    Column: _vec_column,
    Parameter: _vec_parameter,
    Comparison: _vec_comparison,
    And: _vec_and,
    Or: _vec_or,
    Not: _vec_not,
    Arithmetic: _vec_arithmetic,
    Negate: _vec_negate,
    Between: _vec_between,
    InList: _vec_inlist,
    IsNull: _vec_isnull,
    Like: _vec_like,
    Case: _vec_case,
    FunctionCall: _vec_function,
}


# ---------------------------------------------------------------------------
# The executor.
# ---------------------------------------------------------------------------

class _ColumnarExecutor:
    """Evaluates one plan against one database, batch at a time."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.semiring = database.semiring
        self.ops = annotation_ops(database.semiring)
        # Without zero divisors a product of stored (non-zero) annotations can
        # never be zero, so join outputs keep the no-zeros invariant.
        base = database.semiring
        if isinstance(base, UASemiring):
            base = base.base
        self._zero_divisor_free = isinstance(base, (NaturalSemiring, BooleanSemiring))

    def run(self, plan: algebra.Operator) -> _Batch:
        method = getattr(self, f"_exec_{type(plan).__name__.lower()}", None)
        if method is None:
            raise EvaluationError(f"cannot evaluate operator {type(plan).__name__}")
        return method(plan)

    # -- batch plumbing -----------------------------------------------------

    def _context(self, batch: _Batch) -> _ColumnContext:
        return _ColumnContext(batch.schema.attribute_names, batch.columns, batch.length)

    def _from_mapping(self, schema: RelationSchema,
                      mapping: Dict[Row, Any]) -> _Batch:
        rows = list(mapping.keys())
        n = len(rows)
        if schema.arity and n:
            columns = [list(column) for column in zip(*rows)]
        else:
            columns = [[] for _ in range(schema.arity)]
        ann = self.ops.from_annotations(mapping.values(), n)
        return _Batch(schema, columns, ann, n, consolidated=True)

    def _mapping(self, batch: _Batch) -> Dict[Row, Any]:
        """Collapse a batch to the KRelation invariant: distinct rows, no zeros."""
        rows = batch.rows()
        annotations = self.ops.annotations(batch.ann)
        if batch.consolidated:
            return dict(zip(rows, annotations))
        plus = self.semiring.plus
        is_zero = self.semiring.is_zero
        merged: Dict[Row, Any] = {}
        for row, annotation in zip(rows, annotations):
            if row in merged:
                merged[row] = plus(merged[row], annotation)
            else:
                merged[row] = annotation
        return {row: ann for row, ann in merged.items() if not is_zero(ann)}

    def _consolidate(self, batch: _Batch) -> _Batch:
        if batch.consolidated:
            return batch
        return self._from_mapping(batch.schema, self._mapping(batch))

    def to_relation(self, batch: _Batch) -> KRelation:
        return KRelation._from_validated(
            batch.schema, self.semiring, self._mapping(batch)
        )

    # -- leaves --------------------------------------------------------------

    def _exec_relationref(self, plan: algebra.RelationRef) -> _Batch:
        relation = self.database.relation(plan.name)
        schema = relation.schema
        if plan.alias and plan.alias.lower() != plan.name.lower():
            schema = schema.rename(plan.alias)
        rows = list(relation.rows())
        n = len(rows)
        if schema.arity and n:
            columns = [list(column) for column in zip(*rows)]
        else:
            columns = [[] for _ in range(schema.arity)]
        ann = self.ops.from_annotations(
            (relation.annotation(row) for row in rows), n
        )
        return _Batch(schema, columns, ann, n, consolidated=True)

    # -- unary operators ------------------------------------------------------

    def _exec_qualify(self, plan: algebra.Qualify) -> _Batch:
        batch = self.run(plan.child)
        attributes = [
            Attribute(f"{plan.qualifier}.{attr.name.split('.')[-1]}", attr.data_type)
            for attr in batch.schema.attributes
        ]
        schema = RelationSchema(plan.qualifier, attributes)
        return _Batch(schema, batch.columns, batch.ann, batch.length,
                      batch.consolidated)

    def _exec_selection(self, plan: algebra.Selection) -> _Batch:
        batch = self.run(plan.child)
        return self._filter(batch, plan.predicate)

    def _filter(self, batch: _Batch, predicate: Expression) -> _Batch:
        if parallel.eligible(batch.length):
            try:
                return parallel.parallel_filter(batch, predicate, self.ops)
            except Exception:
                logger.warning("parallel selection failed; falling back to "
                               "serial evaluation", exc_info=True)
        ctx = self._context(batch)
        mask = [value is True for value in _eval_vector(predicate, ctx)]
        if all(mask):
            return batch
        columns = [
            [value for value, keep in zip(column, mask) if keep]
            for column in batch.columns
        ]
        ann = self.ops.compress(batch.ann, mask)
        return _Batch(batch.schema, columns, ann, sum(mask), batch.consolidated)

    def _exec_projection(self, plan: algebra.Projection) -> _Batch:
        batch = self.run(plan.child)
        columns = None
        if parallel.eligible(batch.length):
            try:
                columns = parallel.parallel_project(
                    batch, [expr for expr, _ in plan.items])
            except Exception:
                logger.warning("parallel projection failed; falling back to "
                               "serial evaluation", exc_info=True)
        if columns is None:
            ctx = self._context(batch)
            columns = [_eval_vector(expr, ctx) for expr, _ in plan.items]
        schema = RelationSchema(
            batch.schema.name,
            [Attribute(name) for _, name in plan.items],
        )
        return _Batch(schema, columns, batch.ann, batch.length, consolidated=False)

    def _exec_distinct(self, plan: algebra.Distinct) -> _Batch:
        batch = self._consolidate(self.run(plan.child))
        if isinstance(self.semiring, (NaturalSemiring, BooleanSemiring)):
            # delta of a consolidated (non-zero) N/B annotation is always 1:
            # keep the vectorized fast path.
            ann = self.ops.ones(batch.length)
        else:
            # Pair/vector semirings need the component-wise delta (a UA pair
            # [0, d] must stay uncertain after duplicate elimination).
            delta = self.semiring.delta
            ann = self.ops.from_annotations(
                [delta(annotation)
                 for annotation in self.ops.annotations(batch.ann)],
                batch.length,
            )
        return _Batch(batch.schema, batch.columns, ann,
                      batch.length, consolidated=True)

    # -- binary operators -----------------------------------------------------

    def _gather_join(self, left: _Batch, right: _Batch,
                     left_sel: List[int], right_sel: List[int]) -> _Batch:
        schema = left.schema.concat(right.schema)
        columns = [[column[i] for i in left_sel] for column in left.columns]
        columns += [[column[j] for j in right_sel] for column in right.columns]
        ann = self.ops.multiply(
            self.ops.take(left.ann, left_sel), self.ops.take(right.ann, right_sel)
        )
        consolidated = (
            left.consolidated and right.consolidated and self._zero_divisor_free
        )
        return _Batch(schema, columns, ann, len(left_sel), consolidated)

    def _cross_selectors(self, left: _Batch, right: _Batch) -> Tuple[List[int], List[int]]:
        left_sel = [i for i in range(left.length) for _ in range(right.length)]
        right_sel = list(range(right.length)) * left.length
        return left_sel, right_sel

    def _exec_crossproduct(self, plan: algebra.CrossProduct) -> _Batch:
        left = self.run(plan.left)
        right = self.run(plan.right)
        left_sel, right_sel = self._cross_selectors(left, right)
        return self._gather_join(left, right, left_sel, right_sel)

    def _exec_join(self, plan: algebra.Join) -> _Batch:
        left = self.run(plan.left)
        right = self.run(plan.right)
        predicate = plan.predicate
        equi = equality_columns(predicate, left.schema.attribute_names,
                                right.schema.attribute_names) if predicate else []
        if equi:
            left_key = [left.columns[left.schema.index_of(l)] for l, _ in equi]
            right_key = [right.columns[right.schema.index_of(r)] for _, r in equi]
            buckets: Optional[Dict[Tuple, List[int]]] = None
            if parallel.eligible(right.length):
                try:
                    buckets = parallel.parallel_build(right_key, right.length)
                except Exception:
                    logger.warning("parallel hash-join build failed; falling "
                                   "back to serial build", exc_info=True)
            if buckets is None:
                buckets = {}
                for j, key in enumerate(zip(*right_key)):
                    buckets.setdefault(key, []).append(j)
            left_sel: List[int] = []
            right_sel: List[int] = []
            for i, key in enumerate(zip(*left_key)):
                matches = buckets.get(key)
                if matches:
                    left_sel.extend([i] * len(matches))
                    right_sel.extend(matches)
        else:
            left_sel, right_sel = self._cross_selectors(left, right)
        batch = self._gather_join(left, right, left_sel, right_sel)
        if predicate is not None:
            # Re-check the full predicate (including equality conjuncts): hash
            # matching uses Python equality, but NULL join keys must compare
            # as unknown, exactly as the row engine evaluates them.
            batch = self._filter(batch, predicate)
        return batch

    def _exec_union(self, plan: algebra.Union) -> _Batch:
        left = self.run(plan.left)
        right = self.run(plan.right)
        # Batches all carry the executor's semiring (Database enforces one
        # semiring per instance), so only the arity check can fire here.
        check_union_compatible(left.schema, right.schema,
                               self.semiring, self.semiring, "UNION")
        columns = [
            left_column + right_column
            for left_column, right_column in zip(left.columns, right.columns)
        ]
        ann = self.ops.concat(left.ann, right.ann)
        return _Batch(left.schema, columns, ann, left.length + right.length,
                      consolidated=False)

    def _exec_difference(self, plan: algebra.Difference) -> _Batch:
        left = self.run(plan.left)
        right = self.run(plan.right)
        check_union_compatible(left.schema, right.schema,
                               self.semiring, self.semiring, "EXCEPT")
        semiring = self.semiring
        if not semiring.has_monus:
            raise EvaluationError(
                f"difference requires a semiring with a monus; {semiring.name} has none"
            )
        right_mapping = self._mapping(right)
        zero = semiring.zero
        result: Dict[Row, Any] = {}
        for row, annotation in self._mapping(left).items():
            remaining = semiring.monus(annotation, right_mapping.get(row, zero))
            if not semiring.is_zero(remaining):
                result[row] = remaining
        return self._from_mapping(left.schema, result)

    def _exec_intersection(self, plan: algebra.Intersection) -> _Batch:
        left = self.run(plan.left)
        right = self.run(plan.right)
        check_union_compatible(left.schema, right.schema,
                               self.semiring, self.semiring, "INTERSECT")
        semiring = self.semiring
        right_mapping = self._mapping(right)
        zero = semiring.zero
        result: Dict[Row, Any] = {}
        for row, annotation in self._mapping(left).items():
            shared = semiring.glb(annotation, right_mapping.get(row, zero))
            if not semiring.is_zero(shared):
                result[row] = shared
        return self._from_mapping(left.schema, result)

    # -- extended operators ----------------------------------------------------

    def _exec_aggregate(self, plan: algebra.Aggregate) -> _Batch:
        batch = self._consolidate(self.run(plan.child))
        ctx = self._context(batch)
        group_columns = [_eval_vector(expr, ctx) for expr, _ in plan.group_by]
        if group_columns:
            keys: List[Tuple] = list(zip(*group_columns))
        else:
            keys = [()] * batch.length
        groups: Dict[Tuple, List[int]] = {}
        for index, key in enumerate(keys):
            groups.setdefault(key, []).append(index)
        weights = [
            annotation_weight(annotation)
            for annotation in self.ops.annotations(batch.ann)
        ]
        argument_columns: List[Optional[List[Any]]] = [
            _eval_vector(agg.argument, ctx) if agg.argument is not None else None
            for agg in plan.aggregates
        ]
        group_names = [name for _, name in plan.group_by]
        out_names = group_names + [agg.name for agg in plan.aggregates]
        schema = RelationSchema(batch.schema.name, [Attribute(n) for n in out_names])
        result: Dict[Row, Any] = {}
        one = self.semiring.one
        for key, indices in groups.items():
            values = list(key)
            for agg, column in zip(plan.aggregates, argument_columns):
                if column is None:
                    weighted = [(1, weights[i]) for i in indices]
                else:
                    weighted = [(column[i], weights[i]) for i in indices]
                values.append(
                    combine_aggregate(agg.func, agg.argument is not None, weighted)
                )
            result[tuple(values)] = one
        return self._from_mapping(schema, result)

    def _exec_orderby(self, plan: algebra.OrderBy) -> _Batch:
        # Relations are unordered; ordering matters only below a Limit.
        return self.run(plan.child)

    def _exec_limit(self, plan: algebra.Limit) -> _Batch:
        child_plan = plan.child
        keys: Tuple[Tuple[Expression, bool], ...] = ()
        if isinstance(child_plan, algebra.OrderBy):
            keys = child_plan.keys
            child_plan = child_plan.child
        batch = self.run(child_plan)
        mapping = self._mapping(batch)
        names = batch.schema.attribute_names
        kept = select_limit_rows(mapping.items(), names, keys,
                                 resolve_limit_count(plan.count))
        return self._from_mapping(batch.schema, dict(kept))
