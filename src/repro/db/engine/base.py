"""The execution-engine interface.

Query evaluation is split into three stages: the SQL front-end builds a
logical :mod:`repro.db.algebra` plan, :mod:`repro.db.optimizer` rewrites it
into an equivalent cheaper plan, and an :class:`ExecutionEngine` evaluates the
plan against a :class:`~repro.db.database.Database`.  Engines are
interchangeable: every engine must produce the *same* :class:`KRelation` for
the same plan and database, so correctness properties (and the paper's
theorems) can be validated on one engine and performance measured on another.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db import algebra
    from repro.db.database import Database
    from repro.db.params import Params
    from repro.db.relation import KRelation


class EvaluationError(RuntimeError):
    """Raised when a plan cannot be evaluated against a database."""


class UnknownEngineError(EvaluationError, LookupError):
    """An engine name (argument or ``REPRO_ENGINE``) matches no registered backend.

    Subclasses :class:`EvaluationError` so existing handlers keep working, and
    ``LookupError`` because it is fundamentally a failed registry lookup.  The
    message always lists the registered engine names so a typo'd
    ``REPRO_ENGINE`` is diagnosable from the traceback alone.
    """

    def __init__(self, name: object, available: "tuple[str, ...]") -> None:
        super().__init__(
            f"unknown execution engine {name!r}; registered engines: "
            + ", ".join(available)
        )
        self.name = name
        self.available = available


class ExecutionEngine(ABC):
    """Evaluates relational algebra plans over a database.

    Engines are stateless between calls; all per-query state lives in the
    executor objects they create internally.  ``name`` identifies the engine
    in the registry (see :func:`repro.db.engine.get_engine`).

    Plans may contain :class:`~repro.db.expressions.Parameter` placeholders;
    every engine binds them at execution time (via :meth:`bind`) so a prepared
    plan can be cached once and executed many times with different values.
    """

    #: Registry name of the engine (e.g. ``"row"`` or ``"columnar"``).
    name: str = "abstract"

    @abstractmethod
    def execute(self, plan: "algebra.Operator", database: "Database",
                params: "Params" = None) -> "KRelation":
        """Evaluate ``plan`` against ``database`` and return the result.

        ``params`` carries the values for the plan's placeholders (a sequence
        for positional ``?``, a mapping for named ``:name``); ``None`` for a
        plan without placeholders.
        """

    @staticmethod
    def bind(plan: "algebra.Operator", params: "Params") -> "algebra.Operator":
        """Substitute placeholder values into ``plan`` (identity when none)."""
        from repro.db.params import bind_parameters

        return bind_parameters(plan, params)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
