"""Pluggable execution engines.

The engine package decouples *what* a plan computes (K-relational semantics,
defined once) from *how* it is computed.  Three engines ship by default:

* ``"row"`` -- the tuple-at-a-time reference interpreter,
* ``"columnar"`` -- vectorized evaluation over column-major batches with
  numpy-accelerated annotation vectors,
* ``"sqlite"`` -- plans compiled to SQL (one CTE per operator, see
  :mod:`repro.db.engine.compiler`) and executed natively on an in-memory
  stdlib :mod:`sqlite3` database holding the relations in the ``Enc``
  layout; unsupported plans fall back to the columnar engine with a logged
  warning.

Engines are looked up by name through :func:`get_engine`; third parties can
add their own with :func:`register_engine`.  The process-wide default is
``"row"`` and can be overridden with the ``REPRO_ENGINE`` environment
variable, per database via ``Database(engine=...)``, or per call via
``evaluate(plan, db, engine=...)``.  Unknown names raise
:class:`UnknownEngineError` listing what is registered.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Optional, Tuple, Union

from repro.db.engine.base import EvaluationError, ExecutionEngine, UnknownEngineError
from repro.db.engine.columnar import ColumnarEngine
from repro.db.engine.row import Evaluator, RowEngine
from repro.db.engine.sqlite import SQLiteEngine

#: Environment variable naming the process-wide default engine.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Fallback engine when neither the caller nor the environment chooses one.
DEFAULT_ENGINE = "row"

EngineSpec = Union[None, str, ExecutionEngine]

_FACTORIES: Dict[str, Callable[[], ExecutionEngine]] = {}
_INSTANCES: Dict[str, ExecutionEngine] = {}


def register_engine(name: str, factory: Callable[[], ExecutionEngine]) -> None:
    """Register an engine factory under ``name`` (case-insensitive)."""
    _FACTORIES[name.lower()] = factory
    _INSTANCES.pop(name.lower(), None)


def available_engines() -> Tuple[str, ...]:
    """Names of all registered engines."""
    return tuple(sorted(_FACTORIES))


def get_engine(spec: EngineSpec = None) -> ExecutionEngine:
    """Resolve an engine name (or instance, or None for the default)."""
    if isinstance(spec, ExecutionEngine):
        return spec
    if spec is None:
        spec = os.environ.get(ENGINE_ENV_VAR) or DEFAULT_ENGINE
    name = spec.lower()
    if name not in _FACTORIES:
        raise UnknownEngineError(spec, available_engines())
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


# -- dispatch accounting ------------------------------------------------------
#
# Process-wide counters of how many plans each engine actually executed.
# ``evaluate`` records the engine it resolved; the ``auto`` meta-engine
# additionally records the backend it delegated to, so the counters answer
# both "how often was auto used" and "where did the work really run".
# Surfaced by the HTTP server under ``GET /metrics``.

_DISPATCH_LOCK = threading.Lock()
_DISPATCH_COUNTS: Dict[str, int] = {}


def record_dispatch(name: str) -> None:
    """Count one plan execution dispatched to engine ``name``."""
    with _DISPATCH_LOCK:
        _DISPATCH_COUNTS[name] = _DISPATCH_COUNTS.get(name, 0) + 1


def dispatch_counts() -> Dict[str, int]:
    """Per-engine dispatch counters (a snapshot copy, sorted by name)."""
    with _DISPATCH_LOCK:
        return {name: _DISPATCH_COUNTS[name]
                for name in sorted(_DISPATCH_COUNTS)}


def reset_dispatch_counts() -> None:
    """Zero the dispatch counters (test isolation)."""
    with _DISPATCH_LOCK:
        _DISPATCH_COUNTS.clear()


from repro.db.engine.auto import AutoEngine  # noqa: E402  (needs get_engine)

register_engine(RowEngine.name, RowEngine)
register_engine(ColumnarEngine.name, ColumnarEngine)
register_engine(SQLiteEngine.name, SQLiteEngine)
register_engine(AutoEngine.name, AutoEngine)

__all__ = [
    "AutoEngine",
    "ColumnarEngine",
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "EvaluationError",
    "Evaluator",
    "ExecutionEngine",
    "RowEngine",
    "SQLiteEngine",
    "UnknownEngineError",
    "available_engines",
    "dispatch_counts",
    "get_engine",
    "record_dispatch",
    "register_engine",
    "reset_dispatch_counts",
]
