"""Helpers shared by the row and columnar execution engines.

Both engines must produce byte-identical :class:`KRelation` results, so any
semantics that involve a choice (sort tie-breaking, aggregate weighting, hash
join key extraction, union compatibility) live here and are used by both.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.db.expressions import (
    And,
    Column,
    Comparison,
    Expression,
    RowEnvironment,
)
from repro.db.relation import KRelation, Row, _row_sort_key
from repro.db.engine.base import EvaluationError
from repro.semirings.ua import UAAnnotation


def annotation_weight(annotation: Any) -> int:
    """Bag multiplicity carried by an annotation (1 when not applicable).

    Integer annotations (the N semiring) weight SUM/COUNT/AVG directly.  A
    :class:`UAAnnotation` contributes the multiplicity of its best-guess
    component when that component is an integer -- collapsing it to 1 would
    silently drop bag multiplicity from aggregates over UA-relations.
    """
    if isinstance(annotation, UAAnnotation):
        annotation = annotation.determinized
    if isinstance(annotation, int) and not isinstance(annotation, bool):
        return annotation
    return 1


def combine_aggregate(func: str, has_argument: bool,
                      weighted: List[Tuple[Any, int]]) -> Any:
    """Fold one aggregate function over ``(value, weight)`` pairs.

    ``weighted`` holds one entry per group member; for ``COUNT(*)`` the value
    slot is 1.  NULL values are ignored except by ``COUNT(*)``, matching SQL.
    """
    func = func.lower()
    non_null = [(v, w) for v, w in weighted if v is not None]
    if func == "count":
        if not has_argument:
            return sum(w for _, w in weighted)
        return sum(w for _, w in non_null)
    if not non_null:
        return None
    if func == "sum":
        return sum(v * w for v, w in non_null)
    if func == "avg":
        total_weight = sum(w for _, w in non_null)
        return sum(v * w for v, w in non_null) / total_weight
    if func == "min":
        return min(v for v, _ in non_null)
    if func == "max":
        return max(v for v, _ in non_null)
    raise EvaluationError(f"unsupported aggregate {func!r}")


def resolve_limit_count(count: Any) -> int:
    """Normalize :attr:`algebra.Limit.count` to a plain integer.

    Accepts a bare int (the classic ``LIMIT 3``) or a constant expression --
    the :class:`~repro.db.expressions.Literal` a ``LIMIT ?`` placeholder was
    bound to.  An unbound :class:`Parameter` raises its own descriptive error
    when evaluated; any other value is rejected so all engines agree on what a
    legal row count is.
    """
    if isinstance(count, Expression):
        count = count.evaluate(_EMPTY_ENVIRONMENT)
    if isinstance(count, bool) or not isinstance(count, int):
        raise EvaluationError(
            f"LIMIT requires an integer row count, got {count!r}"
        )
    return count


_EMPTY_ENVIRONMENT = RowEnvironment((), ())


class _OrderKey:
    """Comparable wrapper handling NULLs and descending order."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return not self.descending
        if b is None:
            return self.descending
        try:
            less = a < b
        except TypeError:
            less = str(a) < str(b)
        return not less if self.descending else less

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self.value == other.value


def select_limit_rows(items: Iterable[Tuple[Row, Any]],
                      names: Tuple[str, ...],
                      keys: Tuple[Tuple[Expression, bool], ...],
                      count: int) -> List[Tuple[Row, Any]]:
    """The first ``count`` rows under the ORDER BY ``keys``.

    Without keys the rows are ordered by :func:`_row_sort_key`; with keys,
    ties are broken by the full row so both engines agree on the result.
    ``heapq.nsmallest`` keeps the cost at O(n log count) instead of a full
    sort of the child relation.
    """
    if count <= 0:
        return []
    if not keys:
        return heapq.nsmallest(count, items, key=lambda item: _row_sort_key(item[0]))

    def sort_key(item: Tuple[Row, Any]):
        env = RowEnvironment(names, item[0])
        parts = [_OrderKey(expr.evaluate(env), descending) for expr, descending in keys]
        return (tuple(parts), _row_sort_key(item[0]))

    return heapq.nsmallest(count, items, key=sort_key)


def check_union_compatible(left_schema, right_schema, left_semiring,
                           right_semiring, operator: str) -> None:
    """Raise :class:`EvaluationError` unless the inputs can be combined.

    Besides the arity check, the two inputs must share a semiring -- adding a
    B-annotation to an N-relation would silently coerce annotations.
    """
    if left_schema.arity != right_schema.arity:
        raise EvaluationError(
            f"{operator} requires union-compatible schemas: "
            f"{left_schema} vs {right_schema}"
        )
    if left_semiring is not right_semiring and left_semiring.name != right_semiring.name:
        raise EvaluationError(
            f"{operator} requires both inputs to use the same semiring: "
            f"{left_semiring.name} vs {right_semiring.name}"
        )


def equality_columns(predicate: Optional[Expression],
                     left_names: Tuple[str, ...],
                     right_names: Tuple[str, ...]) -> List[Tuple[str, str]]:
    """Extract ``left.col = right.col`` conjuncts usable for a hash join."""
    if predicate is None:
        return []
    conjuncts: List[Expression] = []
    if isinstance(predicate, And):
        conjuncts.extend(predicate.operands)
    else:
        conjuncts.append(predicate)
    left_lower = {n.lower(): n for n in left_names}
    left_bases = {n.lower().split(".")[-1]: n for n in left_names}
    right_lower = {n.lower(): n for n in right_names}
    right_bases = {n.lower().split(".")[-1]: n for n in right_names}

    def resolve(column: Column, full: Dict[str, str], bases: Dict[str, str]) -> Optional[str]:
        key = column.full_name.lower()
        if key in full:
            return full[key]
        if column.qualifier is None and column.name.lower() in bases:
            return bases[column.name.lower()]
        return None

    pairs: List[Tuple[str, str]] = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        if not isinstance(conjunct.left, Column) or not isinstance(conjunct.right, Column):
            continue
        # Only use a conjunct for hashing when each operand resolves on
        # exactly one side; otherwise a mis-paired bucket key could drop
        # legitimate matches.
        a_left = resolve(conjunct.left, left_lower, left_bases)
        a_right = resolve(conjunct.left, right_lower, right_bases)
        b_left = resolve(conjunct.right, left_lower, left_bases)
        b_right = resolve(conjunct.right, right_lower, right_bases)
        if a_left and b_right and not a_right and not b_left:
            pairs.append((a_left, b_right))
        elif b_left and a_right and not b_right and not a_left:
            pairs.append((b_left, a_right))
    return pairs


def write_enc_table(cursor, table: str, arity: int, encode,
                    items: Iterable[Tuple[Row, Any]]) -> None:
    """(Re)build one ``Enc`` table: the shared physical design.

    Used by both the SQLite engine's in-memory loader and the persistent
    ``.uadb`` store, so the two can never drift apart: type-less columns
    ``c0..c{arity-1}`` plus the annotation column ``a`` (BLOB affinity --
    values are stored exactly as bound, no coercion, required for decode
    fidelity), one single-column index per data column (joins use a real
    index instead of rebuilding SQLite's automatic one per execution), and
    ``ANALYZE`` statistics (so the planner only picks an index where it
    beats a scan).  Transaction management and error handling stay with the
    caller -- the engine drops a half-loaded in-memory table, the store
    rolls back to the previously persisted one.
    """
    columns = ", ".join([f"c{i}" for i in range(arity)] + ["a"])
    placeholders = ", ".join(["?"] * (arity + 1))
    cursor.execute(f"DROP TABLE IF EXISTS {table}")
    cursor.execute(f"CREATE TABLE {table} ({columns})")
    cursor.executemany(
        f"INSERT INTO {table} VALUES ({placeholders})",
        (row + (encode(annotation),) for row, annotation in items),
    )
    base = table.strip('"')
    for i in range(arity):
        cursor.execute(f'CREATE INDEX "ix_{base}_{i}" ON {table} (c{i})')
    cursor.execute("ANALYZE")
