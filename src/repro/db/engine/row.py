"""The row-at-a-time reference engine.

RA+ operators combine annotations with the semiring operations exactly as in
Green et al. (and Section 2.3 of the UA-DB paper):

* union adds annotations,
* join multiplies the annotations of the joined tuples,
* projection sums the annotations of all input tuples mapping to the same
  output tuple,
* selection multiplies by 1_K or 0_K depending on the predicate.

The additional operators (distinct, aggregation, ordering, limit) are
evaluated with conventional SQL semantics.  This engine favours clarity over
speed; :mod:`repro.db.engine.columnar` is the vectorized counterpart.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.db import algebra
from repro.db.database import Database
from repro.db.expressions import Expression, RowEnvironment, RowEnvironmentBuilder
from repro.db.relation import KRelation, Row
from repro.db.schema import Attribute, RelationSchema
from repro.db.engine.base import EvaluationError, ExecutionEngine
from repro.db.engine.common import (
    annotation_weight,
    check_union_compatible,
    combine_aggregate,
    equality_columns,
    resolve_limit_count,
    select_limit_rows,
)


class RowEngine(ExecutionEngine):
    """Tuple-at-a-time interpretation of algebra plans (the reference engine)."""

    name = "row"

    def execute(self, plan: algebra.Operator, database: Database,
                params=None) -> KRelation:
        return Evaluator(database).run(self.bind(plan, params))


class Evaluator:
    """Stateless-per-call evaluator over a fixed database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.semiring = database.semiring

    def run(self, plan: algebra.Operator) -> KRelation:
        """Dispatch on the operator type."""
        method = getattr(self, f"_eval_{type(plan).__name__.lower()}", None)
        if method is None:
            raise EvaluationError(f"cannot evaluate operator {type(plan).__name__}")
        return method(plan)

    # -- leaves ---------------------------------------------------------------

    def _eval_relationref(self, plan: algebra.RelationRef) -> KRelation:
        relation = self.database.relation(plan.name)
        if plan.alias and plan.alias.lower() != plan.name.lower():
            return relation.rename(plan.alias)
        return relation

    # -- unary operators --------------------------------------------------------

    def _eval_qualify(self, plan: algebra.Qualify) -> KRelation:
        child = self.run(plan.child)
        attributes = [
            Attribute(f"{plan.qualifier}.{attr.name.split('.')[-1]}", attr.data_type)
            for attr in child.schema.attributes
        ]
        schema = RelationSchema(plan.qualifier, attributes)
        # Rows are unchanged (only attribute names differ), so the child's
        # validated mapping can be reused wholesale.
        return KRelation._from_validated(schema, child.semiring,
                                         dict(child.items()))

    def _eval_selection(self, plan: algebra.Selection) -> KRelation:
        child = self.run(plan.child)
        environments = RowEnvironmentBuilder(child.schema.attribute_names)
        predicate = plan.predicate
        # Passing rows keep their (already validated, non-zero) annotations.
        data = {
            row: annotation
            for row, annotation in child.items()
            if predicate.evaluate(environments.build(row)) is True
        }
        return KRelation._from_validated(child.schema, child.semiring, data)

    def _eval_projection(self, plan: algebra.Projection) -> KRelation:
        child = self.run(plan.child)
        environments = RowEnvironmentBuilder(child.schema.attribute_names)
        schema = RelationSchema(
            child.schema.name,
            [Attribute(name) for _, name in plan.items],
        )
        semiring = child.semiring
        plus = semiring.plus
        expressions = [expr for expr, _ in plan.items]
        # Output rows are freshly computed (arity is fixed by construction and
        # the output attributes are untyped), so annotations are summed into a
        # plain dict instead of re-validating every row via ``add``.
        data: Dict[Row, Any] = {}
        for row, annotation in child.items():
            env = environments.build(row)
            out_row = tuple(expr.evaluate(env) for expr in expressions)
            current = data.get(out_row)
            data[out_row] = annotation if current is None else plus(current, annotation)
        for out_row, annotation in list(data.items()):
            if semiring.is_zero(annotation):
                del data[out_row]
        return KRelation._from_validated(schema, semiring, data)

    def _eval_distinct(self, plan: algebra.Distinct) -> KRelation:
        child = self.run(plan.child)
        delta = child.semiring.delta
        # Rows are already validated and distinct by the child's invariant;
        # delta of a stored (non-zero) annotation is non-zero in every
        # shipped semiring, so the mapping feeds _from_validated directly.
        # delta is semiring-aware: component-wise for pair/vector semirings
        # (a UA pair [0, d] stays uncertain), 1_K for scalar ones.
        data = {row: delta(annotation) for row, annotation in child.items()}
        return KRelation._from_validated(child.schema, child.semiring, data)

    # -- binary operators ---------------------------------------------------------

    def _product_schema(self, left: KRelation, right: KRelation) -> RelationSchema:
        return left.schema.concat(right.schema)

    def _eval_crossproduct(self, plan: algebra.CrossProduct) -> KRelation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        schema = self._product_schema(left, right)
        result = KRelation(schema, left.semiring)
        for left_row, left_annotation in left.items():
            for right_row, right_annotation in right.items():
                result.add(
                    left_row + right_row,
                    left.semiring.times(left_annotation, right_annotation),
                )
        return result

    def _eval_join(self, plan: algebra.Join) -> KRelation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        schema = self._product_schema(left, right)
        environments = RowEnvironmentBuilder(schema.attribute_names)
        semiring = left.semiring
        times = semiring.times
        is_zero = semiring.is_zero
        # Every (left row, right row) pair yields a distinct combined row, so
        # annotations never need summing; products of stored annotations are
        # only dropped when a semiring with zero divisors produces 0_K.
        data: Dict[Row, Any] = {}
        predicate = plan.predicate
        # Hash join on equality conjuncts when possible, else nested loops.
        equi = equality_columns(predicate, left.schema.attribute_names,
                                right.schema.attribute_names) if predicate else []
        if equi:
            left_idx = [left.schema.index_of(l) for l, _ in equi]
            right_idx = [right.schema.index_of(r) for _, r in equi]
            buckets: Dict[Tuple, List[Tuple[Row, Any]]] = {}
            for right_row, right_annotation in right.items():
                key = tuple(right_row[i] for i in right_idx)
                buckets.setdefault(key, []).append((right_row, right_annotation))
            for left_row, left_annotation in left.items():
                key = tuple(left_row[i] for i in left_idx)
                for right_row, right_annotation in buckets.get(key, ()):  # noqa: B020
                    combined = left_row + right_row
                    if predicate is None or predicate.evaluate(
                        environments.build(combined)
                    ) is True:
                        product = times(left_annotation, right_annotation)
                        if not is_zero(product):
                            data[combined] = product
            return KRelation._from_validated(schema, semiring, data)
        for left_row, left_annotation in left.items():
            for right_row, right_annotation in right.items():
                combined = left_row + right_row
                if predicate is None or predicate.evaluate(
                    environments.build(combined)
                ) is True:
                    product = times(left_annotation, right_annotation)
                    if not is_zero(product):
                        data[combined] = product
        return KRelation._from_validated(schema, semiring, data)

    def _eval_union(self, plan: algebra.Union) -> KRelation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        check_union_compatible(left.schema, right.schema, left.semiring,
                               right.semiring, "UNION")
        semiring = left.semiring
        plus = semiring.plus
        # Both inputs hold validated rows with non-zero annotations; merge the
        # mappings and sum where they overlap.
        data: Dict[Row, Any] = dict(left.items())
        for row, annotation in right.items():
            current = data.get(row)
            data[row] = annotation if current is None else plus(current, annotation)
        for row, annotation in list(data.items()):
            if semiring.is_zero(annotation):
                del data[row]
        return KRelation._from_validated(left.schema, semiring, data)

    def _eval_difference(self, plan: algebra.Difference) -> KRelation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        check_union_compatible(left.schema, right.schema, left.semiring,
                               right.semiring, "EXCEPT")
        semiring = left.semiring
        if not semiring.has_monus:
            raise EvaluationError(
                f"difference requires a semiring with a monus; {semiring.name} has none"
            )
        result = KRelation(left.schema, semiring)
        for row, annotation in left.items():
            remaining = semiring.monus(annotation, right.annotation(row))
            result.set_annotation(row, remaining)
        return result

    def _eval_intersection(self, plan: algebra.Intersection) -> KRelation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        check_union_compatible(left.schema, right.schema, left.semiring,
                               right.semiring, "INTERSECT")
        semiring = left.semiring
        result = KRelation(left.schema, semiring)
        for row, annotation in left.items():
            shared = semiring.glb(annotation, right.annotation(row))
            result.set_annotation(row, shared)
        return result

    # -- extended operators ----------------------------------------------------------

    def _eval_aggregate(self, plan: algebra.Aggregate) -> KRelation:
        child = self.run(plan.child)
        names = child.schema.attribute_names
        environments = RowEnvironmentBuilder(names)
        semiring = child.semiring
        group_names = [name for _, name in plan.group_by]
        out_names = group_names + [agg.name for agg in plan.aggregates]
        schema = RelationSchema(child.schema.name, [Attribute(n) for n in out_names])
        groups: Dict[Tuple, List[Tuple[Row, Any]]] = {}
        for row, annotation in child.items():
            env = environments.build(row)
            key = tuple(expr.evaluate(env) for expr, _ in plan.group_by)
            groups.setdefault(key, []).append((row, annotation))
        result = KRelation(schema, semiring)
        for key, members in groups.items():
            values = list(key)
            for agg in plan.aggregates:
                values.append(self._aggregate_value(agg, members, names))
            result.add(tuple(values), semiring.one)
        return result

    def _aggregate_value(self, agg: algebra.AggregateFunction,
                         members: List[Tuple[Row, Any]],
                         names: Tuple[str, ...]) -> Any:
        weighted: List[Tuple[Any, int]] = []
        for row, annotation in members:
            weight = annotation_weight(annotation)
            if agg.argument is None:
                value: Any = 1
            else:
                value = agg.argument.evaluate(RowEnvironment(names, row))
            weighted.append((value, weight))
        return combine_aggregate(agg.func, agg.argument is not None, weighted)

    def _eval_orderby(self, plan: algebra.OrderBy) -> KRelation:
        # Relations are unordered; ordering matters only below a Limit, which
        # handles the sort itself.  Evaluating OrderBy alone is the identity.
        return self.run(plan.child)

    def _eval_limit(self, plan: algebra.Limit) -> KRelation:
        child_plan = plan.child
        keys: Tuple[Tuple[Expression, bool], ...] = ()
        if isinstance(child_plan, algebra.OrderBy):
            keys = child_plan.keys
            child_plan = child_plan.child
        child = self.run(child_plan)
        names = child.schema.attribute_names
        result = KRelation(child.schema, child.semiring)
        for row, annotation in select_limit_rows(child.items(), names, keys,
                                                 resolve_limit_count(plan.count)):
            result.add(row, annotation)
        return result
