"""Annotation vectors for the columnar engine.

A batch of tuples carries its annotations as a vector with elementwise
semiring operations.  For the hot semirings -- N (bag multiplicities), B
(set membership) and the UA pair semiring over either -- the vector is backed
by numpy arrays when numpy is installed, so join products and filters are
single array operations.  Every other semiring falls back to plain Python
lists with the semiring's own ``times``.

All implementations share one interface:

* ``from_annotations(values, n)`` -- build a vector from ``n`` annotations,
* ``ones(n)`` -- a vector of ``n`` copies of 1_K,
* ``take(vec, indices)`` / ``compress(vec, mask)`` -- gather / filter,
* ``concat(a, b)`` -- vector concatenation,
* ``multiply(a, b)`` -- elementwise semiring multiplication,
* ``annotations(vec)`` -- back to a list of plain annotation objects.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

from repro.semirings import Semiring
from repro.semirings.boolean import BooleanSemiring
from repro.semirings.natural import NaturalSemiring
from repro.semirings.ua import UAAnnotation, UASemiring

try:  # pragma: no cover - exercised indirectly via the fast path
    import numpy as _np
except ImportError:  # pragma: no cover - the pure-Python path is always tested
    _np = None


class GenericVectorOps:
    """Pure-Python annotation vectors; valid for any semiring."""

    def __init__(self, semiring: Semiring) -> None:
        self.semiring = semiring

    def from_annotations(self, values: Iterable[Any], n: int) -> List[Any]:
        return list(values)

    def ones(self, n: int) -> List[Any]:
        return [self.semiring.one] * n

    def take(self, vec: List[Any], indices: Sequence[int]) -> List[Any]:
        return [vec[i] for i in indices]

    def compress(self, vec: List[Any], mask: Sequence[bool]) -> List[Any]:
        return [value for value, keep in zip(vec, mask) if keep]

    def concat(self, a: List[Any], b: List[Any]) -> List[Any]:
        return a + b

    def multiply(self, a: List[Any], b: List[Any]) -> List[Any]:
        times = self.semiring.times
        return [times(x, y) for x, y in zip(a, b)]

    def annotations(self, vec: List[Any]) -> List[Any]:
        return list(vec)


#: Largest product of two int64 vector maxima that cannot have overflowed.
_INT64_MAX = 2**63 - 1


class NumpyScalarOps:
    """numpy-backed vectors for semirings over plain scalars (N and B).

    N-annotations are unbounded Python ints, while the fast path stores them
    as int64.  ``guard_overflow`` keeps the engines observationally identical
    anyway: vectors whose values do not fit int64 fall back to object dtype
    (exact Python ints), and ``multiply`` switches to exact arithmetic
    whenever the product of the two vector maxima could exceed int64 -- a
    cheap sound bound since N-annotations are non-negative.
    """

    def __init__(self, semiring: Semiring, dtype: Any, times: Any,
                 guard_overflow: bool = False) -> None:
        self.semiring = semiring
        self.dtype = dtype
        self._times = times
        self._guard = guard_overflow

    def _exact(self, values: List[Any]):
        vec = _np.empty(len(values), dtype=object)
        vec[:] = values
        return vec

    def from_annotations(self, values: Iterable[Any], n: int):
        if not self._guard:
            return _np.fromiter(values, dtype=self.dtype, count=n)
        materialized = list(values)
        try:
            return _np.fromiter(materialized, dtype=self.dtype, count=n)
        except OverflowError:
            return self._exact(materialized)

    def ones(self, n: int):
        return _np.full(n, self.semiring.one, dtype=self.dtype)

    def take(self, vec, indices):
        return vec[_np.asarray(indices, dtype=_np.intp)]

    def compress(self, vec, mask):
        return vec[_np.asarray(mask, dtype=bool)]

    def concat(self, a, b):
        return _np.concatenate((a, b))

    def multiply(self, a, b):
        if self._guard and a.size:
            if a.dtype == object or b.dtype == object:
                return self._exact([int(x) * int(y) for x, y in zip(a.tolist(), b.tolist())])
            if int(a.max()) * int(b.max()) > _INT64_MAX:
                return self._exact([int(x) * int(y) for x, y in zip(a.tolist(), b.tolist())])
        return self._times(a, b)

    def annotations(self, vec) -> List[Any]:
        if self._guard and vec.dtype == object:
            # Object vectors may hold np.int64 scalars (e.g. after a mixed
            # concat); annotations leaving the engine must be plain ints.
            return [int(value) for value in vec.tolist()]
        return vec.tolist()


class UAPairOps:
    """UA annotation vectors as a pair of component vectors.

    The pair semiring operates componentwise, so each component vector uses
    the fast scalar representation of the base semiring.
    """

    def __init__(self, semiring: UASemiring, component_ops) -> None:
        self.semiring = semiring
        self._ops = component_ops

    def from_annotations(self, values: Iterable[Any], n: int):
        certain: List[Any] = []
        determinized: List[Any] = []
        for annotation in values:
            certain.append(annotation.certain)
            determinized.append(annotation.determinized)
        return (
            self._ops.from_annotations(certain, n),
            self._ops.from_annotations(determinized, n),
        )

    def ones(self, n: int):
        return (self._ops.ones(n), self._ops.ones(n))

    def take(self, vec, indices):
        return (self._ops.take(vec[0], indices), self._ops.take(vec[1], indices))

    def compress(self, vec, mask):
        return (self._ops.compress(vec[0], mask), self._ops.compress(vec[1], mask))

    def concat(self, a, b):
        return (self._ops.concat(a[0], b[0]), self._ops.concat(a[1], b[1]))

    def multiply(self, a, b):
        return (self._ops.multiply(a[0], b[0]), self._ops.multiply(a[1], b[1]))

    def annotations(self, vec) -> List[Any]:
        return [
            UAAnnotation(certain, determinized)
            for certain, determinized in zip(
                self._ops.annotations(vec[0]), self._ops.annotations(vec[1])
            )
        ]


def _scalar_ops(semiring: Semiring):
    """numpy ops for a scalar semiring, or None when no fast path applies."""
    if _np is None:
        return None
    if isinstance(semiring, NaturalSemiring):
        return NumpyScalarOps(semiring, _np.int64, _np.multiply, guard_overflow=True)
    if isinstance(semiring, BooleanSemiring):
        return NumpyScalarOps(semiring, bool, _np.logical_and)
    return None


def annotation_ops(semiring: Semiring):
    """The fastest available vector implementation for ``semiring``."""
    scalar = _scalar_ops(semiring)
    if scalar is not None:
        return scalar
    if isinstance(semiring, UASemiring):
        component = _scalar_ops(semiring.base) or GenericVectorOps(semiring.base)
        # The generic component path still beats per-pair semiring dispatch.
        return UAPairOps(semiring, component)
    return GenericVectorOps(semiring)
