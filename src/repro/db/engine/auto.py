"""Cost-based automatic engine selection.

``AutoEngine`` is a meta-engine: it never evaluates a plan itself, it
picks the cheapest registered backend for each plan and delegates.  The
decision combines

* a **compilability probe** -- the sqlite engine is only a candidate when
  :meth:`~repro.db.engine.sqlite.SQLiteEngine.compiled_sql` accepts the
  plan (the probe shares sqlite's compiled-plan cache, including cached
  negative verdicts, so repeated probes cost one dictionary hit) and the
  database's semiring has a stable on-disk form;
* the **cost model** of :mod:`repro.db.cost`, fed by the database's
  :class:`~repro.db.stats.StatsCatalog` when the session attached one
  (``database.stats``), with neutral defaults otherwise.

Decisions are cached per ``(plan, semiring, statistics fingerprint)``; the
fingerprint covers every referenced relation's identity and mutation
counter plus the catalog-wide statistics version, so a bulk ``INSERT``
that shifts table sizes re-decides automatically instead of pinning a
stale choice.  Each delegated execution is recorded with
:func:`repro.db.engine.record_dispatch` so ``GET /metrics`` can report
where ``auto`` actually sent the work.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.db import algebra, cost
from repro.db.database import Database
from repro.db.engine.base import ExecutionEngine
from repro.db.engine.compiler import NotSupportedError
from repro.db.params import Params
from repro.db.relation import KRelation

__all__ = ["AutoEngine"]


def _referenced_relations(plan: algebra.Operator) -> List[str]:
    """Names of all relations the plan reads, in deterministic order."""
    names: List[str] = []

    def walk(node: algebra.Operator) -> None:
        if isinstance(node, algebra.RelationRef):
            names.append(node.name)
        for child in node.children():
            walk(child)

    walk(plan)
    return sorted(set(names))


class AutoEngine(ExecutionEngine):
    """Picks the cheapest backend per plan and delegates execution."""

    name = "auto"

    #: Candidate backends in tie-breaking preference order.
    candidates: Tuple[str, ...] = ("sqlite", "columnar", "row")

    def __init__(self, choice_cache_size: int = 256) -> None:
        #: id(plan) -> (plan, relation names, stats fingerprint, decision).
        #: Keyed by identity for hit speed: hashing a deep plan costs more
        #: than the whole lookup.  Each entry holds a strong reference to
        #: its plan, so a live entry's id cannot be recycled -- an id match
        #: plus ``entry plan is plan`` is therefore exact.
        self._choices: "OrderedDict[int, tuple]" = OrderedDict()
        self._choice_cache_size = choice_cache_size
        self._lock = threading.RLock()
        self.decisions = 0
        self.cache_hits = 0

    # -- engine interface -------------------------------------------------------

    def execute(self, plan: algebra.Operator, database: Database,
                params: Params = None) -> KRelation:
        """Evaluate ``plan`` on the backend the cost model prefers."""
        from repro.db.engine import get_engine, record_dispatch

        choice, _ = self.choose(plan, database)
        record_dispatch(choice)
        engine = get_engine(choice)
        if params is not None:
            return engine.execute(plan, database, params=params)
        return engine.execute(plan, database)

    # -- decision making --------------------------------------------------------

    def choose(self, plan: algebra.Operator, database: Database
               ) -> Tuple[str, Dict[str, float]]:
        """The chosen backend name and the per-candidate cost estimates."""
        key = id(plan)
        with self._lock:
            entry = self._choices.get(key)
            if entry is not None and entry[0] is plan:
                fingerprint = self._fingerprint(entry[1], database)
                if fingerprint == entry[2]:
                    self._choices.move_to_end(key)
                    self.cache_hits += 1
                    return entry[3]
        names = _referenced_relations(plan)
        candidates = [name for name in self.candidates
                      if name != "sqlite" or self._sqlite_viable(plan, database)]
        stats = getattr(database, "stats", None)
        decision = cost.cheapest_engine(plan, candidates, stats)
        fingerprint = self._fingerprint(names, database)
        with self._lock:
            self.decisions += 1
            self._choices[key] = (plan, names, fingerprint, decision)
            self._choices.move_to_end(key)
            while len(self._choices) > self._choice_cache_size:
                self._choices.popitem(last=False)
        return decision

    def stats(self) -> Dict[str, int]:
        """Decision/cache counters for observability and tests."""
        with self._lock:
            return {
                "decisions": self.decisions,
                "cache_hits": self.cache_hits,
                "cached_choices": len(self._choices),
            }

    # -- internals --------------------------------------------------------------

    def _fingerprint(self, names: List[str], database: Database) -> tuple:
        """The statistics state a cached decision depends on.

        Covers each referenced relation's identity, mutation counter and
        current size, the database's semiring, and the catalog statistics
        version when a :class:`~repro.db.stats.StatsCatalog` is attached --
        so any change that can move the cost estimates re-decides.
        """
        fingerprint = []
        for name in names:
            if name not in database:
                continue
            relation = database.relation(name)
            fingerprint.append((name, id(relation), relation._version,
                                len(relation)))
        stats = getattr(database, "stats", None)
        versions = getattr(stats, "_loaded_version", None)
        return (database.semiring.name, tuple(fingerprint), versions)

    def _sqlite_viable(self, plan: algebra.Operator, database: Database) -> bool:
        """True when the sqlite engine could run ``plan`` without falling back."""
        # Imported lazily: repro.core imports repro.db at package init.
        from repro.core.encoding import STORABLE_SEMIRINGS

        if database.semiring.name not in STORABLE_SEMIRINGS:
            return False
        from repro.db.engine import get_engine

        try:
            get_engine("sqlite").compiled_sql(plan, database)
        except NotSupportedError:
            return False
        except Exception:  # pragma: no cover - unexpected probe failure
            return False
        return True
