"""A DB-API-2.0-flavored session layer for UA-DBs.

:func:`repro.connect` opens a :class:`Connection` -- the paper's middleware
as a database session.  Uncertain sources are registered (or created and
loaded entirely through SQL with ``CREATE TABLE`` / ``INSERT``), and SQL
queries run through cursors with the familiar ``execute`` / ``fetchall``
shape plus the UA-specific accessors (``certain_rows``, ``labeled_rows``).

What the session adds over one-shot :func:`repro.db.evaluator.evaluate`
calls is *amortization*: every statement is compiled once -- parse ->
translate -> Figure 8/9 rewrite -> optimize -- into a prepared plan stored
in an LRU :class:`~repro.api.cache.PlanCache`, and re-executions (the same
SQL text again, an explicit :class:`PreparedStatement`, or ``executemany``)
skip straight to parameter binding and engine execution.  Placeholders
(``?`` positional, ``:name`` named) keep the cache hot across queries that
differ only in constants.

Cache entries are keyed by (SQL, mode, optimizer toggle) and stamped with
the catalog version they were compiled against; registering a source or
creating a table bumps the version, so stale plans are recompiled
transparently (see :class:`~repro.api.cache.PlanCache`).
"""

from __future__ import annotations

import logging
import os
import re
import time
import uuid
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.db import algebra
from repro.db.database import Database
from repro.db.evaluator import _optimize_default, evaluate
from repro.db.expressions import Parameter, RowEnvironment
from repro.db.params import (
    ParameterBinder, Params, check_bindings,
    expression_parameters, plan_parameters,
)
from repro.db.optimizer import optimize_plan
from repro.db.relation import KRelation, Row, _row_sort_key
from repro.db.schema import (
    Attribute, DataType, DatabaseSchema, RelationSchema, SchemaError,
)
from repro.db.stats import StatsCatalog
from repro.db.sql.ast import (
    CreateTableStatement, ExplainStatement, InsertStatement, Statement,
)
from repro.db.sql.parser import parse_statement
from repro.db.sql.translator import parse_query, translate
from repro.semirings import NATURAL, Semiring
from repro.core.attribute_bounds import (
    AttributeBoundsRelation, decode_attribute_relation,
    encode_attribute_relation, is_attribute_encoded,
)
from repro.core.attribute_rewriter import rewrite_attribute_plan
from repro.core.encoding import decode_relation, encode_relation
from repro.core.rewriter import rewrite_plan
from repro.core.uadb import UADatabase, UARelation
from repro.extensions.attribute_level import AttributeLabel
from repro.incomplete.ctable import CTableDatabase
from repro.incomplete.tidb import TIDatabase
from repro.incomplete.xdb import XDatabase
from repro.api.store import (
    STORE_DIR_ENV_VAR, StoreError, UADBStore, UnstorableRelationError,
)

logger = logging.getLogger(__name__)


class SessionError(RuntimeError):
    """Raised for misuse of the session API (closed connections, bad ops)."""


class _NoLocking:
    """Single-connection default: ``read()``/``write()`` are no-op contexts.

    A :class:`~repro.api.pool.ConnectionPool` swaps in a real
    readers-writer lock so pooled handles can run queries concurrently
    while DDL/DML stays exclusive.
    """

    def read(self):
        return nullcontext()

    def write(self):
        return nullcontext()


#: SQL type names accepted by ``CREATE TABLE``.
SQL_TYPES: Dict[str, DataType] = {
    "int": DataType.INTEGER, "integer": DataType.INTEGER,
    "bigint": DataType.INTEGER, "smallint": DataType.INTEGER,
    "float": DataType.FLOAT, "real": DataType.FLOAT,
    "double": DataType.FLOAT, "numeric": DataType.FLOAT,
    "decimal": DataType.FLOAT,
    "text": DataType.STRING, "string": DataType.STRING,
    "varchar": DataType.STRING, "char": DataType.STRING,
    "bool": DataType.BOOLEAN, "boolean": DataType.BOOLEAN,
    "any": DataType.ANY,
}

_EMPTY_ENV = RowEnvironment((), ())




@dataclass
class UAQueryResult:
    """Result of a UA-DB query: rows paired with certainty information."""

    relation: UARelation
    #: Wall-clock evaluation time in seconds (binding + execution; includes
    #: compilation only when the statement was not already cached).
    elapsed: float = 0.0

    def rows(self) -> List[Row]:
        """All result rows (the best-guess-world answer)."""
        return self.relation.to_rows()

    def certain_rows(self) -> List[Row]:
        """Rows labeled certain (the under-approximation)."""
        return self.relation.certain_rows()

    def uncertain_rows(self) -> List[Row]:
        """Rows not labeled certain."""
        return self.relation.uncertain_rows()

    def labeled_rows(self) -> List[Tuple[Row, bool]]:
        """``(row, certain?)`` pairs, sorted for stable output."""
        pairs = [(row, self.relation.is_certain(row))
                 for row in self.relation.to_rows()]
        pairs.sort(key=lambda pair: _row_sort_key(pair[0]))
        return pairs

    def __len__(self) -> int:
        return len(self.relation)

    def pretty(self, limit: int = 20) -> str:
        """Human-readable rendering with a Certain? column."""
        header = list(self.relation.schema.attribute_names) + ["Certain?"]
        rows = [
            [repr(value) for value in row] + [str(certain).lower()]
            for row, certain in self.labeled_rows()
        ]
        shown = rows[:limit]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in shown)) if shown else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(" | ".join(v.ljust(w) for v, w in zip(r, widths)) for r in shown)
        if len(rows) > limit:
            lines.append(f"... ({len(rows) - limit} more rows)")
        return "\n".join(lines)


@dataclass
class AttributeQueryResult:
    """Result of an attribute-level query: rows with per-attribute bounds.

    Produced by :meth:`Connection.query_bounds` (and by every query path of
    a connection opened with ``annotation="attribute"``).  The underlying
    :class:`~repro.core.attribute_bounds.AttributeBoundsRelation` holds one
    *fragment* per distinct row of ``[lower, best, upper]`` ranges together
    with a multiplicity triple; the accessors below project out the views
    most callers want.
    """

    relation: AttributeBoundsRelation
    #: Wall-clock evaluation time in seconds (binding + execution; includes
    #: compilation only when the statement was not already cached).
    elapsed: float = 0.0

    def rows(self) -> List[Row]:
        """Distinct best-guess rows (the best-guess-world answer)."""
        return self.relation.rows()

    def certain_rows(self) -> List[Row]:
        """Rows certain in both existence and value: collapsed ranges with
        a lower multiplicity bound of at least one."""
        return self.relation.certain_rows()

    def uncertain_rows(self) -> List[Row]:
        """Best-guess rows that are not fully certain."""
        certain = set(self.relation.certain_rows())
        return [row for row in self.relation.rows() if row not in certain]

    def bounded_rows(self) -> List[Tuple[Tuple, Tuple[int, int, int]]]:
        """All fragments as ``(range-row, (m_lb, m_bg, m_ub))`` pairs.

        Each range row holds one ``(lower, best, upper)`` triple per result
        column; the list is deterministically sorted.
        """
        return self.relation.bounded_rows()

    def labeled_rows(self) -> List[Tuple[Row, AttributeLabel]]:
        """Best-guess rows paired with per-attribute certainty labels.

        The label of a row is the *least certain* reading over the
        fragments that produce it in the best-guess world:
        ``existence_certain`` requires some producing fragment to be
        certainly present (``m_lb >= 1``), and an attribute is uncertain
        when any producing fragment's range for it is not collapsed.
        """
        names = self.relation.schema.attribute_names
        merged: Dict[Row, Tuple[bool, set]] = {}
        for ranges, (low, best, _high) in self.relation.items():
            if best < 1:
                continue
            row = tuple(r[1] for r in ranges)
            exists, uncertain = merged.get(row, (False, set()))
            uncertain = set(uncertain)
            uncertain.update(
                names[i] for i, (lower, _b, upper) in enumerate(ranges)
                if lower != upper)
            merged[row] = (exists or low >= 1, uncertain)
        pairs = [(row, AttributeLabel(exists, frozenset(uncertain)))
                 for row, (exists, uncertain) in merged.items()]
        pairs.sort(key=lambda pair: _row_sort_key(pair[0]))
        return pairs

    def __len__(self) -> int:
        """Number of distinct fragments in the result."""
        return len(self.relation)

    def pretty(self, limit: int = 20) -> str:
        """Human-readable table: ranges as ``[lower, best, upper]``."""
        return self.relation.pretty(limit)


@dataclass
class PreparedPlan:
    """A compiled statement: everything the execute path needs, parse-free.

    For SELECTs, ``plan`` is the fully rewritten + optimized algebra tree
    (over the encoded database in ``"rewritten"`` mode, over the logical
    UA-database in ``"direct"`` mode).  For CREATE/INSERT, ``statement``
    keeps the parsed AST.  ``parameters`` lists the placeholders of the
    *original* statement (before optimization, which may prune some away),
    used for exact argument-count checking.
    """

    sql: str
    kind: str  # "select" | "create" | "insert" | "explain"
    mode: str  # "rewritten" | "direct" | "attribute"
    catalog_version: int
    plan: Optional[algebra.Operator] = None
    statement: Optional[Statement] = None
    parameters: Tuple[Parameter, ...] = ()
    #: Statistics version the plan was optimized under; the cache treats a
    #: mismatch as a miss so bulk INSERTs cannot pin a stale join order.
    stats_version: int = 0
    #: Logical result-column names, in output order; ``"attribute"``-mode
    #: plans need them to decode the canonical triple layout back into
    #: named ranges.
    output_names: Tuple[str, ...] = ()


class Connection:
    """A session against one UA-database: sources, cursors, prepared plans.

    Open one with :func:`repro.connect`.  ``engine`` / ``optimize`` follow
    the same precedence rules as the rest of the stack (explicit argument,
    then ``REPRO_ENGINE`` / ``REPRO_OPTIMIZE``, then defaults) and apply to
    every statement executed through the connection.

    ``store`` makes the session durable: a ``.uadb`` path (or an open
    :class:`~repro.api.store.UADBStore`) backs the encoded relations with an
    on-disk WAL-mode SQLite file, so registered sources, ``CREATE TABLE``
    and ``INSERT`` survive the process and a later connection reopens them
    (see :mod:`repro.api.store`).  Opening an existing store adopts its
    persisted semiring when ``semiring`` is left unset.

    ``annotation`` picks the default query semantics: ``"tuple"`` (the
    paper's UA labels) or ``"attribute"``, which routes ``query`` and
    cursor ``execute`` through the attribute-level range rewriter so
    results carry per-attribute ``[lower, best, upper]`` bounds (see
    :meth:`query_bounds`, which is available regardless of the default).
    """

    #: Compilation modes accepted by ``explain``/``prepare``/``statement_kind``.
    MODES = ("rewritten", "direct", "attribute")

    def __init__(self, semiring: Optional[Semiring] = None, name: str = "uadb",
                 engine: Optional[object] = None,
                 optimize: Optional[bool] = None,
                 cache_size: int = 128,
                 shared_cache: bool = False,
                 store: Optional[object] = None,
                 create: bool = True,
                 plan_cache: Optional[object] = None,
                 locking: Optional[object] = None,
                 annotation: str = "tuple") -> None:
        from repro.api.cache import PlanCache, SharedPlanCache, shared_plan_cache

        if annotation not in ("tuple", "attribute"):
            raise SessionError(
                f"unknown annotation level {annotation!r}; "
                f"expected 'tuple' or 'attribute'")
        #: Default annotation level for query paths that do not pick one.
        self.annotation = annotation
        self.name = name
        #: Execution engine used for every statement (None = default engine).
        self.engine = engine
        #: Optimizer toggle for every statement (None = default behaviour).
        self.optimize = optimize
        #: Read/write gate for statements; a no-op unless a pool injects a
        #: real readers-writer lock.
        self._locking = locking if locking is not None else _NoLocking()
        #: Persistent backing store, or None for a purely in-memory session.
        self.store: Optional[UADBStore] = None
        self._owns_store = False
        self._store_auto = False
        if store is None:
            store = self._auto_store_path(name, semiring)
        if isinstance(store, UADBStore):
            if semiring is not None and semiring.name != store.semiring.name:
                raise StoreError(
                    f"store {store.path!r} uses semiring {store.semiring.name}, "
                    f"not {semiring.name}"
                )
            self.store = store
        elif store is not None:
            self.store = UADBStore(store, semiring=semiring, create=create)
            self._owns_store = True
        if self.store is not None:
            semiring = self.store.semiring
        elif semiring is None:
            semiring = NATURAL
        self.semiring = semiring
        self.uadb = UADatabase(semiring, name, engine=engine)
        #: The encoded backing store the rewritten queries run against.
        self.encoded = Database(semiring, f"{name}_enc", engine=engine)
        #: Marks the encoded database as store-backed: the SQLite execution
        #: engine then attaches to the store file instead of loading copies.
        self.encoded.store = self.store
        #: True when the plan cache (and catalog version counter) is shared
        #: with other connections -- either the process-wide registry cache
        #: (``shared_cache=True``) or a pool-injected one.
        self.shared_cache = bool(shared_cache) or plan_cache is not None
        #: Prepared-plan cache; inspect ``plan_cache.stats()`` for hit rates.
        if plan_cache is not None:
            self.plan_cache = plan_cache
        elif shared_cache:
            self.plan_cache = shared_plan_cache(name, semiring.name, cache_size)
        else:
            self.plan_cache = PlanCache(cache_size)
        self._local_catalog_version = 0
        self._local_stats_version = 0
        #: Table statistics feeding the cost-based optimizer and the
        #: ``auto`` engine; collected from the *encoded* relations (whose
        #: columns are a superset of the logical ones), persisted in the
        #: store's ``uadb_stats`` table when one is attached.
        self.stats = StatsCatalog(self.store)
        # Attach to both databases so evaluate()/engines can reach the
        # statistics through ``database.stats``.
        self.uadb.database.stats = self.stats
        self.encoded.stats = self.stats
        #: Natively registered attribute-level relations (logical form).
        self._attribute_relations: Dict[str, AttributeBoundsRelation] = {}
        #: Their encoded (triple-layout) counterparts, by name.
        self._attribute_encoded: Dict[str, KRelation] = {}
        # Lazily built execution database for "attribute"-mode plans; the
        # key records the catalog/stats versions it was derived under.
        self._attribute_db: Optional[Database] = None
        self._attribute_db_key: Optional[Tuple[int, int]] = None
        self._closed = False
        if self.store is not None:
            self._load_from_store()

    @staticmethod
    def _slug(name: str) -> str:
        return re.sub(r"[^A-Za-z0-9_.-]+", "_", name) or "uadb"

    def _auto_store_path(self, name: str,
                         semiring: Optional[Semiring]) -> Optional[str]:
        """A fresh store path under ``REPRO_STORE_DIR`` (CI matrix axis).

        Returns None -- keeping the session in-memory -- when the variable
        is unset or the requested semiring has no on-disk encoding.
        """
        directory = os.environ.get(STORE_DIR_ENV_VAR)
        if not directory:
            return None
        from repro.db.engine.compiler import NotSupportedError, annotation_sql

        try:
            annotation_sql(semiring if semiring is not None else NATURAL)
        except NotSupportedError:
            return None
        os.makedirs(directory, exist_ok=True)
        self._store_auto = True
        return os.path.join(
            directory, f"{self._slug(name)}-{uuid.uuid4().hex}.uadb"
        )

    def _load_from_store(self) -> None:
        """Populate the catalogs from a (possibly pre-existing) store file."""
        for name in self.store.relation_names():
            encoded = self.store.load_relation(name)
            if is_attribute_encoded(encoded.schema):
                # Attribute-level tables persist in the triple layout; the
                # ``#``-marked column names cannot come from the SQL
                # surface, so the structural check cannot misfire on a
                # stored UA relation.
                self._attribute_encoded[name] = encoded
                self._attribute_relations[name] = decode_attribute_relation(encoded)
                self.stats.adopt(encoded)
                continue
            self.encoded.add_relation(encoded)
            self.uadb.add_relation(
                decode_relation(encoded, self.uadb.ua_semiring)
            )
            # Adopt persisted statistics when they still match the data;
            # stores from before the statistics layer get a fresh scan.
            self.stats.adopt(encoded)

    # -- source registration ------------------------------------------------------

    def _register(self, relation: UARelation) -> None:
        with self._locking.write():
            encoded = encode_relation(relation)
            name = relation.schema.name
            if (name in self.uadb.database or name in self.encoded
                    or name in self._attribute_relations):
                # Duplicate names fail *before* the store write, so a
                # duplicate registration cannot clobber the persisted table
                # of the existing relation.
                raise SchemaError(f"relation {name!r} already exists")
            # Persist first: if the store refuses the relation (unbindable
            # values), nothing was registered and the call is retryable.
            self._persist_relation(encoded)
            self.uadb.add_relation(relation)
            self.encoded.add_relation(encoded)
            self.stats.collect(encoded)
            self._bump_catalog_version()
            self._bump_stats_version()

    def _persist_relation(self, encoded: KRelation) -> None:
        """Write a freshly registered relation through to the store."""
        if self.store is None:
            return
        try:
            self.store.save(encoded)
        except UnstorableRelationError as error:
            if not self._store_auto:
                raise
            # Auto-enabled stores (REPRO_STORE_DIR) degrade gracefully: the
            # relation stays queryable in memory, it just won't survive the
            # process.  Explicit stores surface the failure to the caller.
            logger.warning(
                "relation %r holds values the on-disk store cannot persist "
                "(%s); it will not survive this process",
                encoded.schema.name, error,
            )

    def _bump_catalog_version(self) -> None:
        """Advance the catalog version (shared counter when sharing a cache).

        The persisted counter is bumped too, so a process that reopens the
        store starts from a strictly newer version than any it saw before.
        """
        if self.store is not None:
            self.store.bump_catalog_version()
        if self.shared_cache:
            self.plan_cache.bump_catalog_version()
        elif self.store is None:
            self._local_catalog_version += 1

    def _bump_stats_version(self) -> None:
        """Advance the statistics version (same precedence as the catalog's).

        Called after anything that changes table statistics -- INSERTs and
        registrations -- so cached plans whose join order or engine choice
        was derived from the old statistics are recompiled.
        """
        if self.store is not None:
            self.store.bump_stats_version()
        if self.shared_cache:
            self.plan_cache.bump_stats_version()
        elif self.store is None:
            self._local_stats_version += 1

    @property
    def stats_version(self) -> int:
        """Monotonic counter bumped whenever table statistics change.

        Mirrors :attr:`catalog_version`'s precedence: the shared plan
        cache's counter when one is shared, else the store's persisted
        counter, else a connection-local one.
        """
        if self.shared_cache:
            return self.plan_cache.stats_version
        if self.store is not None:
            return self.store.stats_version
        return self._local_stats_version

    def register_ua_relation(self, relation: UARelation) -> None:
        """Register an already-built UA-relation."""
        self._check_open()
        self._register(relation)

    def register_attribute_relation(self,
                                    relation: AttributeBoundsRelation) -> None:
        """Register a native attribute-level relation (per-attribute ranges).

        The relation persists to the store (when one is attached) in its
        triple layout -- each logical attribute ``A`` as the columns ``A``
        / ``A#lb`` / ``A#ub`` plus the trailing multiplicity triple -- so a
        later connection reopens it as an attribute relation.  Query it
        through :meth:`query_bounds` or any query path of an
        ``annotation="attribute"`` connection; tuple-level query paths do
        not see it.
        """
        self._check_open()
        with self._locking.write():
            name = relation.schema.name
            if (name in self.uadb.database or name in self.encoded
                    or name in self._attribute_relations):
                raise SchemaError(f"relation {name!r} already exists")
            relation.check_invariant()
            encoded = encode_attribute_relation(relation, self.semiring)
            self._persist_relation(encoded)
            self._attribute_relations[name] = relation
            self._attribute_encoded[name] = encoded
            self.stats.collect(encoded)
            self._bump_catalog_version()
            self._bump_stats_version()

    def register_ua_database(self, uadb: UADatabase) -> None:
        """Register every relation of an existing UA-database."""
        self._check_open()
        for relation in uadb:
            self._register(relation)  # type: ignore[arg-type]

    def register_deterministic(self, relation: KRelation) -> None:
        """Register a deterministic relation: every tuple is certain."""
        self._check_open()
        self._register(UARelation.from_world_and_labeling(relation, relation))

    def register_tidb(self, tidb: TIDatabase) -> None:
        """Register a TI-DB source (best-guess world + c-correct labeling)."""
        self.register_ua_database(UADatabase.from_tidb(tidb, self.semiring))

    def register_xdb(self, xdb: XDatabase, world: Optional[Database] = None) -> None:
        """Register an x-DB / BI-DB source (best-guess world + c-correct labeling)."""
        self.register_ua_database(UADatabase.from_xdb(xdb, self.semiring, world=world))

    def register_ctable(self, ctable_db: CTableDatabase) -> None:
        """Register a C-table source (best-guess world + c-sound labeling)."""
        self.register_ua_database(UADatabase.from_ctable(ctable_db, self.semiring))

    def register_ordb(self, ordb) -> None:
        """Register an OR-database source (best-guess world + c-correct labeling)."""
        self.register_ua_database(UADatabase.from_ordb(ordb, self.semiring))

    # -- catalogs -----------------------------------------------------------------

    @property
    def catalog(self) -> DatabaseSchema:
        """Schema of the logical (un-encoded) UA relations."""
        return self.uadb.database.schema

    @property
    def encoded_catalog(self) -> DatabaseSchema:
        """Schema of the encoded backing relations (with the ``C`` column)."""
        return self.encoded.schema

    @property
    def attribute_catalog(self) -> DatabaseSchema:
        """Logical schema of every relation visible to attribute-mode queries.

        Native attribute relations come first, then the tuple-level UA
        relations -- which attribute-mode queries see through the
        degenerate conversion (collapsed ranges, multiplicity
        ``(certain, det, det)``), so bounds queries run against *every*
        registered source.
        """
        catalog = DatabaseSchema()
        for relation in self._attribute_relations.values():
            catalog.add(relation.schema)
        for ua_relation in self.uadb:
            catalog.add(ua_relation.schema)
        return catalog

    def _attribute_database(self) -> Database:
        """The execution database backing ``"attribute"``-mode plans.

        Holds the triple-layout encoding of the native attribute relations
        plus a derived encoding of every tuple-level UA relation; rebuilt
        lazily whenever the catalog or the data (statistics version)
        changed.  Callers hold the session's read lock.
        """
        key = (self.catalog_version, self.stats_version)
        if self._attribute_db is None or self._attribute_db_key != key:
            database = Database(self.semiring, f"{self.name}_attr",
                                engine=self.engine)
            for encoded in self._attribute_encoded.values():
                database.add_relation(encoded)
            for ua_relation in self.uadb:
                database.add_relation(encode_attribute_relation(
                    AttributeBoundsRelation.from_ua_relation(ua_relation),
                    self.semiring))
            database.stats = self.stats
            self._attribute_db = database
            self._attribute_db_key = key
        return self._attribute_db

    def tables(self) -> List[Dict[str, Any]]:
        """Catalog metadata for every registered relation, in creation order.

        One dict per relation: ``name``, ``columns`` (dicts with ``name``
        and lower-case ``type``), and ``row_count`` -- the number of
        distinct annotated tuples in the best-guess world.  Reads under the
        session's read lock, so pooled callers see a consistent catalog.
        Serves ``GET /tables`` on the HTTP server.
        """
        self._check_open()
        with self._locking.read():
            listed = [
                {
                    "name": relation.schema.name,
                    "columns": [
                        {"name": attribute.name,
                         "type": attribute.data_type.name.lower()}
                        for attribute in relation.schema.attributes
                    ],
                    "row_count": len(relation),
                }
                for relation in self.uadb
            ]
            listed.extend(
                {
                    "name": relation.schema.name,
                    "columns": [
                        {"name": attribute.name,
                         "type": attribute.data_type.name.lower()}
                        for attribute in relation.schema.attributes
                    ],
                    # For attribute relations this counts fragments
                    # (distinct range rows), the analogue of annotated
                    # tuples.
                    "row_count": len(relation),
                    "annotation": "attribute",
                }
                for relation in self._attribute_relations.values()
            )
            return listed

    @property
    def catalog_version(self) -> int:
        """Monotonic counter bumped by every registration / CREATE TABLE.

        With a shared plan cache (``shared_cache=True`` or a pool) this is
        the *shared* counter: any sharing connection's registration advances
        it, invalidating cached plans for the whole group.  A store-backed
        connection without a shared cache reads the counter persisted in the
        store file instead.
        """
        if self.shared_cache:
            return self.plan_cache.catalog_version
        if self.store is not None:
            return self.store.catalog_version
        return self._local_catalog_version

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close the connection; further statements raise :class:`SessionError`."""
        self._closed = True
        if not self.shared_cache:
            # A shared cache outlives any one connection: other sessions may
            # still be serving warm hits from it.
            self.plan_cache.clear()
        if self.store is not None and self._owns_store:
            self.store.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; statements raise from then on."""
        return self._closed

    def commit(self) -> None:
        """Flush the persistent store (writes commit eagerly; DB-API shape)."""
        self._check_open()
        if self.store is not None:
            self.store.commit()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("connection is closed")

    # -- statement compilation ----------------------------------------------------

    def _optimize_resolved(self) -> bool:
        return _optimize_default() if self.optimize is None else bool(self.optimize)

    def _entry(self, sql: str, mode: str) -> PreparedPlan:
        """The cached prepared plan for ``sql``; compiles on a miss.

        Compilation reads both catalogs, so it runs under the read lock: a
        pooled connection can never compile against catalogs that a
        concurrent registration (which holds the write lock while mutating
        the logical and encoded sides in sequence) has half-updated.
        """
        self._check_open()
        key = (sql, mode, self._optimize_resolved())
        with self._locking.read():
            entry = self.plan_cache.get(key, self.catalog_version,
                                        self.stats_version)
            if entry is None:
                entry = self._compile(sql, mode)
                self.plan_cache.put(key, entry)
        return entry

    def _compile(self, sql: str, mode: str) -> PreparedPlan:
        statement = parse_statement(sql)
        return self._compile_statement(sql, statement, mode)

    def _compile_statement(self, sql: str, statement: Statement,
                           mode: str) -> PreparedPlan:
        if isinstance(statement, ExplainStatement):
            inner = self._compile_statement(sql, statement.statement, mode)
            if inner.kind != "select":
                raise SessionError("EXPLAIN supports SELECT statements only")
            # EXPLAIN never executes, so it requires no parameter bindings
            # even when the wrapped statement has placeholders.
            return PreparedPlan(sql, "explain", mode, inner.catalog_version,
                                plan=inner.plan, statement=statement,
                                stats_version=inner.stats_version)
        if isinstance(statement, CreateTableStatement):
            return PreparedPlan(sql, "create", mode, self.catalog_version,
                                statement=statement,
                                stats_version=self.stats_version)
        if isinstance(statement, InsertStatement):
            parameters = [parameter
                          for row in statement.rows
                          for expression in row
                          for parameter in expression_parameters(expression)]
            return PreparedPlan(sql, "insert", mode, self.catalog_version,
                                statement=statement,
                                parameters=tuple(parameters),
                                stats_version=self.stats_version)
        output_names: Tuple[str, ...] = ()
        if mode == "rewritten":
            logical = translate(statement, self.catalog)
            plan = rewrite_plan(logical, self.encoded_catalog)
            optimize_catalog = self.encoded_catalog
        elif mode == "direct":
            logical = translate(statement, self.catalog)
            plan = logical
            optimize_catalog = self.catalog
        elif mode == "attribute":
            logical = translate(statement, self.attribute_catalog)
            rewrite = rewrite_attribute_plan(logical,
                                             self._attribute_database().schema)
            plan = rewrite.plan
            output_names = rewrite.columns
            optimize_catalog = self._attribute_database().schema
        else:
            raise SessionError(f"unknown compilation mode {mode!r}")
        parameters = plan_parameters(logical)
        if self._optimize_resolved():
            # Re-read statistics another connection may have advanced and
            # repair any relation mutated behind the session's back, so the
            # join order is chosen from statistics matching the data.
            self.stats.maybe_reload()
            self.stats.refresh(self.encoded)
            plan = optimize_plan(plan, optimize_catalog, stats=self.stats)
        return PreparedPlan(sql, "select", mode, self.catalog_version,
                            plan=plan, parameters=tuple(parameters),
                            stats_version=self.stats_version,
                            output_names=output_names)

    # -- statement execution ------------------------------------------------------

    def _execute_entry(self, entry: PreparedPlan, params: Params = None,
                       ) -> Union["UAQueryResult", "AttributeQueryResult", int]:
        """Run a prepared plan: a :class:`UAQueryResult` (or, in
        ``"attribute"`` mode, an :class:`AttributeQueryResult`) for SELECTs,
        a row count for INSERTs, 0 for CREATE TABLE."""
        self._check_open()
        if entry.kind == "explain":
            # EXPLAIN never executes the wrapped statement, so parameter
            # bindings (if any) are accepted but ignored.
            return self._run_explain(entry)
        check_bindings(entry.parameters, params, exact=True)
        if entry.kind == "create":
            self._run_create(entry.statement)  # type: ignore[arg-type]
            return 0
        if entry.kind == "insert":
            return self._run_insert(entry.statement, params)  # type: ignore[arg-type]
        started = time.perf_counter()
        with self._locking.read():
            if entry.mode == "attribute":
                encoded_result = evaluate(entry.plan, self._attribute_database(),
                                          engine=self.engine, optimize=False,
                                          params=params)
                bounds = decode_attribute_relation(
                    encoded_result, attributes=entry.output_names)
                return AttributeQueryResult(bounds,
                                            time.perf_counter() - started)
            if entry.mode == "rewritten":
                encoded_result = evaluate(entry.plan, self.encoded, engine=self.engine,
                                          optimize=False, params=params)
                relation = decode_relation(encoded_result, self.uadb.ua_semiring)
            else:
                result = evaluate(entry.plan, self.uadb.database, engine=self.engine,
                                  optimize=False, params=params)
                relation = UARelation._from_validated(
                    result.schema, self.uadb.ua_semiring, dict(result.items())
                )
        elapsed = time.perf_counter() - started
        return UAQueryResult(relation, elapsed)

    def _run_create(self, statement: CreateTableStatement) -> None:
        attributes = []
        for column in statement.columns:
            type_name = column.type_name or "any"
            if type_name not in SQL_TYPES:
                raise SchemaError(
                    f"unknown SQL type {type_name!r} for column {column.name!r}; "
                    f"supported: {', '.join(sorted(SQL_TYPES))}"
                )
            attributes.append(Attribute(column.name, SQL_TYPES[type_name]))
        schema = RelationSchema(statement.name, attributes)
        self._register(UARelation(schema, self.uadb.ua_semiring))

    def _run_insert(self, statement: InsertStatement, params: Params) -> int:
        rows = self._bind_insert_rows(statement, params)
        return self._apply_insert(statement.table, rows)

    def _bind_insert_rows(self, statement: InsertStatement,
                          params: Params) -> List[Row]:
        """Bind one parameter set into the statement's validated row tuples."""
        schema = self.uadb.relation(statement.table).schema
        for name in statement.columns:
            schema.index_of(name)  # unknown column names fail fast
        binder = ParameterBinder(params)
        rows: List[Row] = []
        for row_expressions in statement.rows:
            values = [binder.bind(expression).evaluate(_EMPTY_ENV)
                      for expression in row_expressions]
            if statement.columns:
                by_name = {name.lower(): value
                           for name, value in zip(statement.columns, values)}
                row = tuple(by_name.get(attribute.name.lower())
                            for attribute in schema.attributes)
            else:
                row = tuple(values)
            # Validate the whole statement up front so a bad row leaves
            # neither the in-memory relations nor the store half-updated.
            rows.append(schema.validate_row(row))
        return rows

    def _run_insert_many(self, entry: PreparedPlan,
                         seq_of_params: Iterable[Params]) -> int:
        """Apply a whole ``executemany`` batch as one insert transaction.

        Every parameter set is bound and validated up front, then the batch
        lands through a single :meth:`_apply_insert`: one store transaction,
        one incremental statistics fold, one statistics-version bump --
        instead of one of each per parameter set, which would invalidate
        every sibling's plan/result cache N times for an N-row batch.
        """
        statement: InsertStatement = entry.statement  # type: ignore[assignment]
        rows: List[Row] = []
        for params in seq_of_params:
            check_bindings(entry.parameters, params, exact=True)
            rows.extend(self._bind_insert_rows(statement, params))
        if not rows:
            return 0
        return self._apply_insert(statement.table, rows)

    def _apply_insert(self, table: str, rows: List[Row],
                      uncertain: Optional[List[bool]] = None) -> int:
        """Insert already-validated ``rows`` in one batched transaction.

        The core write primitive shared by SQL ``INSERT``, ``executemany``
        batches and the bulk-ingest loader (:mod:`repro.ingest`): one
        write-ahead store append (a single WAL transaction however many rows
        the batch holds), one in-memory mirror pass, one incremental
        statistics fold and one statistics-version bump.

        ``uncertain`` optionally flags rows (parallel list) that should be
        loaded as *uncertain* facts: they join the best-guess world with the
        certainty marker ``C = 0`` -- the encoding the paper's imputation
        workloads attach at load time.  Without it every row is a
        deterministic fact, certain in every world.
        """
        base = self.uadb.base_semiring
        certain_one = self.uadb.ua_semiring.certain_annotation(base.one)
        uncertain_one = self.uadb.ua_semiring.uncertain_annotation(base.one)
        if uncertain is None:
            annotated = [(row, row + (1,), certain_one) for row in rows]
        else:
            annotated = [
                (row, row + (0 if flag else 1,),
                 uncertain_one if flag else certain_one)
                for row, flag in zip(rows, uncertain)
            ]
        with self._locking.write():
            # Resolved under the write lock: a fleet refresh (which also
            # holds this lock) may swap the catalog's relation objects for
            # freshly loaded copies between two batches of one bulk load.
            ua_relation: UARelation = self.uadb.relation(table)
            encoded_relation = self.encoded.relation(table)
            # Write-ahead: the store accepts (and commits) the rows before
            # the in-memory mutation, so a refused INSERT (unbindable
            # values) raises with *no* state change anywhere -- and the
            # table stays append-only on this path (no wholesale reload).
            persisted = self._persist_rows(
                encoded_relation,
                [(encoded_row, base.one) for _, encoded_row, _ in annotated]
            )
            for row, encoded_row, ua_annotation in annotated:
                # The batch was validated above; skip per-add re-validation
                # on the hot path.
                ua_relation.add_validated(row, ua_annotation)
                encoded_relation.add_validated(encoded_row, base.one)
            if persisted:
                self.store.mark_synced(encoded_relation)
            # Fold the inserted rows into the table statistics incrementally
            # (no rescan) and advance the statistics version so cached plans
            # whose join order/engine choice depended on the old sizes are
            # recompiled.
            self.stats.update_rows(
                table, [encoded_row for _, encoded_row, _ in annotated])
            self.stats.mark_current(encoded_relation)
            self._bump_stats_version()
        return len(rows)

    def _persist_rows(self, encoded_relation: KRelation,
                      encoded_rows: List[Tuple[Row, Any]]) -> bool:
        """Durably write inserted rows ahead of the in-memory mutation.

        The hot path is an incremental append; a stale fingerprint
        (out-of-band mutation of the relation) first degrades to one full
        rewrite that restores coherence, then appends.  Returns True when
        the rows reached the store (the caller then advances the
        fingerprint once memory has caught up).
        """
        if self.store is None:
            return False
        try:
            if not self.store.fresh(encoded_relation):
                self.store.save(encoded_relation)
            self.store.append(encoded_relation, encoded_rows)
            return True
        except UnstorableRelationError as error:
            if not self._store_auto:
                raise
            logger.warning(
                "INSERT into %r could not be persisted (%s); the rows stay "
                "queryable in memory only", encoded_relation.schema.name, error,
            )
            return False

    # -- EXPLAIN -------------------------------------------------------------------

    _EXPLAIN_SCHEMA = RelationSchema("explain", [
        Attribute("step", DataType.INTEGER),
        Attribute("detail", DataType.STRING),
    ])

    def _explain_report(self, plan: algebra.Operator,
                        mode: str) -> Dict[str, Any]:
        """The structured EXPLAIN payload for an already-optimized plan."""
        from repro.db import cost
        from repro.db.engine import get_engine

        if mode == "rewritten":
            database = self.encoded
        elif mode == "attribute":
            database = self._attribute_database()
        else:
            database = self.uadb.database
        resolved = get_engine(self.engine)
        stats = self.stats
        if resolved.name == "auto":
            chosen, costs = resolved.choose(plan, database)
        else:
            chosen = resolved.name
            costs = {name: cost.estimate_engine_cost(plan, name, stats)
                     for name in cost.ENGINE_COSTS}
        plan_lines = [
            {"depth": depth, "operator": describe, "estimated_rows": rows}
            for depth, describe, rows in cost.explain_rows(plan, stats)
        ]
        return {
            "mode": mode,
            "engine": resolved.name,
            "chosen_engine": chosen,
            "estimated_rows": plan_lines[0]["estimated_rows"] if plan_lines else 0.0,
            "estimated_costs": {name: round(value, 2)
                                for name, value in sorted(costs.items())},
            "plan": plan_lines,
        }

    def _run_explain(self, entry: PreparedPlan) -> UAQueryResult:
        """Materialize an EXPLAIN report as a (step, detail) relation."""
        started = time.perf_counter()
        with self._locking.read():
            report = self._explain_report(entry.plan, entry.mode)
        lines: List[str] = []
        for line in report["plan"]:
            indent = "  " * line["depth"]
            lines.append(f"{indent}{line['operator']}  "
                         f"[rows~{line['estimated_rows']:.0f}]")
        costs = ", ".join(f"{name}={value:.0f}"
                          for name, value in report["estimated_costs"].items())
        lines.append(f"engine: {report['engine']} "
                     f"(chosen: {report['chosen_engine']})")
        lines.append(f"estimated costs: {costs}")
        certain_one = self.uadb.ua_semiring.certain_annotation(
            self.uadb.base_semiring.one)
        # Number the lines so two identical plan lines stay distinct rows
        # under set semantics.
        items = {(index, line): certain_one
                 for index, line in enumerate(lines, start=1)}
        relation = UARelation._from_validated(
            self._EXPLAIN_SCHEMA, self.uadb.ua_semiring, items)
        return UAQueryResult(relation, time.perf_counter() - started)

    def explain(self, sql: str, mode: str = "rewritten") -> Dict[str, Any]:
        """Describe how ``sql`` would run, without executing it.

        Compiles (and caches) the statement exactly as :meth:`query` would,
        then returns a dictionary with the optimized ``plan`` (one entry per
        operator: ``depth``, ``operator``, ``estimated_rows``), the
        cost-model ``estimated_costs`` per engine, the configured ``engine``
        and the ``chosen_engine`` the query would dispatch to (these differ
        only for the ``"auto"`` engine).  The SQL form ``EXPLAIN SELECT ...``
        returns the same information as a ``(step, detail)`` relation.
        """
        if mode not in self.MODES:
            raise SessionError(f"unknown compilation mode {mode!r}")
        entry = self._entry(sql, mode)
        if entry.kind not in ("select", "explain"):
            raise SessionError("explain() expects a SELECT statement")
        with self._locking.read():
            report = self._explain_report(entry.plan, entry.mode)
        report["sql"] = sql
        return report

    # -- DB-API-style entry points ------------------------------------------------

    def cursor(self) -> "Cursor":
        """A new cursor over this connection."""
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str, params: Params = None) -> "Cursor":
        """Shortcut: create a cursor and execute ``sql`` on it."""
        return self.cursor().execute(sql, params)

    def executemany(self, sql: str, seq_of_params: Iterable[Params]) -> "Cursor":
        """Shortcut: create a cursor and run ``sql`` once per parameter set."""
        return self.cursor().executemany(sql, seq_of_params)

    def load(self, table: str, source: object, **options: Any):
        """Bulk-load rows into ``table``, COPY-style; returns a load report.

        ``source`` is a file path (CSV / NDJSON / Parquet, by extension), an
        open :class:`~repro.ingest.RowSource`, or any iterable of rows
        (sequences or column-name mappings).  Rows stream in batched
        chunks -- one store transaction, one statistics fold and one
        statistics-version bump per *chunk*, never per row -- and a missing
        table is created from the inferred (or declared) schema.  Keyword
        options (``chunk_size``, ``create``, ``columns``, ``uncertainty``,
        ``format``, ...) are documented on :func:`repro.ingest.load`, which
        this delegates to::

            report = conn.load("readings", "data/readings.ndjson",
                               uncertainty="impute")
            print(report.rows_loaded, report.rows_per_second)
        """
        from repro.ingest import load as ingest_load

        return ingest_load(self, table, source, **options)

    def prepare(self, sql: str, mode: str = "rewritten") -> "PreparedStatement":
        """Compile ``sql`` now and return a reusable prepared statement."""
        return PreparedStatement(self, sql, mode)

    def statement_kind(self, sql: str, mode: str = "rewritten") -> str:
        """Classify ``sql`` without running it: ``"select"``, ``"insert"``,
        ``"create"`` or ``"explain"``.

        Compiles (and caches) the statement, so syntax errors and unknown
        relations surface here exactly as they would on execution; the HTTP
        server uses this to route statements to the right endpoint.  Pass
        the ``mode`` the statement will later run under so the compiled
        plan lands in the cache entry that execution reuses.
        """
        if mode not in self.MODES:
            raise SessionError(f"unknown compilation mode {mode!r}")
        return self._entry(sql, mode).kind

    def backend_sql(self, sql: str, mode: str = "rewritten") -> Optional[str]:
        """The native SQL a compiling engine would run for ``sql``.

        For the ``"sqlite"`` engine this is the statement (one CTE per plan
        operator) executed against the in-memory SQLite store; it is served
        from the same prepared-plan and compiled-SQL caches as execution, so
        inspecting it costs one cache hit on the warm path.  Returns None
        when the resolved engine interprets plans directly (row/columnar) or
        when the plan falls outside the compilable fragment (the engine
        would fall back for it).
        """
        from repro.db.engine import get_engine
        from repro.db.engine.compiler import NotSupportedError

        entry = self._entry(sql, mode)
        if entry.kind != "select":
            raise SessionError("backend_sql() expects a SELECT statement")
        engine = get_engine(self.engine)
        compiled_sql = getattr(engine, "compiled_sql", None)
        if compiled_sql is None:
            return None
        if mode == "rewritten":
            database = self.encoded
        elif mode == "attribute":
            database = self._attribute_database()
        else:
            database = self.uadb.database
        try:
            return compiled_sql(entry.plan, database)
        except NotSupportedError:
            return None

    # -- query paths (result-object API) ------------------------------------------

    def _default_mode(self) -> str:
        """The compilation mode implied by the connection's annotation level."""
        return "attribute" if self.annotation == "attribute" else "rewritten"

    def query(self, sql: str, params: Params = None) -> UAQueryResult:
        """Answer a SQL query under the connection's annotation level.

        Tuple-level connections (the default) run the Figure 8/9 rewriting
        pipeline and return a :class:`UAQueryResult`;
        ``annotation="attribute"`` connections run the range rewriter and
        return an :class:`AttributeQueryResult` instead.
        """
        started = time.perf_counter()
        entry = self._entry(sql, self._default_mode())
        if entry.kind not in ("select", "explain"):
            raise SessionError("query() expects a SELECT statement")
        result = self._execute_entry(entry, params)
        result.elapsed = time.perf_counter() - started  # type: ignore[union-attr]
        return result  # type: ignore[return-value]

    def query_bounds(self, sql: str, params: Params = None) -> AttributeQueryResult:
        """Answer a SQL query with attribute-level ``[lower, best, upper]`` bounds.

        Compiles through the range rewriter
        (:func:`repro.core.attribute_rewriter.rewrite_attribute_plan`) and
        executes over the triple-layout encodings: natively registered
        attribute relations plus the degenerate conversion of every
        tuple-level relation, so any registered source can be queried for
        bounds.  Works on every connection regardless of its default
        ``annotation`` level; the supported fragment is the positive
        algebra plus ``DISTINCT`` and COUNT/SUM/MIN/MAX aggregation
        (:class:`~repro.core.attribute_rewriter.AttributeRewriteError`
        otherwise).
        """
        started = time.perf_counter()
        entry = self._entry(sql, "attribute")
        if entry.kind not in ("select", "explain"):
            raise SessionError("query_bounds() expects a SELECT statement")
        result = self._execute_entry(entry, params)
        result.elapsed = time.perf_counter() - started  # type: ignore[union-attr]
        return result  # type: ignore[return-value]

    def query_direct(self, sql: str, params: Params = None) -> UAQueryResult:
        """Answer a SQL query by evaluating K_UA semantics directly (no rewriting).

        Used to validate the rewriting (Theorem 7): both paths must produce
        the same annotated result.
        """
        started = time.perf_counter()
        entry = self._entry(sql, "direct")
        if entry.kind not in ("select", "explain"):
            raise SessionError("query_direct() expects a SELECT statement")
        result = self._execute_entry(entry, params)
        result.elapsed = time.perf_counter() - started  # type: ignore[union-attr]
        return result  # type: ignore[return-value]

    def query_plan(self, plan: algebra.Operator,
                   params: Params = None) -> UAQueryResult:
        """Answer an already-built logical plan with UA semantics (uncached)."""
        self._check_open()
        started = time.perf_counter()
        with self._locking.read():
            rewritten = rewrite_plan(plan, self.encoded_catalog)
            encoded_result = evaluate(rewritten, self.encoded, engine=self.engine,
                                      optimize=self.optimize, params=params)
            relation = decode_relation(encoded_result, self.uadb.ua_semiring)
        elapsed = time.perf_counter() - started
        return UAQueryResult(relation, elapsed)

    def query_deterministic(self, sql: str,
                            params: Params = None) -> Tuple[KRelation, float]:
        """Answer a SQL query over the best-guess world only (BGQP baseline).

        Returns the plain relation and the elapsed wall-clock time; used to
        measure the overhead of UA-DBs relative to deterministic processing.
        Deliberately uncached (it re-extracts the best-guess world), matching
        the baseline it exists to measure.
        """
        self._check_open()
        with self._locking.read():
            best_guess = self.uadb.best_guess_database()
            started = time.perf_counter()
            plan = parse_query(sql, best_guess.schema)
            result = evaluate(plan, best_guess, engine=self.engine,
                              optimize=self.optimize, params=params)
            elapsed = time.perf_counter() - started
        return result, elapsed

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self.uadb)} relations"
        backing = f" store={self.store.path!r}" if self.store is not None else ""
        return f"<Connection {self.name!r} [{self.semiring.name}] {state}{backing}>"


class Cursor:
    """A DB-API-style cursor: execute statements, fetch (labeled) rows.

    ``fetchone`` / ``fetchmany`` / ``fetchall`` return plain best-guess rows;
    the UA-specific view lives in :meth:`certain_rows`, :meth:`labeled_rows`
    and the full :attr:`result`.
    """

    arraysize = 1

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self._result: Optional[Union[UAQueryResult, AttributeQueryResult]] = None
        self._rows: List[Row] = []
        self._cursor_index = 0
        self._rowcount = -1
        self._description: Optional[List[Tuple]] = None
        self._closed = False

    # -- execution ----------------------------------------------------------------

    def execute(self, sql: str, params: Params = None) -> "Cursor":
        """Execute a statement; returns the cursor itself (chainable).

        On an ``annotation="attribute"`` connection SELECTs run through
        the range rewriter: fetches return best-guess rows as usual while
        :attr:`result` and :meth:`labeled_rows` expose the per-attribute
        bounds.
        """
        self._check_open()
        entry = self.connection._entry(sql, self.connection._default_mode())
        outcome = self.connection._execute_entry(entry, params)
        if isinstance(outcome, (UAQueryResult, AttributeQueryResult)):
            self._install_result(outcome)
        else:
            self._result = None
            self._rows = []
            self._cursor_index = 0
            self._description = None
            self._rowcount = int(outcome)
        return self

    def executemany(self, sql: str, seq_of_params: Iterable[Params]) -> "Cursor":
        """Execute a DML statement once per parameter set (compiled once).

        Per DB-API, ``executemany`` is for data modification; use
        :meth:`execute` (or a :class:`PreparedStatement`) for queries.

        INSERT batches apply as **one** transaction: a single store append,
        statistics fold and statistics-version bump for the whole call --
        not one per parameter set, which would recompile every cached plan
        (and invalidate every sibling worker's result cache) N times.
        :attr:`rowcount` reports the total rows inserted across the batch.
        """
        self._check_open()
        entry = self.connection._entry(sql, self.connection._default_mode())
        if entry.kind == "select":
            raise SessionError(
                "executemany() is for INSERT-style statements; use execute() "
                "or Connection.prepare() for queries"
            )
        if entry.kind == "insert":
            total = self.connection._run_insert_many(entry, seq_of_params)
        else:
            total = 0
            for params in seq_of_params:
                outcome = self.connection._execute_entry(entry, params)
                total += int(outcome)  # type: ignore[arg-type]
        self._result = None
        self._rows = []
        self._cursor_index = 0
        self._description = None
        self._rowcount = total
        return self

    def _install_result(self,
                        result: Union[UAQueryResult, AttributeQueryResult]) -> None:
        self._result = result
        self._rows = result.rows()
        self._cursor_index = 0
        self._rowcount = len(self._rows)
        self._description = [
            (attribute.name, attribute.data_type, None, None, None, None, None)
            for attribute in result.relation.schema.attributes
        ]

    # -- fetching -----------------------------------------------------------------

    @property
    def description(self) -> Optional[List[Tuple]]:
        """Per-column 7-tuples ``(name, type_code, ...)``; None for non-queries."""
        return self._description

    @property
    def rowcount(self) -> int:
        """Rows returned by the last query / affected by the last DML (-1 if none)."""
        return self._rowcount

    @property
    def result(self) -> Union[UAQueryResult, AttributeQueryResult]:
        """The full annotated result of the last query (an
        :class:`AttributeQueryResult` on attribute-level connections)."""
        if self._result is None:
            raise SessionError("no query result; execute a SELECT first")
        return self._result

    def fetchone(self) -> Optional[Row]:
        """The next row, or None when exhausted."""
        self._check_open()
        if self._cursor_index >= len(self._rows):
            return None
        row = self._rows[self._cursor_index]
        self._cursor_index += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Row]:
        """The next ``size`` rows (default :attr:`arraysize`)."""
        self._check_open()
        size = self.arraysize if size is None else size
        rows = self._rows[self._cursor_index:self._cursor_index + size]
        self._cursor_index += len(rows)
        return rows

    def fetchall(self) -> List[Row]:
        """All remaining rows."""
        self._check_open()
        rows = self._rows[self._cursor_index:]
        self._cursor_index = len(self._rows)
        return rows

    def __iter__(self) -> Iterator[Row]:
        return self

    def __next__(self) -> Row:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- UA-specific views ---------------------------------------------------------

    def certain_rows(self) -> List[Row]:
        """Rows of the last query labeled certain."""
        return self.result.certain_rows()

    def uncertain_rows(self) -> List[Row]:
        """Rows of the last query not labeled certain."""
        return self.result.uncertain_rows()

    def labeled_rows(self) -> List[Tuple[Row, Any]]:
        """Sorted ``(row, label)`` pairs of the last query: a certainty
        boolean on tuple-level connections, an
        :class:`~repro.extensions.attribute_level.AttributeLabel` exposing
        per-attribute certainty on attribute-level ones."""
        return self.result.labeled_rows()

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release the cursor's result; further fetches raise."""
        self._closed = True
        self._result = None
        self._rows = []

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("cursor is closed")
        self.connection._check_open()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PreparedStatement:
    """A statement compiled once, executable many times with fresh bindings.

    The hot path of the session API: ``execute`` re-validates nothing but the
    catalog version (a cache lookup), binds the parameters into the cached
    plan and runs the engine.  If the catalog changed since compilation the
    statement transparently recompiles.
    """

    def __init__(self, connection: Connection, sql: str,
                 mode: str = "rewritten") -> None:
        if mode not in Connection.MODES:
            raise SessionError(f"unknown compilation mode {mode!r}")
        self.connection = connection
        self.sql = sql
        self.mode = mode
        # Compile eagerly so unknown relations / syntax errors surface here.
        self._entry = connection._entry(sql, mode)

    @property
    def kind(self) -> str:
        """``"select"``, ``"insert"`` or ``"create"``."""
        return self._entry.kind

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """The statement's placeholders, in source order."""
        return self._entry.parameters

    def execute(self, params: Params = None) -> Union[UAQueryResult, int]:
        """Run with ``params``: a result for SELECTs, a row count for DML."""
        started = time.perf_counter()
        self._entry = self.connection._entry(self.sql, self.mode)
        outcome = self.connection._execute_entry(self._entry, params)
        if isinstance(outcome, UAQueryResult):
            outcome.elapsed = time.perf_counter() - started
        return outcome

    def executemany(self, seq_of_params: Iterable[Params]) -> Union[List[UAQueryResult], int]:
        """Run once per parameter set: results for SELECTs, total count for DML.

        INSERT batches land as one transaction with one statistics-version
        bump for the whole call (see :meth:`Cursor.executemany`).
        """
        if self._entry.kind == "select":
            return [self.execute(params) for params in seq_of_params]  # type: ignore[misc]
        self._entry = self.connection._entry(self.sql, self.mode)
        if self._entry.kind == "insert":
            return self.connection._run_insert_many(self._entry, seq_of_params)
        total = 0
        for params in seq_of_params:
            total += self.execute(params)  # type: ignore[operator]
        return total

    def __repr__(self) -> str:
        return f"<PreparedStatement {self.kind} mode={self.mode!r} {self.sql!r}>"


def connect(*args: Union[Semiring, str, os.PathLike, UADBStore],
            semiring: Optional[Semiring] = None,
            name: str = "uadb",
            engine: Optional[object] = None,
            optimize: Optional[bool] = None,
            cache_size: int = 128,
            shared_cache: bool = False,
            store: Optional[object] = None,
            create: bool = True,
            annotation: str = "tuple") -> Connection:
    """Open a UA-DB session.

    Example::

        import repro

        conn = repro.connect(engine="sqlite")
        conn.execute("CREATE TABLE t (a INT, b TEXT)")
        conn.executemany("INSERT INTO t VALUES (?, ?)", [(1, "x"), (2, "y")])
        statement = conn.prepare("SELECT a, b FROM t WHERE a >= ?")
        result = statement.execute([2])
        print(result.labeled_rows())

    Passing a path (or ``store=path``) opens a **persistent** session: the
    encoded relations live in an on-disk WAL-mode SQLite file and survive
    the process::

        conn = repro.connect("inventory.uadb", engine="sqlite")
        conn.execute("CREATE TABLE t (a INT, b TEXT)")
        conn.execute("INSERT INTO t VALUES (1, 'x')")
        conn.close()

        conn = repro.connect("inventory.uadb")   # reopens table + rows
        print(conn.query("SELECT a, b FROM t").labeled_rows())

    ``semiring`` picks the annotation domain (bag multiplicities by default;
    an existing store's persisted semiring is adopted when unset), ``engine``
    the execution backend (``"row"`` / ``"columnar"`` / ``"sqlite"`` /
    instance), ``optimize`` toggles the logical optimizer, ``cache_size``
    bounds the prepared-plan LRU cache (0 disables caching), and
    ``create=False`` refuses to initialize a missing store file
    (:class:`~repro.api.store.StoreError`).

    ``annotation="attribute"`` switches the connection's default query
    semantics to attribute-level bounds: ``query`` and cursor ``execute``
    return results whose cells carry ``[lower, best-guess, upper]`` ranges
    (see :meth:`Connection.query_bounds`, also available per-query on
    tuple-level connections)::

        conn = repro.connect(annotation="attribute")
        conn.execute("CREATE TABLE r (v INT)")
        conn.execute("INSERT INTO r VALUES (10)")
        print(conn.query("SELECT SUM(v) FROM r").bounded_rows())

    ``shared_cache=True`` opts in to the process-wide
    :class:`~repro.api.cache.SharedPlanCache` for this ``(name, semiring)``
    catalog: every sharing connection serves warm hits from (and invalidates)
    the same lock-guarded cache, so a group of connections over one catalog
    compiles each distinct statement once.  Sharing assumes the connections
    register the same sources; a registration on any of them invalidates the
    whole group's cached plans.  For sharing the *data* too -- one set of
    relations served to many threads -- use
    :class:`repro.api.pool.ConnectionPool`.
    """
    if len(args) > 2:
        raise TypeError(
            f"connect() takes at most two positional arguments (a semiring "
            f"or store path, then a name), {len(args)} were given"
        )
    if args:
        first = args[0]
        if isinstance(first, (str, os.PathLike, UADBStore)):
            if store is not None:
                raise SessionError(
                    "pass the store either as the first argument or as "
                    "store=, not both"
                )
            store = first
        else:
            if semiring is not None:
                raise TypeError(
                    "connect() got multiple values for argument 'semiring'"
                )
            semiring = first
    if len(args) == 2:
        # Pre-store signature compatibility: connect(semiring, "name").
        if not isinstance(args[1], str):
            raise TypeError(
                f"connect() second positional argument must be the catalog "
                f"name, got {args[1]!r}"
            )
        name = args[1]
    return Connection(semiring=semiring, name=name, engine=engine,
                      optimize=optimize, cache_size=cache_size,
                      shared_cache=shared_cache, store=store, create=create,
                      annotation=annotation)
