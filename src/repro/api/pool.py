"""A thread-safe connection pool sharing one UA-database.

:class:`ConnectionPool` is the multi-client front door the session layer was
missing: where plain :func:`repro.connect` gives every caller a private copy
of the registered sources, a pool hands out bounded
:class:`PooledConnection` handles that all share

* **one set of sources** -- the same :class:`~repro.core.uadb.UADatabase`
  and encoded :class:`~repro.db.database.Database` objects, so a
  registration or ``INSERT`` through any handle is immediately visible to
  all of them,
* **one prepared-plan cache** -- a pool-private, lock-guarded
  :class:`~repro.api.cache.SharedPlanCache`: each distinct statement is
  compiled once for the whole pool, and any DDL invalidates every handle's
  cached plans at once (no stale hits after catalog bumps),
* **one persistent store** (optional) -- pass a ``.uadb`` path and the pool
  opens a single WAL-mode :class:`~repro.api.store.UADBStore` whose
  per-thread ``sqlite3`` connections let pooled readers run in parallel.

Consistency model: statements take a readers-writer lock.  Queries
(``SELECT``) acquire it shared -- any number run concurrently; DDL/DML
(``CREATE TABLE`` / ``INSERT`` / source registration) acquire it exclusively,
so every write is atomic with respect to readers and other writers and the
interleaving is serializable (N threads hammering one pool produce exactly
the rows a serial run would).

Example::

    pool = ConnectionPool("inventory.uadb", engine="sqlite", max_connections=8)
    with pool.connection() as conn:
        conn.execute("CREATE TABLE t (a INT, b TEXT)")
        conn.execute("INSERT INTO t VALUES (?, ?)", [1, "x"])
    with pool.connection() as conn:              # any thread, same data
        print(conn.query("SELECT a, b FROM t").labeled_rows())
    pool.close()
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.semirings import Semiring
from repro.api.cache import SharedPlanCache
from repro.api.session import Connection, SessionError

__all__ = ["ConnectionPool", "PooledConnection", "PoolError", "PoolTimeout", "RWLock"]


class PoolError(SessionError):
    """Raised for misuse of a connection pool (closed pool, released handle)."""


class PoolTimeout(PoolError):
    """Raised when no pooled connection became available within the timeout."""


class RWLock:
    """A writer-preferring readers-writer lock (not reentrant).

    Any number of readers hold the lock together; writers are exclusive.
    Arriving writers block *new* readers, so a steady stream of queries
    cannot starve an ``INSERT``.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        """Hold the lock shared: blocks only while a writer is active/waiting."""
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if self._readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Hold the lock exclusively: waits out readers and other writers."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._condition:
                self._writer = False
                self._condition.notify_all()


class PooledConnection:
    """A checkout handle on the pool's shared connection.

    Exposes the full :class:`~repro.api.session.Connection` surface by
    delegation; :meth:`close` (or leaving the ``with`` block) returns the
    handle to the pool instead of closing the underlying session, after
    which any further use raises :class:`PoolError`.
    """

    __slots__ = ("_pool", "_core", "_released", "_owner")

    def __init__(self, pool: "ConnectionPool", core: Connection) -> None:
        self._pool = pool
        self._core = core
        self._released = False
        self._owner = threading.get_ident()

    def close(self) -> None:
        """Return this handle to the pool (idempotent)."""
        if not self._released:
            self._released = True
            self._pool._release(self._owner)

    #: DB-API-agnostic alias for :meth:`close`.
    release = close

    @property
    def closed(self) -> bool:
        """True once the handle was returned (or the core session closed)."""
        return self._released or self._core.closed

    def __enter__(self) -> "PooledConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # A leaked handle (e.g. a thread that died between acquire() and
        # close()) is returned to the pool when it is garbage-collected, so
        # a draining ConnectionPool.close() is not blocked forever by it.
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def __getattr__(self, item: str):
        if object.__getattribute__(self, "_released"):
            raise PoolError(
                "pooled connection was already returned to the pool; "
                "acquire a new one"
            )
        return getattr(self._core, item)

    def __repr__(self) -> str:
        state = "released" if self._released else "acquired"
        return f"<PooledConnection {state} of {self._pool!r}>"


class ConnectionPool:
    """A bounded pool of thread-safe connections over one shared UA-DB.

    ``store`` may be a ``.uadb`` path (or an open
    :class:`~repro.api.store.UADBStore`) for durable data, or None for a
    purely in-memory pool.  ``max_connections`` bounds concurrent checkouts;
    :meth:`acquire` blocks (optionally with a timeout) once the pool is
    exhausted.  ``semiring``/``engine``/``optimize`` follow the same
    precedence rules as :func:`repro.connect`.
    """

    def __init__(self, store: Optional[object] = None,
                 semiring: Optional[Semiring] = None,
                 name: str = "uadb",
                 engine: Optional[object] = None,
                 optimize: Optional[bool] = None,
                 cache_size: int = 256,
                 max_connections: int = 8,
                 create: bool = True) -> None:
        if max_connections < 1:
            raise PoolError("max_connections must be at least 1")
        self.max_connections = max_connections
        self.plan_cache = SharedPlanCache(cache_size)
        self._rwlock = RWLock()
        self._semaphore = threading.BoundedSemaphore(max_connections)
        self._state = threading.Condition()
        self._in_use = 0
        #: Owner thread ids of outstanding handles (deadlock detection in
        #: close(drain=True): the closing thread cannot drain itself).
        self._owners: Dict[int, int] = {}
        self._acquired_total = 0
        self._closed = False
        self._finalized = False
        self._core = Connection(
            semiring=semiring, name=name, engine=engine, optimize=optimize,
            store=store, create=create, plan_cache=self.plan_cache,
            locking=self._rwlock,
        )

    # -- checkout lifecycle -------------------------------------------------------

    def acquire(self, timeout: Optional[float] = None) -> PooledConnection:
        """Check out a pooled connection, blocking while the pool is full.

        With ``timeout`` (seconds), raises :class:`PoolTimeout` if no handle
        frees up in time.
        """
        if self._closed:
            raise PoolError("connection pool is closed")
        if timeout is None:
            acquired = self._semaphore.acquire()
        else:
            acquired = self._semaphore.acquire(timeout=timeout)
        if not acquired:
            raise PoolTimeout(
                f"no pooled connection became available within {timeout}s "
                f"({self.max_connections} in use)"
            )
        with self._state:
            # Re-checked under the state lock: close(drain=True) decides
            # "idle, safe to finalize" under this same lock, so a checkout
            # can never slip between its drain check and the session close.
            if self._closed:
                self._semaphore.release()
                raise PoolError("connection pool is closed")
            self._in_use += 1
            owner = threading.get_ident()
            self._owners[owner] = self._owners.get(owner, 0) + 1
            self._acquired_total += 1
        return PooledConnection(self, self._core)

    def _release(self, owner: int) -> None:
        with self._state:
            self._in_use -= 1
            count = self._owners.get(owner, 0) - 1
            if count > 0:
                self._owners[owner] = count
            else:
                self._owners.pop(owner, None)
            if self._in_use == 0:
                # Wake a close(drain=True) waiting for the pool to go idle.
                self._state.notify_all()
        self._semaphore.release()

    @contextmanager
    def connection(self, timeout: Optional[float] = None) -> Iterator[PooledConnection]:
        """``with pool.connection() as conn:`` -- acquire and auto-release."""
        handle = self.acquire(timeout)
        try:
            yield handle
        finally:
            handle.close()

    # -- shared state -------------------------------------------------------------

    @contextmanager
    def exclusive(self) -> Iterator[Connection]:
        """Hold the pool's writer lock and yield the shared core session.

        Everything a pooled statement does -- queries under the read lock,
        DDL/DML under the write lock -- waits while this context is held, so
        the caller may swap relations and invalidate caches atomically.  The
        fleet's cross-process refresh (reloading relations another process
        committed to the store) runs under it.  Do not call while the same
        thread is inside a statement: the lock is not reentrant.
        """
        with self._rwlock.write():
            yield self._core

    @property
    def store(self):
        """The shared persistent store, or None for an in-memory pool."""
        return self._core.store

    @property
    def semiring(self) -> Semiring:
        """The annotation semiring shared by every pooled handle."""
        return self._core.semiring

    @property
    def engine(self):
        """The execution-engine spec every pooled statement runs on."""
        return self._core.engine

    def stats(self) -> Dict[str, Any]:
        """Pool, plan-cache and store counters in one snapshot."""
        with self._state:
            stats: Dict[str, Any] = {
                "max_connections": self.max_connections,
                "in_use": self._in_use,
                "acquired_total": self._acquired_total,
                "closed": self._closed,
            }
        stats["plan_cache"] = self.plan_cache.stats()
        if self.store is not None:
            stats["store"] = self.store.stats()
        return stats

    # -- lifecycle ----------------------------------------------------------------

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Close the pool: the shared session, its store, and the plan cache.

        New checkouts are refused from the moment close is called.  With
        ``drain`` (the default) the call waits for every checked-out handle
        to be returned before closing the shared session, so in-flight
        statements finish cleanly; ``timeout`` bounds that wait and raises
        :class:`PoolTimeout` (the pool stays acquirable-less but open, so a
        later ``close()`` -- or ``close(drain=False)`` to force -- can
        finish the job).  Handles leaked by dead threads release on garbage
        collection (``PooledConnection.__del__``); pass a ``timeout`` when
        a handle may be held hostage by live code.  Draining while the
        *calling* thread still holds a handle can never succeed, so that
        raises :class:`PoolError` immediately instead of deadlocking.
        Closing an already-closed pool is a no-op.
        """
        with self._state:
            self._closed = True
            if drain and not self._finalized:
                held = self._owners.get(threading.get_ident(), 0)
                if held:
                    raise PoolError(
                        f"cannot drain: the closing thread still holds "
                        f"{held} pooled connection(s); release them first "
                        f"or use close(drain=False)"
                    )
                deadline = None if timeout is None else time.monotonic() + timeout
                while self._in_use:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        raise PoolTimeout(
                            f"{self._in_use} pooled connection(s) still "
                            f"checked out after {timeout}s"
                        )
                    self._state.wait(remaining)
            if self._finalized:
                return
            self._finalized = True
        self._core.close()
        self.plan_cache.clear()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called; acquires are refused from then on."""
        return self._closed

    #: Drain bound used by ``__exit__`` while an exception is unwinding.
    EXIT_DRAIN_TIMEOUT = 5.0

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
            return
        # An exception is already unwinding: close without masking it with
        # drain errors or blocking the unwind forever on a wedged handle.
        try:
            self.close(timeout=self.EXIT_DRAIN_TIMEOUT)
        except Exception:
            try:
                self.close(drain=False)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self._in_use}/{self.max_connections} in use"
        backing = self._core.store.path if self._core.store is not None else "memory"
        return f"<ConnectionPool {backing!r} {state}>"
