"""Persistent on-disk storage for UA-databases: the ``.uadb`` store.

A :class:`UADBStore` is an ordinary SQLite database file holding

* one ``Enc`` data table per registered relation, in exactly the layout the
  SQLite execution engine queries (type-less data columns ``c0..cN`` -- the
  last one being the certainty marker ``C`` -- plus the integer annotation
  column ``a``, one single-column index per data column),
* a catalog table (``uadb_catalog``) mapping relation names to their encoded
  schemas (JSON, see :func:`repro.core.encoding.schema_to_metadata`) in
  registration order,
* a metadata table (``uadb_meta``) recording the store format version, the
  base semiring by name, and the monotonically increasing catalog version
  that prepared-plan caches key their invalidation on.

Because the data tables use the engine layout, a store-backed database needs
no encode-and-load step: the SQLite execution engine *attaches* to the store
file and runs compiled queries directly against it (see
``_PersistentStoreAdapter`` in :mod:`repro.db.engine.sqlite`).  SQL-level
``INSERT`` through the session appends the new encoded rows incrementally
(:meth:`UADBStore.append`) and advances the per-relation fingerprint, so the
loaded table is never rewritten wholesale on the insert path.

Durability and concurrency come from SQLite itself:

* the store runs in **WAL** mode (``synchronous=NORMAL``): readers never
  block the writer and a crashed process leaves a consistent, reopenable
  file (the WAL is replayed on the next open);
* each thread gets its **own** ``sqlite3`` connection
  (:meth:`UADBStore.connection`), so concurrent readers run in parallel;
* all writes to one store object serialize behind a process-wide write lock
  and commit immediately.

Opening anything that is not a UA-DB store -- a missing path, a corrupt
file, a foreign SQLite database, an incompatible format or semiring --
raises the typed :class:`StoreError` instead of leaking a raw
``sqlite3.OperationalError``.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import weakref
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.db.relation import KRelation, Row
from repro.db.schema import RelationSchema
from repro.semirings import Semiring
from repro.db.engine.common import write_enc_table
from repro.db.engine.compiler import NotSupportedError, annotation_sql, table_name
from repro.core.encoding import (
    schema_from_metadata,
    schema_to_metadata,
    semiring_from_name,
)

__all__ = [
    "FORMAT_VERSION",
    "STORE_DIR_ENV_VAR",
    "StoreError",
    "UADBStore",
    "UnstorableRelationError",
]

#: On-disk format version; bumped on incompatible layout changes.
FORMAT_VERSION = 1

#: When set, connections without an explicit store persist to a fresh
#: ``.uadb`` file under this directory (used by the CI on-disk matrix axis).
STORE_DIR_ENV_VAR = "REPRO_STORE_DIR"

_META_TABLE = "uadb_meta"
_CATALOG_TABLE = "uadb_catalog"
_STATS_TABLE = "uadb_stats"


class StoreError(RuntimeError):
    """A UA-DB store file is missing, corrupt, foreign, or incompatible."""


class UnstorableRelationError(StoreError, NotSupportedError):
    """A relation holds values SQLite cannot store (e.g. nested tuples).

    Doubles as the compiler's :class:`NotSupportedError` so the SQLite
    execution engine's existing fallback path (columnar, reading the
    in-memory relation) handles the table transparently.
    """


class _TableFingerprint:
    """Sync state of one stored relation: which in-memory contents it holds.

    ``relation`` pins object identity (guarding against id reuse) and
    ``version`` is the relation's mutation counter at the last write.
    ``error`` records a failed write so later syncs re-raise instead of
    re-attempting a doomed load.
    """

    __slots__ = ("relation", "version", "error")

    def __init__(self, relation: KRelation, version: int,
                 error: Optional[UnstorableRelationError] = None) -> None:
        self.relation = relation
        self.version = version
        self.error = error

    def fresh(self, relation: KRelation) -> bool:
        return (self.error is None and self.relation is relation
                and self.version == relation._version)


class UADBStore:
    """One persistent ``.uadb`` file: Enc tables + catalog + metadata.

    ``semiring=None`` adopts the semiring persisted in an existing store
    (new stores default to N); passing a semiring validates it against an
    existing store and fixes it for a new one.  ``create=False`` refuses to
    initialize a missing file.
    """

    def __init__(self, path: "str | os.PathLike", semiring: Optional[Semiring] = None,
                 create: bool = True) -> None:
        self.path = os.fspath(path)
        self._write_lock = threading.RLock()
        self._local = threading.local()
        #: ``(owning thread, connection)`` pairs, pruned of dead threads on
        #: new checkouts so a long-lived store serving short-lived worker
        #: threads does not leak file descriptors.
        self._connections: List[Tuple[threading.Thread, sqlite3.Connection]] = []
        self._connections_lock = threading.Lock()
        self._closed = False
        self._synced: Dict[str, _TableFingerprint] = {}
        #: ``id(relation)`` -> (weak reference, its ``_version`` when it
        #: last mirrored the stored table exactly).  Unlike ``_synced``
        #: (one slot per table, overwritten whenever a fleet refresh loads
        #: a newer copy), this remembers *every* clean snapshot object
        #: still alive, so :meth:`sync` can tell "stale because mutated
        #: out-of-band" (must rewrite) apart from "stale because a refresh
        #: replaced the object" (must NOT rewrite -- the table is
        #: same-or-newer than the object).  Keyed by id with a liveness
        #: check on lookup because :class:`KRelation` is unhashable.
        self._snapshots: Dict[int, Tuple[weakref.ref, int]] = {}
        #: Full table (re)writes performed (parity with the engine's counter).
        self.loads = 0
        #: Incremental row appends performed.
        self.appends = 0
        if not create and not os.path.exists(self.path):
            raise StoreError(f"no UA-DB store at {self.path!r}")
        with self._write_lock:
            self._initialize(self.connection(), semiring)

    # -- connections --------------------------------------------------------------

    def connection(self) -> sqlite3.Connection:
        """This thread's connection to the store (created on first use)."""
        if self._closed:
            raise StoreError(f"store {self.path!r} is closed")
        connection = getattr(self._local, "connection", None)
        if connection is None:
            try:
                # ``check_same_thread=False`` only so close() can reap
                # connections owned by other threads; each connection is
                # otherwise used exclusively by the thread that created it.
                connection = sqlite3.connect(self.path, timeout=30.0,
                                             check_same_thread=False)
            except sqlite3.Error as exc:
                raise StoreError(
                    f"cannot open UA-DB store at {self.path!r}: {exc}"
                ) from exc
            try:
                connection.execute("PRAGMA journal_mode = WAL")
                connection.execute("PRAGMA synchronous = NORMAL")
                connection.execute("PRAGMA busy_timeout = 30000")
                # The evaluator's LIKE is case-sensitive; SQLite's is not.
                connection.execute("PRAGMA case_sensitive_like = ON")
            except sqlite3.DatabaseError as exc:
                connection.close()
                raise StoreError(
                    f"{self.path!r} is not a UA-DB store (corrupt or not a "
                    f"SQLite database): {exc}"
                ) from exc
            self._local.connection = connection
            with self._connections_lock:
                # Reap connections whose owning thread has exited: the
                # threading.local slot died with the thread, but the sqlite3
                # connection (and its file descriptor) would live forever.
                alive: List[Tuple[threading.Thread, sqlite3.Connection]] = []
                for thread, existing in self._connections:
                    if thread.is_alive():
                        alive.append((thread, existing))
                    else:
                        try:
                            existing.close()
                        except sqlite3.Error:  # pragma: no cover
                            pass
                alive.append((threading.current_thread(), connection))
                self._connections = alive
        return connection

    def close(self) -> None:
        """Close every thread's connection; further use raises StoreError."""
        self._closed = True
        with self._connections_lock:
            for _thread, connection in self._connections:
                try:
                    connection.close()
                except sqlite3.Error:  # pragma: no cover - best-effort reap
                    pass
            self._connections.clear()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; store operations raise from then on."""
        return self._closed

    def commit(self) -> None:
        """Flush this thread's connection (writes commit eagerly anyway)."""
        self.connection().commit()

    # -- initialization -----------------------------------------------------------

    def _initialize(self, connection: sqlite3.Connection,
                    semiring: Optional[Semiring]) -> None:
        try:
            tables = {
                row[0] for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
        except sqlite3.DatabaseError as exc:
            raise StoreError(
                f"{self.path!r} is not a UA-DB store (corrupt or not a "
                f"SQLite database): {exc}"
            ) from exc
        if _META_TABLE in tables:
            self._load_meta(connection, semiring)
            return
        if tables:
            raise StoreError(
                f"{self.path!r} is a SQLite database but not a UA-DB store "
                f"(no {_META_TABLE!r} table); refusing to overwrite it"
            )
        if semiring is None:
            from repro.semirings import NATURAL
            semiring = NATURAL
        try:
            self.ops = annotation_sql(semiring)
        except NotSupportedError as exc:
            raise StoreError(
                f"semiring {semiring.name} cannot be persisted: {exc}"
            ) from exc
        self.semiring = semiring
        self._catalog_version = 0
        self._stats_version = 0
        connection.execute(
            f"CREATE TABLE {_META_TABLE} (key TEXT PRIMARY KEY, value TEXT)"
        )
        connection.execute(
            f"CREATE TABLE {_CATALOG_TABLE} ("
            "name TEXT PRIMARY KEY, position INTEGER NOT NULL, "
            "schema_json TEXT NOT NULL)"
        )
        connection.executemany(
            f"INSERT INTO {_META_TABLE} (key, value) VALUES (?, ?)",
            [("format", str(FORMAT_VERSION)),
             ("semiring", semiring.name),
             ("catalog_version", "0"),
             ("stats_version", "0")],
        )
        connection.commit()

    def _load_meta(self, connection: sqlite3.Connection,
                   semiring: Optional[Semiring]) -> None:
        meta = dict(connection.execute(
            f"SELECT key, value FROM {_META_TABLE}"
        ))
        try:
            stored_format = int(meta["format"])
        except (KeyError, ValueError) as exc:
            raise StoreError(
                f"{self.path!r} has no readable store format marker"
            ) from exc
        if stored_format != FORMAT_VERSION:
            raise StoreError(
                f"{self.path!r} uses store format {stored_format}, this "
                f"build reads format {FORMAT_VERSION}"
            )
        try:
            stored_semiring = semiring_from_name(meta.get("semiring", ""))
        except ValueError as exc:
            raise StoreError(f"{self.path!r}: {exc}") from exc
        if semiring is not None and semiring.name != stored_semiring.name:
            raise StoreError(
                f"store {self.path!r} was created with semiring "
                f"{stored_semiring.name}, not {semiring.name}"
            )
        self.semiring = stored_semiring
        self.ops = annotation_sql(stored_semiring)
        self._catalog_version = int(meta.get("catalog_version", "0"))
        # Stores from before the statistics layer have neither the meta row
        # nor the stats table; both appear lazily on first write.
        self._stats_version = int(meta.get("stats_version", "0"))

    # -- catalog ------------------------------------------------------------------

    @property
    def catalog_version(self) -> int:
        """Monotonic counter persisted across processes; see meta table."""
        return self._catalog_version

    def bump_catalog_version(self) -> int:
        """Advance and persist the catalog version (registration / DDL)."""
        with self._write_lock:
            self._catalog_version += 1
            connection = self.connection()
            connection.execute(
                f"UPDATE {_META_TABLE} SET value = ? WHERE key = 'catalog_version'",
                (str(self._catalog_version),),
            )
            connection.commit()
            return self._catalog_version

    def read_persisted_versions(self) -> Tuple[int, int]:
        """The ``(catalog_version, stats_version)`` currently on disk.

        Unlike :attr:`catalog_version` / :attr:`stats_version` -- in-memory
        mirrors that only track *this* process's bumps -- this re-reads the
        meta table, so it observes versions advanced by **other processes**
        sharing the store file.  The fleet's
        :class:`~repro.server.fleet.coordination.StoreCoordinator` polls it
        per request to detect cross-process writes.
        """
        rows = dict(self.connection().execute(
            f"SELECT key, value FROM {_META_TABLE} "
            "WHERE key IN ('catalog_version', 'stats_version')"
        ))
        try:
            return (int(rows.get("catalog_version", "0")),
                    int(rows.get("stats_version", "0")))
        except ValueError as exc:
            raise StoreError(
                f"store {self.path!r} has unreadable version counters"
            ) from exc

    def adopt_versions(self, catalog_version: int, stats_version: int) -> None:
        """Fast-forward the in-memory version mirrors to persisted values.

        Called after another process advanced the persisted counters: the
        mirrors must catch up *before* this process's next bump, or the bump
        would re-persist an already-used version number and break the
        monotonic invalidation contract.  Counters only ever move forward.
        """
        with self._write_lock:
            self._catalog_version = max(self._catalog_version, catalog_version)
            self._stats_version = max(self._stats_version, stats_version)

    # -- table statistics ---------------------------------------------------------

    @property
    def stats_version(self) -> int:
        """Monotonic statistics counter persisted across processes.

        Bumped whenever persisted table statistics change (INSERTs,
        recollections); plan caches key on it so a join order chosen under
        stale statistics cannot outlive the statistics it was based on.
        Stores from before the statistics layer report 0.
        """
        return self._stats_version

    def bump_stats_version(self) -> int:
        """Advance and persist the statistics version.

        Uses ``INSERT OR REPLACE`` (not a plain ``UPDATE``) because stores
        created before the statistics layer have no ``stats_version`` meta
        row to update.
        """
        with self._write_lock:
            self._stats_version += 1
            connection = self.connection()
            connection.execute(
                f"INSERT OR REPLACE INTO {_META_TABLE} (key, value) "
                "VALUES ('stats_version', ?)",
                (str(self._stats_version),),
            )
            connection.commit()
            return self._stats_version

    def _ensure_stats_table(self, connection: sqlite3.Connection) -> None:
        connection.execute(
            f"CREATE TABLE IF NOT EXISTS {_STATS_TABLE} "
            "(name TEXT PRIMARY KEY, stats_json TEXT NOT NULL)"
        )

    def save_stats(self, name: str, stats_json: str) -> None:
        """Persist the statistics JSON of relation ``name`` (upsert)."""
        with self._write_lock:
            connection = self.connection()
            self._ensure_stats_table(connection)
            connection.execute(
                f"INSERT OR REPLACE INTO {_STATS_TABLE} (name, stats_json) "
                "VALUES (?, ?)",
                (name.lower(), stats_json),
            )
            connection.commit()

    def load_all_stats(self) -> Dict[str, str]:
        """All persisted statistics as ``{relation name: stats JSON}``.

        Returns an empty mapping for stores without a stats table (created
        before the statistics layer, or never analyzed).
        """
        connection = self.connection()
        try:
            rows = connection.execute(
                f"SELECT name, stats_json FROM {_STATS_TABLE}"
            ).fetchall()
        except sqlite3.OperationalError:
            return {}
        return {name: payload for name, payload in rows}

    def delete_stats(self, name: str) -> None:
        """Drop persisted statistics for relation ``name`` (no-op if absent)."""
        with self._write_lock:
            connection = self.connection()
            try:
                connection.execute(
                    f"DELETE FROM {_STATS_TABLE} WHERE name = ?",
                    (name.lower(),),
                )
            except sqlite3.OperationalError:
                return
            connection.commit()

    def relation_names(self) -> List[str]:
        """Display names of the stored relations, in registration order."""
        return [
            schema_from_metadata(row[0]).name
            for row in self.connection().execute(
                f"SELECT schema_json FROM {_CATALOG_TABLE} ORDER BY position"
            )
        ]

    def schema_of(self, name: str) -> RelationSchema:
        """The persisted (encoded) schema of ``name``."""
        row = self.connection().execute(
            f"SELECT schema_json FROM {_CATALOG_TABLE} WHERE name = ?",
            (name.lower(),),
        ).fetchone()
        if row is None:
            raise StoreError(
                f"store {self.path!r} has no relation {name!r}"
            )
        return schema_from_metadata(row[0])

    def __contains__(self, name: str) -> bool:
        row = self.connection().execute(
            f"SELECT 1 FROM {_CATALOG_TABLE} WHERE name = ?", (name.lower(),)
        ).fetchone()
        return row is not None

    # -- data ---------------------------------------------------------------------

    def fresh(self, relation: KRelation) -> bool:
        """True while the stored table still matches ``relation`` exactly."""
        state = self._synced.get(relation.schema.name.lower())
        return state is not None and state.fresh(relation)

    def _remember_snapshot(self, relation: KRelation) -> None:
        """Record that ``relation``, at its current version, mirrors disk."""
        key = id(relation)
        snapshots = self._snapshots

        def _purge(reference: weakref.ref) -> None:
            # Only drop the entry this reference created: the id may have
            # been reused by a newer snapshot before the callback fired.
            entry = snapshots.get(key)
            if entry is not None and entry[0] is reference:
                snapshots.pop(key, None)

        snapshots[key] = (weakref.ref(relation, _purge), relation._version)

    def _snapshot_current(self, relation: KRelation) -> bool:
        """True when ``relation`` is an unmodified copy of persisted state.

        A relation object that was loaded from (or fully written to) this
        store and never mutated since cannot be *ahead* of the stored
        table -- at most behind it, when another process appended rows in
        the meantime.  Syncing must then leave the table alone: a rewrite
        from such a snapshot would silently delete durable rows a
        concurrent writer committed (the fleet refresh race), whereas
        skipping it reads the same-or-newer stored rows.
        """
        entry = self._snapshots.get(id(relation))
        if entry is None:
            return False
        reference, version = entry
        return reference() is relation and version == relation._version

    def save(self, relation: KRelation) -> None:
        """Create or replace the Enc table (and catalog entry) for ``relation``.

        Raises :class:`UnstorableRelationError` when the relation holds
        values SQLite cannot bind; the verdict is remembered so later syncs
        fail fast (and the execution engine falls back) until the relation
        actually changes.
        """
        key = relation.schema.name.lower()
        with self._write_lock:
            connection = self.connection()
            self._write_table(connection, key, relation)
            position = connection.execute(
                f"SELECT position FROM {_CATALOG_TABLE} WHERE name = ?", (key,)
            ).fetchone()
            if position is None:
                position = connection.execute(
                    f"SELECT COUNT(*) FROM {_CATALOG_TABLE}"
                ).fetchone()
            connection.execute(
                f"INSERT OR REPLACE INTO {_CATALOG_TABLE} "
                "(name, position, schema_json) VALUES (?, ?, ?)",
                (key, position[0], schema_to_metadata(relation.schema)),
            )
            connection.commit()

    def append(self, relation: KRelation,
               rows: Iterable[Tuple[Row, Any]]) -> None:
        """Incrementally INSERT encoded ``(row, annotation)`` pairs.

        Called *before* the in-memory mutation (write-ahead): a failure
        rolls back and leaves the fingerprint untouched, so a refused
        append implies no state change anywhere.  After mirroring the rows
        into the in-memory relation the caller advances the fingerprint
        with :meth:`mark_synced`, keeping the loaded table append-only on
        the insert path (never a wholesale rewrite).
        """
        key = relation.schema.name.lower()
        table = table_name(key)
        placeholders = ", ".join(["?"] * (relation.schema.arity + 1))
        encode = self.ops.encode
        with self._write_lock:
            connection = self.connection()
            try:
                connection.executemany(
                    f"INSERT INTO {table} VALUES ({placeholders})",
                    (row + (encode(annotation),) for row, annotation in rows),
                )
            except (sqlite3.Error, OverflowError, TypeError, ValueError) as exc:
                connection.rollback()
                error = UnstorableRelationError(
                    f"relation {key!r} received values SQLite cannot store: {exc}"
                )
                error.__cause__ = exc
                raise error
            connection.commit()
            self.appends += 1

    def mark_synced(self, relation: KRelation) -> None:
        """Record that the stored table mirrors ``relation`` as it is now.

        The second half of the append protocol: called once the in-memory
        relation has caught up with the rows already written via
        :meth:`append`.
        """
        with self._write_lock:
            self._synced[relation.schema.name.lower()] = _TableFingerprint(
                relation, relation._version
            )
            self._remember_snapshot(relation)

    def sync(self, name: str, relation: KRelation) -> bool:
        """Ensure the stored table matches ``relation``; rewrite if stale.

        The staleness fast path is a lock-free fingerprint check (object
        identity + ``KRelation._version``), so the execution engine pays one
        dictionary hit per referenced relation per query.  Returns True when
        a rewrite happened.
        """
        key = name.lower()
        state = self._synced.get(key)
        if state is not None:
            if state.fresh(relation):
                return False
            if (state.error is not None and state.relation is relation
                    and state.version == relation._version):
                raise state.error
        if self._snapshot_current(relation):
            # An unmodified snapshot of already-persisted state: the stored
            # table is the same or newer (a concurrent fleet writer may have
            # appended); rewriting would regress durable rows.
            return False
        with self._write_lock:
            state = self._synced.get(key)
            if state is not None and state.fresh(relation):
                return False
            if self._snapshot_current(relation):
                return False
            connection = self.connection()
            self._write_table(connection, key, relation)
            if key not in self:
                # Out-of-band relation (added to the Database directly, not
                # through a session): give it a catalog entry so it survives.
                position = connection.execute(
                    f"SELECT COUNT(*) FROM {_CATALOG_TABLE}"
                ).fetchone()[0]
                connection.execute(
                    f"INSERT INTO {_CATALOG_TABLE} "
                    "(name, position, schema_json) VALUES (?, ?, ?)",
                    (key, position, schema_to_metadata(relation.schema)),
                )
            connection.commit()
            return True

    def _write_table(self, connection: sqlite3.Connection, key: str,
                     relation: KRelation) -> None:
        """DROP/CREATE the Enc table and bulk-load ``relation`` into it.

        The whole rewrite runs in one transaction: a failure (values SQLite
        cannot bind) rolls back to the previously persisted table, so a bad
        in-memory relation can never destroy durable data or leave the
        catalog pointing at a missing table.
        """
        table = table_name(key)
        cursor = connection.cursor()
        if not connection.in_transaction:
            # Python's sqlite3 autocommits DDL; an explicit transaction makes
            # the DROP inside write_enc_table rollback-able (SQLite DDL is
            # transactional).
            cursor.execute("BEGIN IMMEDIATE")
        try:
            # Shared physical design with the engine's in-memory loader
            # (type-less columns, per-column indexes, ANALYZE), so query
            # plans and performance match the in-memory configuration.
            write_enc_table(cursor, table, relation.schema.arity,
                            self.ops.encode, relation.items())
        except (sqlite3.Error, OverflowError, TypeError, ValueError) as exc:
            connection.rollback()  # the previously stored table survives
            error = UnstorableRelationError(
                f"relation {key!r} holds values SQLite cannot store: {exc}"
            )
            error.__cause__ = exc
            self._synced[key] = _TableFingerprint(
                relation, relation._version, error
            )
            raise error
        self._synced[key] = _TableFingerprint(relation, relation._version)
        self._remember_snapshot(relation)
        self.loads += 1

    def load_relation(self, name: str) -> KRelation:
        """Rebuild the encoded :class:`KRelation` for ``name`` from disk.

        Duplicate stored fragments of one tuple (produced by incremental
        appends) are consolidated with the semiring's ``plus``.  The loaded
        relation is fingerprinted as in sync, so the execution engine will
        not rewrite the table it was just read from.
        """
        key = name.lower()
        schema = self.schema_of(key)
        decode = self.ops.decode
        plus = self.semiring.plus
        data: Dict[Row, Any] = {}
        try:
            rows = self.connection().execute(
                f"SELECT * FROM {table_name(key)}"
            )
        except sqlite3.Error as exc:
            raise StoreError(
                f"store {self.path!r} is missing the data table for "
                f"{name!r}: {exc}"
            ) from exc
        for row in rows:
            values = row[:-1]
            annotation = decode(row[-1])
            current = data.get(values)
            data[values] = (annotation if current is None
                            else plus(current, annotation))
        relation = KRelation._from_validated(schema, self.semiring, data)
        self._synced[key] = _TableFingerprint(relation, relation._version)
        self._remember_snapshot(relation)
        return relation

    # -- observability ------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Write counters for observability and tests."""
        return {
            "loads": self.loads,
            "appends": self.appends,
            "relations": len(self.relation_names()),
            "catalog_version": self._catalog_version,
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"v{self._catalog_version}"
        return f"<UADBStore {self.path!r} [{self.semiring.name}] {state}>"
