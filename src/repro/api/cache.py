"""An LRU cache for prepared query plans.

The cache is what makes the session API cheap on hot paths: the parse ->
rewrite -> optimize front half of the pipeline runs once per distinct
statement, and every later execution is a dictionary hit plus parameter
binding.  Entries are keyed by the statement text (plus compilation mode and
optimizer toggle) and carry the catalog version they were compiled against;
a lookup under a newer catalog version is treated as a miss and the stale
entry is dropped, so registering or creating a relation transparently
invalidates every plan compiled before it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional


class PlanCache:
    """A bounded mapping from statement keys to prepared plans.

    Not a general-purpose cache: :meth:`get` takes the *current* catalog
    version and discards entries compiled against an older catalog, counting
    them as invalidations.  ``max_size <= 0`` disables caching entirely
    (every lookup misses), which keeps the session code path uniform.
    """

    def __init__(self, max_size: int = 128) -> None:
        self.max_size = max_size
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable, catalog_version: int) -> Optional[Any]:
        """The cached entry for ``key``, or None on a miss/stale entry."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.catalog_version != catalog_version:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, entry: Any) -> None:
        """Insert ``entry``, evicting the least recently used one if full."""
        if self.max_size <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Counters for observability and tests."""
        return {
            "size": len(self._entries),
            "max_size": self.max_size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"<PlanCache {len(self._entries)}/{self.max_size} "
            f"hits={self.hits} misses={self.misses}>"
        )
