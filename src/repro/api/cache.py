"""An LRU cache for prepared query plans.

The cache is what makes the session API cheap on hot paths: the parse ->
rewrite -> optimize front half of the pipeline runs once per distinct
statement, and every later execution is a dictionary hit plus parameter
binding.  Entries are keyed by the statement text (plus compilation mode and
optimizer toggle) and carry the catalog version they were compiled against;
a lookup under a newer catalog version is treated as a miss and the stale
entry is dropped, so registering or creating a relation transparently
invalidates every plan compiled before it.

Entries additionally carry the *statistics version* they were optimized
under.  The cost-based optimizer bakes table statistics into the cached
plan (join order, chosen engine), so a bulk ``INSERT`` that shifts table
sizes must invalidate it the same way DDL does; lookups that pass a
``stats_version`` treat a mismatch as a miss.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple


class PlanCache:
    """A bounded mapping from statement keys to prepared plans.

    Not a general-purpose cache: :meth:`get` takes the *current* catalog
    version and discards entries compiled against an older catalog, counting
    them as invalidations.  ``max_size <= 0`` disables caching entirely
    (every lookup misses), which keeps the session code path uniform.
    """

    def __init__(self, max_size: int = 128) -> None:
        self.max_size = max_size
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable, catalog_version: int,
            stats_version: Optional[int] = None) -> Optional[Any]:
        """The cached entry for ``key``, or None on a miss/stale entry.

        ``stats_version`` is the caller's current statistics version;
        ``None`` skips the check (callers without a statistics layer).
        Entries lacking the attribute never stats-invalidate.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stale = entry.catalog_version != catalog_version
        if not stale and stats_version is not None:
            entry_stats = getattr(entry, "stats_version", None)
            stale = entry_stats is not None and entry_stats != stats_version
        if stale:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, entry: Any) -> None:
        """Insert ``entry``, evicting the least recently used one if full."""
        if self.max_size <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Counters for observability and tests."""
        return {
            "size": len(self._entries),
            "max_size": self.max_size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"<PlanCache {len(self._entries)}/{self.max_size} "
            f"hits={self.hits} misses={self.misses}>"
        )


class SharedPlanCache(PlanCache):
    """A :class:`PlanCache` safe to share across connections and threads.

    Every operation is guarded by an ``RLock``, and the cache additionally
    owns the *catalog version counter* for the connections sharing it: each
    registration / DDL on any sharing connection calls
    :meth:`bump_catalog_version`, so a plan compiled by one connection is
    transparently invalidated for all of them.  Two ways to get one:

    * :func:`shared_plan_cache` -- the process-wide registry, one cache per
      ``(catalog name, semiring)`` pair, used by
      ``repro.connect(..., shared_cache=True)``;
    * a private instance injected into every pooled connection by
      :class:`repro.api.pool.ConnectionPool` (``plan_cache=`` on
      ``Connection``), so one pool shares plans -- and invalidation --
      without leaking them to unrelated connections.
    """

    def __init__(self, max_size: int = 128) -> None:
        super().__init__(max_size)
        self._lock = threading.RLock()
        self._catalog_version = 0
        self._stats_version = 0

    @property
    def catalog_version(self) -> int:
        """The shared monotonic catalog version of the sharing connections."""
        with self._lock:
            return self._catalog_version

    def bump_catalog_version(self) -> int:
        """Advance the shared catalog version (any registration or DDL)."""
        with self._lock:
            self._catalog_version += 1
            return self._catalog_version

    @property
    def stats_version(self) -> int:
        """The shared monotonic statistics version of the sharing connections."""
        with self._lock:
            return self._stats_version

    def bump_stats_version(self) -> int:
        """Advance the shared statistics version (INSERTs, recollections)."""
        with self._lock:
            self._stats_version += 1
            return self._stats_version

    def get(self, key: Hashable, catalog_version: int,
            stats_version: Optional[int] = None) -> Optional[Any]:
        with self._lock:
            return super().get(key, catalog_version, stats_version)

    def put(self, key: Hashable, entry: Any) -> None:
        with self._lock:
            super().put(key, entry)

    def clear(self) -> None:
        with self._lock:
            super().clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return super().stats()

    def __len__(self) -> int:
        with self._lock:
            return super().__len__()

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return super().__contains__(key)


#: Registry of shared caches, keyed by (catalog name, semiring name).
_SHARED_CACHES: Dict[Tuple[str, str], SharedPlanCache] = {}
_SHARED_CACHES_LOCK = threading.Lock()


def shared_plan_cache(catalog_name: str, semiring_name: str,
                      max_size: int = 128) -> SharedPlanCache:
    """The process-wide :class:`SharedPlanCache` for one logical catalog.

    Connections opened with the same ``name`` and semiring share one cache
    (and one catalog version counter), so a statement compiled on any of them
    is a warm hit on all of them.  The first caller fixes ``max_size``.
    """
    key = (catalog_name.lower(), semiring_name)
    with _SHARED_CACHES_LOCK:
        cache = _SHARED_CACHES.get(key)
        if cache is None:
            cache = SharedPlanCache(max_size)
            _SHARED_CACHES[key] = cache
        return cache
