"""The public session API: ``repro.connect()`` and friends.

A DB-API-2.0-flavored front door to UA-DBs (see :mod:`repro.api.session`):

* :func:`connect` opens a :class:`Connection`,
* connections register uncertain sources (or ``CREATE TABLE`` / ``INSERT``
  through SQL) and hand out :class:`Cursor` objects,
* statements support ``?`` / ``:name`` parameter placeholders,
* every compiled plan lands in an LRU :class:`PlanCache`, so repeated and
  prepared statements skip the parse -> rewrite -> optimize front half of
  the pipeline entirely.
"""

from repro.api.cache import PlanCache, SharedPlanCache, shared_plan_cache
from repro.api.session import (
    Connection,
    Cursor,
    PreparedPlan,
    PreparedStatement,
    SessionError,
    UAQueryResult,
    connect,
)

__all__ = [
    "Connection",
    "Cursor",
    "PlanCache",
    "PreparedPlan",
    "PreparedStatement",
    "SessionError",
    "SharedPlanCache",
    "UAQueryResult",
    "connect",
    "shared_plan_cache",
]
