"""The public session API: ``repro.connect()`` and friends.

A DB-API-2.0-flavored front door to UA-DBs (see :mod:`repro.api.session`):

* :func:`connect` opens a :class:`Connection`,
* connections register uncertain sources (or ``CREATE TABLE`` / ``INSERT``
  through SQL) and hand out :class:`Cursor` objects,
* statements support ``?`` / ``:name`` parameter placeholders,
* every compiled plan lands in an LRU :class:`PlanCache`, so repeated and
  prepared statements skip the parse -> rewrite -> optimize front half of
  the pipeline entirely,
* ``repro.connect("file.uadb")`` backs the session with a persistent
  on-disk :class:`UADBStore` (WAL-mode SQLite; data survives the process),
* :class:`ConnectionPool` serves one shared store/catalog/plan-cache to
  many threads through bounded, thread-safe pooled connections.
"""

from repro.api.cache import PlanCache, SharedPlanCache, shared_plan_cache
from repro.api.store import StoreError, UADBStore, UnstorableRelationError
from repro.api.session import (
    AttributeQueryResult,
    Connection,
    Cursor,
    PreparedPlan,
    PreparedStatement,
    SessionError,
    UAQueryResult,
    connect,
)
from repro.api.pool import (
    ConnectionPool,
    PooledConnection,
    PoolError,
    PoolTimeout,
)

__all__ = [
    "AttributeQueryResult",
    "Connection",
    "ConnectionPool",
    "Cursor",
    "PlanCache",
    "PooledConnection",
    "PoolError",
    "PoolTimeout",
    "PreparedPlan",
    "PreparedStatement",
    "SessionError",
    "SharedPlanCache",
    "StoreError",
    "UADBStore",
    "UAQueryResult",
    "UnstorableRelationError",
    "connect",
    "shared_plan_cache",
]
