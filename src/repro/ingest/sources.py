"""Streaming row sources for bulk ingest: CSV, NDJSON and Parquet.

A :class:`RowSource` yields **records** -- each either a sequence of values
(positional) or a mapping from column name to value -- without materializing
the whole input: the loader (:mod:`repro.ingest.loader`) consumes them in
bounded chunks, so a multi-gigabyte file streams through a fixed memory
footprint.

Three file formats ship in the box:

* :class:`CSVSource` -- delimited text via :mod:`csv`, with an optional
  header row and scalar coercion (ints, floats, configurable null tokens),
* :class:`NDJSONSource` -- newline-delimited JSON from a path, an open
  file, or any iterable of lines (the HTTP ``POST /load`` endpoint feeds
  request-body lines straight in),
* :class:`ParquetSource` -- column-major Parquet via ``pyarrow``, **gated**:
  constructing one without pyarrow installed raises :class:`IngestError`
  (the rest of the package has no third-party dependencies).

:func:`open_source` picks the right source for a path by extension, passes
an existing source through, and wraps any other iterable as a
:class:`RowsSource`.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

__all__ = [
    "CSVSource",
    "IngestError",
    "NDJSONSource",
    "ParquetSource",
    "Record",
    "RowSource",
    "RowsSource",
    "open_source",
]

#: One input record: positional values or a column-name mapping.
Record = Union[Sequence[Any], Mapping[str, Any]]

#: CSV cell texts treated as SQL NULL (case-insensitive).
DEFAULT_NULL_TOKENS = ("", "null", "na", "n/a", "\\n")


class IngestError(RuntimeError):
    """A bulk-load input cannot be read or does not fit the target table."""


class RowSource:
    """Base class for streaming record producers.

    Subclasses implement :meth:`records`; iteration delegates to it.  The
    optional :attr:`columns` hint names the record columns in order -- the
    loader uses it for schema inference and for resolving positional
    records when the target table does not exist yet.
    """

    #: Short format tag used in reports (``"csv"``, ``"ndjson"``, ...).
    format_name = "rows"

    #: Column names, in order, when the source knows them (else None).
    columns: Optional[List[str]] = None

    def records(self) -> Iterator[Record]:
        """Yield the input records one by one (streaming)."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Record]:
        return self.records()


class RowsSource(RowSource):
    """An in-memory iterable of records, wrapped as a :class:`RowSource`.

    The adapter :func:`open_source` applies to plain lists/generators of
    rows, so ``Connection.load`` accepts them directly.
    """

    def __init__(self, rows: Iterable[Record],
                 columns: Optional[Sequence[str]] = None) -> None:
        self._rows = rows
        self.columns = list(columns) if columns is not None else None

    def records(self) -> Iterator[Record]:
        return iter(self._rows)


def _coerce_csv_value(text: str, null_tokens: frozenset) -> Any:
    """Interpret one CSV cell: null token, int, float, or verbatim string."""
    if text.lower() in null_tokens:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


class CSVSource(RowSource):
    """Stream records from a CSV file.

    ``header=True`` (the default) reads column names from the first row;
    pass ``columns`` to name them explicitly (the header row, if any, is
    then validated against it only by count).  Cells are coerced to int,
    then float, else kept as strings; cells matching a ``null_tokens``
    entry (case-insensitive) become None -- the loader's uncertainty
    policies key on those missing values.
    """

    format_name = "csv"

    def __init__(self, path: "str | os.PathLike", *, delimiter: str = ",",
                 header: bool = True, columns: Optional[Sequence[str]] = None,
                 null_tokens: Sequence[str] = DEFAULT_NULL_TOKENS) -> None:
        self.path = os.fspath(path)
        self.delimiter = delimiter
        self.header = header
        self.columns = list(columns) if columns is not None else None
        self._null_tokens = frozenset(token.lower() for token in null_tokens)

    def records(self) -> Iterator[Record]:
        try:
            handle = open(self.path, "r", newline="", encoding="utf-8")
        except OSError as exc:
            raise IngestError(f"cannot open CSV file {self.path!r}: {exc}") from exc
        with handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            if self.header:
                try:
                    names = next(reader)
                except StopIteration:
                    return
                if self.columns is None:
                    self.columns = [name.strip() for name in names]
            for line_number, cells in enumerate(reader, start=2 if self.header else 1):
                if not cells:
                    continue
                yield tuple(_coerce_csv_value(cell, self._null_tokens)
                            for cell in cells)


class NDJSONSource(RowSource):
    """Stream records from newline-delimited JSON.

    ``source`` may be a file path, an open text/binary file, or any
    iterable of lines (``str`` or ``bytes``) -- the HTTP server feeds the
    split request body of ``POST /load`` in directly.  Each non-empty line
    must decode to a JSON array (positional record) or object (column-name
    mapping); anything else raises :class:`IngestError` naming the line.
    """

    format_name = "ndjson"

    def __init__(self, source: "str | os.PathLike | Iterable[str | bytes]",
                 columns: Optional[Sequence[str]] = None) -> None:
        self._source = source
        self.columns = list(columns) if columns is not None else None

    def _lines(self) -> Iterator["str | bytes"]:
        source = self._source
        if isinstance(source, (str, os.PathLike)):
            try:
                handle = open(os.fspath(source), "r", encoding="utf-8")
            except OSError as exc:
                raise IngestError(
                    f"cannot open NDJSON file {os.fspath(source)!r}: {exc}"
                ) from exc
            with handle:
                yield from handle
        else:
            yield from source

    def records(self) -> Iterator[Record]:
        for line_number, line in enumerate(self._lines(), start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except ValueError as exc:
                raise IngestError(
                    f"NDJSON line {line_number} is not valid JSON: {exc}"
                ) from exc
            if isinstance(record, dict):
                yield record
            elif isinstance(record, list):
                yield tuple(record)
            else:
                raise IngestError(
                    f"NDJSON line {line_number} must be a JSON array or "
                    f"object, got {type(record).__name__}"
                )


class ParquetSource(RowSource):
    """Stream records from a Parquet file (requires ``pyarrow``).

    The ingest package itself is stdlib-only; constructing a
    :class:`ParquetSource` in an environment without pyarrow raises a
    typed :class:`IngestError` telling the caller what to install, instead
    of an ImportError from deep inside a load.
    """

    format_name = "parquet"

    def __init__(self, path: "str | os.PathLike",
                 batch_size: int = 65536) -> None:
        try:
            import pyarrow.parquet  # noqa: F401 - availability probe
        except ImportError as exc:
            raise IngestError(
                "Parquet ingest requires the optional 'pyarrow' package, "
                "which is not installed; load CSV or NDJSON instead"
            ) from exc
        self.path = os.fspath(path)
        self.batch_size = batch_size

    def records(self) -> Iterator[Record]:
        import pyarrow.parquet as pq

        try:
            parquet_file = pq.ParquetFile(self.path)
        except Exception as exc:  # pyarrow raises its own hierarchy
            raise IngestError(
                f"cannot open Parquet file {self.path!r}: {exc}") from exc
        self.columns = [field.name for field in parquet_file.schema_arrow]
        for batch in parquet_file.iter_batches(batch_size=self.batch_size):
            columns = [column.to_pylist() for column in batch.columns]
            for values in zip(*columns):
                yield values


#: File-extension to source-class dispatch used by :func:`open_source`.
_EXTENSION_SOURCES: Dict[str, type] = {
    "csv": CSVSource, "tsv": CSVSource,
    "ndjson": NDJSONSource, "jsonl": NDJSONSource,
    "parquet": ParquetSource,
}


def open_source(source: object, *, format: Optional[str] = None,
                columns: Optional[Sequence[str]] = None,
                **options: Any) -> RowSource:
    """Resolve ``source`` into a :class:`RowSource`.

    An existing :class:`RowSource` passes through unchanged.  A path picks
    its format from ``format`` (``"csv"`` / ``"ndjson"`` / ``"parquet"``)
    or, when omitted, the file extension (``.tsv`` implies a tab
    delimiter).  Any other iterable -- a list of tuples, a generator of
    dicts -- wraps as a :class:`RowsSource`.  Extra keyword ``options``
    pass through to the source constructor (``delimiter``, ``header``,
    ``null_tokens``, ...).
    """
    if isinstance(source, RowSource):
        return source
    if isinstance(source, (str, os.PathLike)):
        path = os.fspath(source)
        name = (format or path.rpartition(".")[2]).lower()
        source_class = _EXTENSION_SOURCES.get(name)
        if source_class is None:
            raise IngestError(
                f"cannot infer a loader for {path!r}; pass format= as one "
                f"of: {', '.join(sorted(set(_EXTENSION_SOURCES)))}"
            )
        if source_class is CSVSource:
            if name == "tsv":
                options.setdefault("delimiter", "\t")
            return CSVSource(path, columns=columns, **options)
        if source_class is NDJSONSource:
            return NDJSONSource(path, columns=columns)
        return ParquetSource(path, **options)
    if isinstance(source, Iterable):
        return RowsSource(source, columns=columns)
    raise IngestError(
        f"unsupported load source {type(source).__name__}; pass a path, a "
        f"RowSource, or an iterable of rows"
    )
