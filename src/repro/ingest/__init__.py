"""High-throughput bulk ingest for UA-databases.

This package is the ``COPY`` path of the reproduction: it streams rows
from CSV/NDJSON (optionally Parquet) sources into the WAL-backed store in
**chunked, batched transactions** -- one store transaction, one
incremental statistics fold, and one version bump per chunk, never per
row -- with the paper's Enc encoding applied incrementally and
uncertainty attachable at load time through the existing
imputation/cleaning workloads.

Entry points, outermost first:

* ``repro.server.client.Client.load`` -- chunked uploads to a fleet's
  ``POST /load`` endpoint, auto-sized to the server's body limit,
* :meth:`repro.api.session.Connection.load` -- the embedded API,
* :func:`load` / :class:`BulkLoader` -- the engine underneath both,
* :mod:`repro.ingest.sources` -- the streaming format readers.
"""

from repro.ingest.loader import BulkLoader, ChunkReport, LoadReport, load
from repro.ingest.sources import (
    CSVSource,
    IngestError,
    NDJSONSource,
    ParquetSource,
    RowSource,
    RowsSource,
    open_source,
)

__all__ = [
    "BulkLoader",
    "CSVSource",
    "ChunkReport",
    "IngestError",
    "LoadReport",
    "NDJSONSource",
    "ParquetSource",
    "RowSource",
    "RowsSource",
    "load",
    "open_source",
]
