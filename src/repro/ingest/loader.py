"""The bulk loader: chunked, batched writes with uncertainty at load time.

:class:`BulkLoader` streams records from a :class:`~repro.ingest.sources.RowSource`
into a :class:`~repro.api.session.Connection` in fixed-size chunks.  Each
chunk goes through the connection's batched write primitive, so the cost
profile per chunk -- regardless of how many rows it holds -- is exactly:

* **one** WAL store transaction (a single ``executemany`` + commit),
* **one** incremental statistics fold,
* **one** stats-version bump (plus one catalog bump if the load created
  the table).

That per-chunk (never per-row) bookkeeping is what makes bulk ingest
orders of magnitude faster than row-at-a-time INSERTs, and is the same
trick the MayBMS lineage uses: encode annotations into plain relational
columns once, at load time.

Uncertainty attaches during the load via the ``uncertainty`` policy:

* ``None`` -- every row is certain (the default),
* ``"flag"`` -- rows containing a missing value (None) load as *uncertain*
  tuples: their Enc fragment carries ``C = 0`` and the UA-annotation is
  ``uncertain_annotation(one)``,
* ``"impute"`` -- missing values are repaired with the primary imputation
  from :func:`repro.workloads.imputation.impute_alternatives` (fitted per
  chunk, so the load still streams) and the repaired rows are flagged
  uncertain,
* a callable ``policy(rows, schema) -> (rows, flags)`` for custom cleaning.

Use via :meth:`Connection.load` or the module-level :func:`load`.
"""

from __future__ import annotations

import gc
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.db.schema import Attribute, DataType, RelationSchema
from repro.ingest.sources import IngestError, Record, RowSource, open_source

__all__ = ["BulkLoader", "ChunkReport", "LoadReport", "load"]

#: Default rows per chunk (per WAL transaction / stats fold / version bump).
DEFAULT_CHUNK_SIZE = 50_000

#: An uncertainty policy: ``(rows, schema) -> (rows, uncertain_flags)``.
UncertaintyPolicy = Callable[
    [List[Tuple[Any, ...]], RelationSchema],
    Tuple[List[Tuple[Any, ...]], List[bool]],
]


@dataclass
class ChunkReport:
    """Outcome of one ingested chunk (one WAL transaction)."""

    #: Zero-based chunk index within the load.
    index: int
    #: Rows committed by this chunk.
    rows: int
    #: Rows flagged uncertain by the load's uncertainty policy.
    uncertain_rows: int
    #: Wall-clock seconds spent binding, encoding and committing the chunk.
    seconds: float

    def to_dict(self) -> dict:
        """JSON-friendly form (used by ``POST /load`` responses)."""
        return {"index": self.index, "rows": self.rows,
                "uncertain_rows": self.uncertain_rows,
                "seconds": round(self.seconds, 6)}


@dataclass
class LoadReport:
    """Outcome of a whole bulk load."""

    #: Target table name.
    table: str
    #: Source format tag (``"csv"``, ``"ndjson"``, ``"parquet"``, ``"rows"``).
    format: str
    #: Total rows committed.
    rows: int = 0
    #: Rows loaded as uncertain tuples.
    uncertain_rows: int = 0
    #: Chunks committed (= WAL transactions = stats folds = version bumps).
    chunks: int = 0
    #: Total wall-clock seconds for the load.
    seconds: float = 0.0
    #: True when the load created the table (schema was inferred).
    created: bool = False
    #: Per-chunk breakdown, in commit order.
    chunk_reports: List[ChunkReport] = field(default_factory=list)

    @property
    def rows_per_second(self) -> float:
        """Sustained ingest rate over the whole load."""
        return self.rows / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly form (used by ``POST /load`` responses)."""
        return {
            "table": self.table,
            "format": self.format,
            "rows": self.rows,
            "uncertain_rows": self.uncertain_rows,
            "chunks": self.chunks,
            "seconds": round(self.seconds, 6),
            "rows_per_second": round(self.rows_per_second, 3),
            "created": self.created,
            "chunk_reports": [chunk.to_dict() for chunk in self.chunk_reports],
        }


def _infer_type(values: Sequence[Any]) -> DataType:
    """The narrowest :class:`DataType` accepting every non-null value."""
    candidates = [DataType.BOOLEAN, DataType.INTEGER, DataType.FLOAT,
                  DataType.STRING]
    seen_value = False
    for value in values:
        if value is None:
            continue
        seen_value = True
        candidates = [dt for dt in candidates if dt.accepts(value)]
        if not candidates:
            return DataType.ANY
    if not seen_value:
        return DataType.ANY
    # INTEGER values are also valid FLOATs; prefer the narrower type.
    return candidates[0]


def _policy_certain(rows: List[Tuple[Any, ...]],
                    schema: RelationSchema) -> Tuple[List[Tuple[Any, ...]], List[bool]]:
    return rows, [False] * len(rows)


def _policy_flag(rows: List[Tuple[Any, ...]],
                 schema: RelationSchema) -> Tuple[List[Tuple[Any, ...]], List[bool]]:
    return rows, [any(value is None for value in row) for row in rows]


def _policy_impute(rows: List[Tuple[Any, ...]],
                   schema: RelationSchema) -> Tuple[List[Tuple[Any, ...]], List[bool]]:
    from repro.workloads.imputation import impute_alternatives

    flags = [any(value is None for value in row) for row in rows]
    if not any(flags):
        return rows, flags
    alternatives = impute_alternatives(rows, schema, max_alternatives=1)
    repaired = [alts[0] if flag else row
                for row, alts, flag in zip(rows, alternatives, flags)]
    return repaired, flags


_NAMED_POLICIES = {
    None: _policy_certain,
    "certain": _policy_certain,
    "flag": _policy_flag,
    "impute": _policy_impute,
}


def resolve_uncertainty(policy: object) -> UncertaintyPolicy:
    """Resolve an ``uncertainty=`` argument into a policy callable.

    Accepts ``None`` / ``"certain"`` / ``"flag"`` / ``"impute"`` or a
    callable ``(rows, schema) -> (rows, flags)``; anything else raises
    :class:`IngestError` naming the valid options.
    """
    if callable(policy):
        return policy  # type: ignore[return-value]
    try:
        return _NAMED_POLICIES[policy]  # type: ignore[index]
    except (KeyError, TypeError):
        raise IngestError(
            f"unknown uncertainty policy {policy!r}; use None, 'certain', "
            f"'flag', 'impute', or a callable(rows, schema) -> (rows, flags)"
        ) from None


class BulkLoader:
    """Streams a :class:`RowSource` into a connection, one chunk at a time.

    ``chunk_size`` rows are buffered, bound to the target schema, run
    through the uncertainty policy, and committed as **one** batched write
    (one WAL transaction, one stats fold, one version bump).  When the
    table does not exist and ``create=True``, the first chunk's values
    drive schema inference and the table is registered before that chunk
    commits.

    ``on_chunk``, when given, is called with each :class:`ChunkReport`
    right after its commit -- the HTTP ``POST /load`` handler uses it to
    account progress, CLI tools can use it for progress bars.
    """

    def __init__(self, connection, table: str, *,
                 chunk_size: int = DEFAULT_CHUNK_SIZE, create: bool = True,
                 columns: Optional[Sequence[str]] = None,
                 uncertainty: object = None,
                 on_chunk: Optional[Callable[[ChunkReport], None]] = None) -> None:
        if chunk_size < 1:
            raise IngestError(f"chunk_size must be >= 1, got {chunk_size}")
        self.connection = connection
        self.table = table
        self.chunk_size = chunk_size
        self.create = create
        self.columns = list(columns) if columns is not None else None
        self.policy = resolve_uncertainty(uncertainty)
        self.on_chunk = on_chunk

    # -- schema resolution --------------------------------------------------------

    def _existing_schema(self) -> Optional[RelationSchema]:
        if self.table in self.connection.uadb.database:
            return self.connection.uadb.relation(self.table).schema
        return None

    def _infer_schema(self, first_chunk: List[Record],
                      source: RowSource) -> RelationSchema:
        """Build a schema for a new table from the first chunk's values."""
        names = self.columns or source.columns
        if names is None:
            for record in first_chunk:
                if isinstance(record, Mapping):
                    names = list(record.keys())
                    break
        if names is None:
            width = max(len(record) for record in first_chunk)
            names = [f"c{index}" for index in range(width)]
        rows = [self._bind_record(record, names) for record in first_chunk]
        attributes = [
            Attribute(name, _infer_type([row[index] for row in rows]))
            for index, name in enumerate(names)
        ]
        return RelationSchema(self.table, attributes)

    @staticmethod
    def _bind_record(record: Record, names: Sequence[str]) -> Tuple[Any, ...]:
        """Arrange one record's values in ``names`` order (pre-inference)."""
        if isinstance(record, Mapping):
            lowered = {str(key).lower(): value for key, value in record.items()}
            return tuple(lowered.get(name.lower()) for name in names)
        values = tuple(record)
        if len(values) < len(names):
            values += (None,) * (len(names) - len(values))
        return values[:len(names)]

    def _make_binder(self, schema: RelationSchema,
                     source: RowSource) -> Callable[[Record], Tuple[Any, ...]]:
        """A record -> validated-row function for the resolved ``schema``."""
        attribute_names = [attr.name.lower() for attr in schema.attributes]
        input_columns = self.columns or source.columns
        positions: Optional[List[int]] = None
        if input_columns is not None:
            lowered = [name.lower() for name in input_columns]
            if lowered != attribute_names:
                positions = [schema.index_of(name) for name in input_columns]
        arity = schema.arity
        known = set(attribute_names)

        def bind(record: Record) -> Tuple[Any, ...]:
            if isinstance(record, Mapping):
                values: List[Any] = [None] * arity
                for key, value in record.items():
                    lowered_key = str(key).lower()
                    if lowered_key not in known:
                        raise IngestError(
                            f"record column {key!r} does not exist in "
                            f"table {schema.name!r}")
                    values[schema.index_of(lowered_key)] = value
                return schema.validate_row(values)
            if positions is not None:
                values = [None] * arity
                for position, value in zip(positions, record):
                    values[position] = value
                return schema.validate_row(values)
            return schema.validate_row(tuple(record))

        return bind

    # -- the load -----------------------------------------------------------------

    def run(self, source: RowSource) -> LoadReport:
        """Stream ``source`` into the table; returns the :class:`LoadReport`."""
        report = LoadReport(table=self.table, format=source.format_name)
        started = time.perf_counter()
        records = iter(source)
        first_chunk = list(itertools.islice(records, self.chunk_size))
        schema = self._existing_schema()
        if schema is None:
            if not self.create:
                raise IngestError(
                    f"table {self.table!r} does not exist and create=False")
            if not first_chunk:
                raise IngestError(
                    f"cannot infer a schema for new table {self.table!r} "
                    f"from an empty source")
            schema = self._infer_schema(first_chunk, source)
            from repro.core.uadb import UARelation

            self.connection.register_ua_relation(
                UARelation(schema, self.connection.uadb.ua_semiring))
            report.created = True
        bind = self._make_binder(schema, source)
        chunk = first_chunk
        # Millions of short-lived tuples per chunk make the cyclic collector
        # scan the (growing, acyclic) table over and over; pausing it for
        # the duration of the load is the classic bulk-load lever.  Refcount
        # collection still reclaims the per-chunk garbage immediately.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run_chunks(report, schema, records, chunk, bind)
        finally:
            if gc_was_enabled:
                gc.enable()
        report.seconds = time.perf_counter() - started
        return report

    def _run_chunks(self, report: LoadReport, schema: RelationSchema,
                    records, chunk, bind) -> None:
        """The chunk pump: bind, apply the policy, commit, account."""
        while chunk:
            chunk_started = time.perf_counter()
            try:
                rows = [bind(record) for record in chunk]
            except IngestError:
                raise
            rows, flags = self.policy(rows, schema)
            if len(flags) != len(rows):
                raise IngestError(
                    "uncertainty policy returned mismatched rows/flags "
                    f"({len(rows)} rows, {len(flags)} flags)")
            self.connection._apply_insert(
                self.table, rows,
                uncertain=flags if any(flags) else None)
            uncertain = sum(1 for flag in flags if flag)
            chunk_report = ChunkReport(
                index=report.chunks, rows=len(rows), uncertain_rows=uncertain,
                seconds=time.perf_counter() - chunk_started)
            report.chunks += 1
            report.rows += len(rows)
            report.uncertain_rows += uncertain
            report.chunk_reports.append(chunk_report)
            if self.on_chunk is not None:
                self.on_chunk(chunk_report)
            chunk = list(itertools.islice(records, self.chunk_size))


def load(connection, table: str, source: object, *,
         format: Optional[str] = None, chunk_size: int = DEFAULT_CHUNK_SIZE,
         create: bool = True, columns: Optional[Sequence[str]] = None,
         uncertainty: object = None,
         on_chunk: Optional[Callable[[ChunkReport], None]] = None,
         **source_options: Any) -> LoadReport:
    """Bulk-load ``source`` into ``table`` through ``connection``.

    ``source`` is anything :func:`repro.ingest.sources.open_source`
    understands: a CSV/NDJSON/Parquet path, a prepared
    :class:`~repro.ingest.sources.RowSource`, or an iterable of rows.
    See :class:`BulkLoader` for the chunking and uncertainty semantics.
    This is the engine behind :meth:`repro.api.session.Connection.load`.
    """
    resolved = open_source(source, format=format, columns=columns,
                           **source_options)
    loader = BulkLoader(connection, table, chunk_size=chunk_size,
                        create=create, columns=columns,
                        uncertainty=uncertainty, on_chunk=on_chunk)
    return loader.run(resolved)
