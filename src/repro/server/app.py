"""The asyncio HTTP/JSON query server fronting a :class:`ConnectionPool`.

:class:`UADBServer` binds a socket with :func:`asyncio.start_server` and
serves five endpoints over the pool:

* ``POST /query``    -- parameterized SQL ``SELECT``; returns UA-labeled rows
  (best-guess values plus a per-row certain flag), optionally streamed as
  NDJSON for large results; ``mode="attribute"`` answers with AU-DB range
  fragments whose ``bounds`` carry per-cell ``[lower, best, upper]``
  triples and ``[m_lb, m_bg, m_ub]`` multiplicities,
* ``POST /execute``  -- DDL/DML (``CREATE TABLE`` / ``INSERT``); serialized
  through the pool's writer lock,
* ``POST /load``     -- bulk ingest: an NDJSON body (header line + one
  record per line) committed in batched chunks under the cross-process
  write lock; see :mod:`repro.ingest`,
* ``GET /tables``    -- catalog metadata,
* ``GET /healthz``   -- liveness plus configuration,
* ``GET /metrics``   -- request counts, latency percentiles, plan-cache hit
  rate and pool saturation.

The event loop never runs a query itself: statements are dispatched to a
worker-thread executor (queries and the GIL-bound engines block threads, not
the loop), sized to the pool so a request can always check a connection out.
Reads run concurrently under the pool's shared lock; writes serialize behind
its writer lock.  Typed exceptions from every layer -- SQL syntax and
translation errors, :class:`~repro.db.params.ParameterError`,
:class:`~repro.db.engine.base.UnknownEngineError`,
:class:`~repro.api.store.StoreError`, pool exhaustion -- map to structured
JSON error bodies ``{"error": {"code": ..., "message": ...}}`` with the
matching HTTP status.

Run one from the command line (``python -m repro.server --store app.uadb``),
inline in an asyncio program (:func:`serve`), or on a background thread for
tests and notebooks (:class:`ServerThread`).
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.api.pool import ConnectionPool, PoolError, PoolTimeout
from repro.api.session import SessionError
from repro.api.store import StoreError, UnstorableRelationError
from repro.db.engine import dispatch_counts, get_engine, parallel
from repro.db.engine.base import EvaluationError, UnknownEngineError
from repro.db.params import ParameterError
from repro.db.schema import SchemaError
from repro.db.sql.lexer import SQLSyntaxError
from repro.db.sql.translator import TranslationError
from repro.ingest.sources import IngestError
from repro.server import http
from repro.server.fleet.auth import SecurityPolicy
from repro.server.fleet.cache import ResultCache
from repro.server.fleet.coordination import StoreCoordinator, WriteLockTimeout
from repro.server.fleet.metrics_exchange import MetricsExchange, aggregate_fleet
from repro.server.http import HTTPError, Request, json_bytes
from repro.server.metrics import ServerMetrics

__all__ = ["UADBServer", "ServerThread", "serve"]

logger = logging.getLogger(__name__)

#: Typed exception -> (HTTP status, error code, retryable), checked in order
#: (subclasses first, so e.g. a PoolTimeout is reported as pool_timeout, not
#: pool_error).  ``retryable`` marks transient conditions -- lock contention,
#: pool saturation -- where re-sending the identical request can succeed.
ERROR_MAP: Tuple[Tuple[type, int, str, bool], ...] = (
    (HTTPError, 0, "", False),  # handled specially; carries its own status
    (SQLSyntaxError, 400, "parse_error", False),
    (TranslationError, 400, "translation_error", False),
    (ParameterError, 400, "parameter_error", False),
    (SchemaError, 400, "schema_error", False),
    (UnknownEngineError, 400, "unknown_engine", False),
    (UnstorableRelationError, 400, "unstorable_relation", False),
    (IngestError, 400, "ingest_error", False),
    (WriteLockTimeout, 503, "write_lock_timeout", True),
    (StoreError, 500, "store_error", False),
    (PoolTimeout, 503, "pool_timeout", True),
    (PoolError, 503, "pool_error", True),
    (SessionError, 400, "session_error", False),
    (EvaluationError, 500, "evaluation_error", False),
)

#: Rows are flushed to a streaming client once this many body bytes buffer up.
STREAM_FLUSH_BYTES = 32 * 1024

#: How often a fleet worker publishes its metrics snapshot for siblings.
METRICS_PUBLISH_INTERVAL = 1.0


def _map_exception(error: BaseException) -> HTTPError:
    """Translate a typed repro exception into the HTTPError to report."""
    if isinstance(error, HTTPError):
        return error
    for exc_type, status, code, retryable in ERROR_MAP[1:]:
        if isinstance(error, exc_type):
            return HTTPError(status, code, str(error), retryable=retryable)
    logger.exception("unhandled error while serving a request", exc_info=error)
    return HTTPError(500, "internal_error",
                     f"{type(error).__name__}: {error}")


class UADBServer:
    """An asyncio HTTP server answering UA-DB queries from a connection pool.

    Construct it over an existing :class:`~repro.api.pool.ConnectionPool`
    (``pool=``; the caller keeps ownership and closes it), or let the server
    build -- and on :meth:`stop` gracefully drain and close -- its own pool
    from ``store`` / ``semiring`` / ``engine`` / ``optimize`` /
    ``max_connections`` / ``cache_size``, which follow
    :class:`~repro.api.pool.ConnectionPool` semantics.  ``port=0`` binds an
    ephemeral port; read the bound address from :attr:`address` after
    :meth:`start`.

    ``checkout_timeout`` bounds how long a request waits for a pooled
    connection before answering ``503 pool_timeout``; ``drain_timeout``
    bounds how long :meth:`stop` waits for in-flight requests;
    ``idle_timeout`` drops connections that fail to deliver a complete
    request in time (keep-alive idling and slow-trickle bodies alike;
    None disables).

    Fleet-tier options (all default off, leaving the single-process
    behaviour untouched): ``reuse_port`` lets sibling worker processes bind
    the same address with ``SO_REUSEPORT``; ``policy`` enables bearer-token
    auth and per-client rate limits (``/healthz`` stays exempt so liveness
    probes never need credentials); ``result_cache`` memoizes rendered
    ``POST /query`` bodies keyed on the catalog/statistics versions;
    ``metrics_exchange`` publishes this worker's counters for -- and folds
    siblings' into -- ``GET /metrics``.  A store-backed server always gets a
    :class:`~repro.server.fleet.coordination.StoreCoordinator`, so writes
    from other processes over the same ``.uadb`` file become visible within
    one request even without the rest of the fleet machinery.
    """

    def __init__(self, pool: Optional[ConnectionPool] = None, *,
                 host: str = "127.0.0.1", port: int = 8080,
                 store: Optional[object] = None, semiring=None,
                 name: str = "uadb", engine: Optional[object] = None,
                 optimize: Optional[bool] = None, cache_size: int = 256,
                 max_connections: int = 8,
                 checkout_timeout: float = 30.0,
                 drain_timeout: float = 5.0,
                 idle_timeout: Optional[float] = 60.0,
                 max_body_bytes: int = http.DEFAULT_MAX_BODY_BYTES,
                 reuse_port: bool = False,
                 policy: Optional[SecurityPolicy] = None,
                 result_cache: Optional[ResultCache] = None,
                 metrics_exchange: Optional[MetricsExchange] = None) -> None:
        if pool is None:
            pool = ConnectionPool(store=store, semiring=semiring, name=name,
                                  engine=engine, optimize=optimize,
                                  cache_size=cache_size,
                                  max_connections=max_connections)
            self._owns_pool = True
        else:
            self._owns_pool = False
        self.pool = pool
        self.host = host
        self.port = port
        self.checkout_timeout = checkout_timeout
        self.drain_timeout = drain_timeout
        self.idle_timeout = idle_timeout
        self.max_body_bytes = max_body_bytes
        self.reuse_port = reuse_port
        self.policy = policy
        self.result_cache = result_cache
        self.metrics_exchange = metrics_exchange
        self.coordinator = StoreCoordinator(pool,
                                            lock_timeout=checkout_timeout)
        self.metrics = ServerMetrics()
        self._draining = False
        self._publish_task: Optional[asyncio.Task] = None
        self._executor = ThreadPoolExecutor(
            max_workers=pool.max_connections, thread_name_prefix="uadb-query")
        self._server: Optional[asyncio.AbstractServer] = None
        self._clients: set = set()
        self._busy: set = set()
        self._routes = {
            "/query": ("POST", self._handle_query),
            "/execute": ("POST", self._handle_execute),
            "/load": ("POST", self._handle_load),
            "/tables": ("GET", self._handle_tables),
            "/healthz": ("GET", self._handle_healthz),
            "/metrics": ("GET", self._handle_metrics),
        }

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket; :attr:`address` is valid afterwards."""
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port,
            reuse_port=self.reuse_port or None)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_exchange is not None:
            self._publish_task = asyncio.get_running_loop().create_task(
                self._publish_metrics_loop())

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` the server is (or will be) bound to."""
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        """Accept connections until cancelled (call after :meth:`start`)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight requests.

        Idle keep-alive connections are dropped immediately; connections in
        the middle of a request get up to ``drain_timeout`` seconds to
        finish.  The worker executor is then shut down and, if the server
        created its own pool, the pool is drained and closed too.

        While draining, any *new* request on a surviving keep-alive
        connection answers ``503 draining`` with ``retryable: true`` --
        fleet clients re-send it, and the router or kernel steers the retry
        to a live worker.
        """
        self._draining = True
        if self._publish_task is not None:
            self._publish_task.cancel()
            try:
                await self._publish_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._publish_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._clients - self._busy):
            task.cancel()
        busy = list(self._busy)
        if busy:
            await asyncio.wait(busy, timeout=self.drain_timeout)
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*list(self._clients), return_exceptions=True)
        # Cancelling a task does not stop an already-running worker thread,
        # so don't wait for the executor here -- a wedged query would hold
        # stop() (and the event loop) far past drain_timeout.
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.metrics_exchange is not None:
            try:  # final snapshot: siblings see this worker's last counters
                self.metrics_exchange.publish(self.metrics_payload())
            except Exception:  # noqa: BLE001 - shutdown is best-effort
                logger.debug("final metrics publish failed", exc_info=True)
        if self._owns_pool and not self.pool.closed:
            def close_pool() -> None:
                try:
                    self.pool.close(timeout=self.drain_timeout)
                except PoolTimeout:
                    logger.warning(
                        "pool still busy after %.1fs; forcing close with "
                        "requests in flight", self.drain_timeout)
                    self.pool.close(drain=False)

            # The drain blocks on a threading.Condition; keep it off the
            # event loop so an embedding application's other coroutines
            # keep running while the pool winds down.
            await asyncio.get_running_loop().run_in_executor(None, close_pool)

    # -- connection handling ------------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._clients.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass  # client went away, or server shutdown cancelled us
        finally:
            self._clients.discard(task)
            self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """Serve requests on one connection until close or keep-alive ends."""
        task = asyncio.current_task()
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, (tuple, list)) else None
        while True:
            try:
                # One bound covers keep-alive idling and slow-trickle
                # request bodies: a connection that cannot produce a full
                # request within idle_timeout is dropped, so stalled
                # clients cannot pin tasks and file descriptors forever.
                request = await asyncio.wait_for(
                    http.read_request(reader, self.max_body_bytes),
                    timeout=self.idle_timeout)
            except asyncio.TimeoutError:
                return
            except HTTPError as error:
                writer.write(self._render_error(error, keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return
            self._busy.add(task)
            self.metrics.begin()
            started = time.perf_counter()
            status = 500
            try:
                status = await self._dispatch(request, writer, peer)
            except Exception as error:  # noqa: BLE001 - mapped to JSON below
                if isinstance(error, (ConnectionResetError, BrokenPipeError,
                                      asyncio.CancelledError)):
                    raise
                mapped = _map_exception(error)
                status = mapped.status
                writer.write(self._render_error(mapped, request.keep_alive))
            finally:
                # Unknown paths share one bucket so URL scanners cannot grow
                # the per-endpoint metrics table without bound.
                endpoint = (request.path if request.path in self._routes
                            else "(unmatched)")
                self.metrics.record(endpoint, status,
                                    time.perf_counter() - started)
                self._busy.discard(task)
            await writer.drain()
            if not request.keep_alive:
                return

    async def _dispatch(self, request: Request, writer: asyncio.StreamWriter,
                        peer: Optional[str] = None) -> int:
        # The middleware layer every endpoint shares: drain refusal first
        # (a draining worker must not accept new work it may not finish),
        # then authentication and rate limiting.  /healthz stays exempt so
        # orchestrator liveness probes work unauthenticated and mid-drain.
        if request.path != "/healthz":
            if self._draining:
                raise HTTPError(503, "draining",
                                "server is draining for shutdown; retry "
                                "(another worker will answer)",
                                retryable=True,
                                headers={"Retry-After": "1"})
            if self.policy is not None:
                self.policy.check(request, peer)
        route = self._routes.get(request.path)
        if route is None:
            raise HTTPError(404, "not_found",
                            f"no such endpoint {request.path!r}; available: "
                            f"{', '.join(sorted(self._routes))}")
        method, handler = route
        if request.method != method:
            raise HTTPError(405, "method_not_allowed",
                            f"{request.path} expects {method}")
        return await handler(request, writer)

    def _render_error(self, error: HTTPError, keep_alive: bool) -> bytes:
        payload = {"code": error.code, "message": error.message,
                   "retryable": error.retryable}
        # Structured context (e.g. max_body_bytes on a 413) rides inside the
        # error object so SDKs never have to parse the prose message.
        payload.update(error.details)
        body = json_bytes({"error": payload})
        return http.render_response(error.status, body, keep_alive=keep_alive,
                                    extra_headers=error.headers or None)

    def _write_json(self, writer: asyncio.StreamWriter, status: int,
                    payload: Any, keep_alive: bool) -> None:
        writer.write(http.render_response(status, json_bytes(payload),
                                          keep_alive=keep_alive))

    # -- endpoint handlers --------------------------------------------------------

    async def _handle_query(self, request: Request,
                            writer: asyncio.StreamWriter) -> int:
        payload = request.json()
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise HTTPError(400, "bad_request", "'sql' must be a non-empty string")
        params = payload.get("params")
        if params is not None and not isinstance(params, (list, dict)):
            raise HTTPError(400, "bad_request",
                            "'params' must be an array (positional) or an "
                            "object (named)")
        mode = payload.get("mode", "rewritten")
        if mode not in ("rewritten", "direct", "attribute"):
            raise HTTPError(400, "bad_request",
                            f"unknown mode {mode!r}; use 'rewritten', "
                            "'direct' or 'attribute'")
        stream = bool(payload.get("stream", False))
        loop = asyncio.get_running_loop()
        if not stream:
            cache = self.result_cache
            if cache is not None and cache.enabled:
                # Fast path: when no foreign write is pending (one indexed
                # SQLite read, safe on the loop) and the body is cached,
                # answer without the executor round trip.  A due refresh or
                # a cache miss falls through to the worker-thread path.
                versions = self.coordinator.poll()
                if versions is not None:
                    key = ResultCache.key(sql, params, mode,
                                          self._engine_name(), *versions)
                    body = cache.peek(key)
                    if body is not None:
                        writer.write(http.render_response(
                            200, body, keep_alive=request.keep_alive,
                            extra_headers={"X-UADB-Cache": "hit"}))
                        return 200
            body, cached = await loop.run_in_executor(
                self._executor, self._run_query_cached, sql, params, mode)
            extra = ({"X-UADB-Cache": "hit" if cached else "miss"}
                     if self.result_cache is not None else None)
            writer.write(http.render_response(200, body,
                                              keep_alive=request.keep_alive,
                                              extra_headers=extra))
            return 200
        columns, types, rows, certain, bounds, elapsed = (
            await loop.run_in_executor(
                self._executor, self._run_query, sql, params, mode))
        summary = {
            "row_count": len(rows),
            "certain_count": sum(certain),
            "elapsed_ms": elapsed * 1e3,
        }
        await self._stream_rows(writer, request,
                                {"columns": columns, "types": types},
                                rows, certain, bounds, summary)
        return 200

    async def _stream_rows(self, writer: asyncio.StreamWriter,
                           request: Request, header: Dict[str, Any],
                           rows: List[Any], certain: List[bool],
                           bounds: Optional[List[Any]],
                           summary: Dict[str, Any]) -> None:
        """Send a query result as streamed NDJSON: header, rows, summary.

        HTTP/1.1 clients get chunked framing on a keep-alive connection;
        HTTP/1.0 clients (no chunked encoding in 1.0) get an EOF-delimited
        body on a closing connection.  The result itself is already
        materialized (the engines are not streaming); what streams is the
        encode-and-send, with backpressure via ``drain()`` every
        :data:`STREAM_FLUSH_BYTES`, so a slow client never balloons the
        server's write buffer.  Attribute-mode results (``bounds`` not
        ``None``) carry each fragment's per-cell range triples and
        multiplicity on its row line.
        """
        chunked = request.version != "HTTP/1.0"
        writer.write(http.render_response(
            200, b"", content_type="application/x-ndjson",
            keep_alive=request.keep_alive, chunked=chunked,
            eof_delimited=not chunked))
        buffer = bytearray(json_bytes(header) + b"\n")
        for index, (row, certain_flag) in enumerate(zip(rows, certain)):
            record = {"row": row, "certain": certain_flag}
            if bounds is not None:
                record["bounds"] = bounds[index]
            buffer += json_bytes(record) + b"\n"
            if len(buffer) >= STREAM_FLUSH_BYTES:
                writer.write(http.chunk(bytes(buffer)) if chunked
                             else bytes(buffer))
                buffer.clear()
                await writer.drain()
        buffer += json_bytes(summary) + b"\n"
        if chunked:
            writer.write(http.chunk(bytes(buffer)) + http.LAST_CHUNK)
        else:
            writer.write(bytes(buffer))
        await writer.drain()
        self.metrics.add_streamed_rows(len(rows))

    def _run_query_cached(self, sql: str, params, mode: str):
        """Worker-thread body of non-streamed ``POST /query``.

        Refreshes from cross-process writes, then answers from the result
        cache when the exact (SQL, params, mode, engine, catalog version,
        statistics version) body was rendered before; the version pair makes
        invalidation exact -- any write, local or foreign, changes the key.
        Returns ``(body bytes, served-from-cache flag)``.
        """
        versions = self.coordinator.ensure_fresh()
        cache = self.result_cache
        key = None
        if cache is not None and cache.enabled:
            key = ResultCache.key(sql, params, mode, self._engine_name(),
                                  *versions)
            body = cache.get(key)
            if body is not None:
                return body, True
        columns, types, rows, certain, bounds, elapsed = self._execute_query(
            sql, params, mode)
        # Results are unbounded, so the (potentially large) JSON encode
        # happens here on the worker thread -- the event loop only ships
        # bytes.
        payload: Dict[str, Any] = {
            "columns": columns, "types": types,
            "rows": rows, "certain": certain,
            "row_count": len(rows),
            "certain_count": sum(certain),
            "elapsed_ms": elapsed * 1e3,
        }
        if bounds is not None:
            payload["bounds"] = bounds
        body = json_bytes(payload)
        if key is not None:
            cache.put(key, body)
        return body, False

    def _run_query(self, sql: str, params, mode: str):
        """Worker-thread body of streamed ``POST /query`` (no result cache)."""
        self.coordinator.ensure_fresh()
        return self._execute_query(sql, params, mode)

    def _execute_query(self, sql: str, params, mode: str):
        """Check out a connection, execute, and label rows with certainty.

        Returns ``(columns, types, rows, certain, bounds, elapsed)``;
        ``bounds`` is ``None`` for the tuple-level modes and, in mode
        ``"attribute"``, a list parallel to ``rows`` carrying each
        fragment's per-cell ``[lower, best, upper]`` triples and its
        ``[m_lb, m_bg, m_ub]`` multiplicity.
        """
        with self.pool.connection(timeout=self.checkout_timeout) as conn:
            if conn.statement_kind(sql, mode=mode) not in ("select", "explain"):
                raise HTTPError(400, "invalid_statement",
                                "/query only accepts SELECT/EXPLAIN "
                                "statements; use /execute for DDL/DML")
            if mode == "attribute":
                return self._execute_attribute_query(conn, sql, params)
            if mode == "rewritten":
                result = conn.query(sql, params)
            else:
                result = conn.query_direct(sql, params)
            relation = result.relation
            columns = [attribute.name
                       for attribute in relation.schema.attributes]
            types = [attribute.data_type.name.lower()
                     for attribute in relation.schema.attributes]
            rows = result.rows()
            certain = [relation.is_certain(row) for row in rows]
            return columns, types, rows, certain, None, result.elapsed

    @staticmethod
    def _execute_attribute_query(conn, sql: str, params):
        """Attribute-mode body of ``/query``: one row per range fragment.

        Each fragment of the :class:`~repro.core.AttributeBoundsRelation`
        answer yields its best-guess row, a certainty flag (collapsed
        ranges and ``m_lb >= 1``), and a bounds record with the per-cell
        ``[lower, best, upper]`` triples plus the fragment's multiplicity
        triple -- so clients see the full AU-DB answer, not just the
        best-guess world.
        """
        result = conn.query_bounds(sql, params)
        relation = result.relation
        columns = list(relation.schema.attribute_names)
        types = [attribute.data_type.name.lower()
                 for attribute in relation.schema.attributes]
        rows: List[Any] = []
        certain: List[bool] = []
        bounds: List[Dict[str, Any]] = []
        for ranges, multiplicity in relation.bounded_rows():
            rows.append([r[1] for r in ranges])
            certain.append(multiplicity[0] >= 1 and all(
                r[0] == r[2] or r[0] is None for r in ranges))
            bounds.append({"cells": [list(r) for r in ranges],
                           "multiplicity": list(multiplicity)})
        return columns, types, rows, certain, bounds, result.elapsed

    async def _handle_execute(self, request: Request,
                              writer: asyncio.StreamWriter) -> int:
        payload = request.json()
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise HTTPError(400, "bad_request", "'sql' must be a non-empty string")
        params = payload.get("params")
        params_seq = payload.get("params_seq")
        if params is not None and params_seq is not None:
            raise HTTPError(400, "bad_request",
                            "pass either 'params' or 'params_seq', not both")
        if params is not None and not isinstance(params, (list, dict)):
            raise HTTPError(400, "bad_request",
                            "'params' must be an array or an object")
        if params_seq is not None and not (
                isinstance(params_seq, list)
                and all(isinstance(p, (list, dict)) for p in params_seq)):
            raise HTTPError(400, "bad_request",
                            "'params_seq' must be an array of arrays/objects")
        loop = asyncio.get_running_loop()
        rowcount, elapsed = await loop.run_in_executor(
            self._executor, self._run_execute, sql, params, params_seq)
        self._write_json(writer, 200,
                         {"rowcount": rowcount, "elapsed_ms": elapsed * 1e3},
                         request.keep_alive)
        return 200

    def _run_execute(self, sql: str, params, params_seq):
        """Worker-thread body of ``POST /execute``.

        Writes serialize at two levels, acquired strictly in this order: the
        cross-process ``flock`` (:meth:`StoreCoordinator.write` -- a no-op
        for storeless pools), then the pool's in-process writer lock inside
        ``conn.execute``.  The coordinator refreshes from foreign writes
        under the lock, so this statement applies to the latest catalog and
        its version bump supersedes every sibling's.
        """
        with self.coordinator.write(timeout=self.checkout_timeout):
            with self.pool.connection(timeout=self.checkout_timeout) as conn:
                if conn.statement_kind(sql) in ("select", "explain"):
                    raise HTTPError(400, "invalid_statement",
                                    "/execute is for DDL/DML statements; "
                                    "use /query for SELECT/EXPLAIN")
                started = time.perf_counter()
                if params_seq is not None:
                    cursor = conn.executemany(sql, params_seq)
                else:
                    cursor = conn.execute(sql, params)
                return cursor.rowcount, time.perf_counter() - started

    async def _handle_load(self, request: Request,
                           writer: asyncio.StreamWriter) -> int:
        """Bulk ingest one NDJSON batch.

        Body protocol: the first line is a JSON header object --
        ``{"table": ..., "columns": [...], "create": true, "chunk_size": N,
        "uncertainty": null | "certain" | "flag" | "impute"}`` -- and every
        following line is one record (JSON array or object).  The batch is
        committed in :mod:`repro.ingest` chunks, each one WAL transaction;
        the response is the load report with per-chunk breakdown.  Clients
        with more rows than fit under ``max_body_bytes`` send several
        ``/load`` requests (see ``Client.load``); each body is atomic per
        chunk, not per request.
        """
        body = request.body
        if not body:
            raise HTTPError(400, "bad_request",
                            "/load expects an NDJSON body: a JSON header "
                            "line, then one record per line")
        newline = body.find(b"\n")
        header_line = body if newline < 0 else body[:newline]
        records = b"" if newline < 0 else body[newline + 1:]
        try:
            header = json.loads(header_line)
        except ValueError as error:
            raise HTTPError(400, "bad_json",
                            f"/load header line is not valid JSON: {error}")
        if not isinstance(header, dict):
            raise HTTPError(400, "bad_request",
                            "/load header line must be a JSON object")
        table = header.get("table")
        if not isinstance(table, str) or not table.strip():
            raise HTTPError(400, "bad_request",
                            "'table' must be a non-empty string")
        columns = header.get("columns")
        if columns is not None and not (
                isinstance(columns, list)
                and columns
                and all(isinstance(name, str) for name in columns)):
            raise HTTPError(400, "bad_request",
                            "'columns' must be a non-empty array of strings")
        uncertainty = header.get("uncertainty")
        if uncertainty is not None and uncertainty not in (
                "certain", "flag", "impute"):
            raise HTTPError(400, "bad_request",
                            "'uncertainty' must be 'certain', 'flag' or "
                            "'impute'")
        create = header.get("create", True)
        if not isinstance(create, bool):
            raise HTTPError(400, "bad_request", "'create' must be a boolean")
        chunk_size = header.get("chunk_size")
        if chunk_size is not None and (
                not isinstance(chunk_size, int) or isinstance(chunk_size, bool)
                or chunk_size < 1):
            raise HTTPError(400, "bad_request",
                            "'chunk_size' must be a positive integer")
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self._executor, self._run_load, table, records, columns,
            create, chunk_size, uncertainty)
        self._write_json(writer, 200, report, request.keep_alive)
        return 200

    def _run_load(self, table: str, records: bytes, columns, create: bool,
                  chunk_size, uncertainty) -> Dict[str, Any]:
        """Worker-thread body of ``POST /load``.

        Same locking order as ``/execute``: cross-process ``flock`` first,
        then the pool's writer lock inside each chunk's batched write.
        """
        from repro import ingest

        source = ingest.NDJSONSource(records.split(b"\n"), columns=columns)
        with self.coordinator.write(timeout=self.checkout_timeout):
            with self.pool.connection(timeout=self.checkout_timeout) as conn:
                report = ingest.load(
                    conn, table, source, create=create,
                    chunk_size=chunk_size or ingest.loader.DEFAULT_CHUNK_SIZE,
                    uncertainty=uncertainty)
        payload = report.to_dict()
        payload["elapsed_ms"] = report.seconds * 1e3
        return payload

    async def _handle_tables(self, request: Request,
                             writer: asyncio.StreamWriter) -> int:
        loop = asyncio.get_running_loop()
        tables = await loop.run_in_executor(self._executor, self._run_tables)
        self._write_json(writer, 200, {"tables": tables}, request.keep_alive)
        return 200

    def _run_tables(self):
        self.coordinator.ensure_fresh()
        with self.pool.connection(timeout=self.checkout_timeout) as conn:
            return conn.tables()

    async def _handle_healthz(self, request: Request,
                              writer: asyncio.StreamWriter) -> int:
        stats = self.pool.stats()
        store = self.pool.store
        self._write_json(writer, 200, {
            "status": "draining" if self._draining else "ok",
            "semiring": self.pool.semiring.name,
            "engine": self._engine_name(),
            "store": store.path if store is not None else None,
            "pool": {"in_use": stats["in_use"],
                     "max_connections": stats["max_connections"]},
            # Advertised so SDKs can size /load chunks without probing for
            # 413s (Client.load reads this before its first upload).
            "limits": {"max_body_bytes": self.max_body_bytes},
        }, request.keep_alive)
        return 200

    def _engine_name(self) -> str:
        """The resolved engine name (or the raw spec if it cannot resolve)."""
        try:
            return get_engine(self.pool.engine).name
        except EvaluationError:
            return str(self.pool.engine)

    def metrics_payload(self) -> Dict[str, Any]:
        """The full ``GET /metrics`` body for *this* process.

        Also what a fleet worker periodically publishes to its siblings
        through the :class:`MetricsExchange`.
        """
        pool_stats = self.pool.stats()
        cache = pool_stats.pop("plan_cache")
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / lookups if lookups else 0.0
        store = pool_stats.pop("store", None)
        pool_stats["saturation"] = (pool_stats["in_use"]
                                    / pool_stats["max_connections"])
        payload: Dict[str, Any] = {
            "server": self.metrics.snapshot(),
            "plan_cache": cache,
            "pool": pool_stats,
            "store": store,
            # Per-engine dispatch counts: where evaluate() sent plans.  With
            # the "auto" engine both the meta-engine and its delegate count,
            # so the delegate split is visible.
            "engine_dispatch": dispatch_counts(),
            # Intra-query parallel layer: chunk counters and worker
            # utilization (busy-over-wall time across parallelized tasks).
            "parallel": parallel.stats(),
        }
        if self.result_cache is not None:
            payload["result_cache"] = self.result_cache.stats()
        if self.coordinator.active:
            payload["coordination"] = self.coordinator.stats()
        if self.policy is not None:
            payload["security"] = self.policy.stats()
        return payload

    async def _handle_metrics(self, request: Request,
                              writer: asyncio.StreamWriter) -> int:
        payload = self.metrics_payload()
        if self.metrics_exchange is not None:
            # Fold every sibling worker's published snapshot in, overlaying
            # this worker's *live* payload, so any one worker of the fleet
            # answers for all of them -- with hit rates recomputed from
            # summed counters, never a single process's view.
            snapshots = self.metrics_exchange.read_all()
            snapshots[self.metrics_exchange.worker_index] = {
                "worker": self.metrics_exchange.worker_index,
                "pid": os.getpid(),
                "published_at": time.time(),
                "metrics": payload,
            }
            payload["worker"] = self.metrics_exchange.worker_index
            payload["fleet"] = aggregate_fleet(snapshots)
        self._write_json(writer, 200, payload, request.keep_alive)
        return 200

    async def _publish_metrics_loop(self) -> None:
        """Periodically publish this worker's counters for its siblings."""
        loop = asyncio.get_running_loop()
        while True:
            try:
                await loop.run_in_executor(None, self.metrics_exchange.publish,
                                           self.metrics_payload())
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - publishing must never kill us
                logger.debug("metrics publish failed", exc_info=True)
            await asyncio.sleep(METRICS_PUBLISH_INTERVAL)

    def __repr__(self) -> str:
        state = "bound" if self._server is not None else "unbound"
        return f"<UADBServer http://{self.host}:{self.port} {state} over {self.pool!r}>"


async def serve(**kwargs: Any) -> UADBServer:
    """Construct a :class:`UADBServer`, start it, and return it.

    Convenience for asyncio programs::

        server = await serve(store="app.uadb", port=0)
        try:
            ...  # talk to server.address
        finally:
            await server.stop()
    """
    server = UADBServer(**kwargs)
    try:
        await server.start()
    except BaseException:
        await server.stop()  # release the server-owned pool (and store)
        raise
    return server


class ServerThread:
    """A :class:`UADBServer` running on a dedicated background event loop.

    The synchronous front door for tests, examples and benchmarks::

        with ServerThread(engine="sqlite", port=0) as server:
            client = server.client()
            client.execute("CREATE TABLE t (a INT)")
            print(client.query("SELECT a FROM t").rows)

    :meth:`start` blocks until the socket is bound (startup errors re-raise
    in the calling thread); :meth:`stop` runs the server's graceful shutdown
    and joins the loop thread.  Construction arguments are passed through to
    :class:`UADBServer` unchanged.
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self.server = UADBServer(**server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid once :meth:`start` returned)."""
        return self.server.address

    def client(self):
        """A new :class:`~repro.server.client.Client` for this server."""
        from repro.server.client import Client

        host, port = self.address
        return Client(host, port)

    def start(self) -> "ServerThread":
        """Start the loop thread and wait until the server accepts connections."""
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="uadb-server")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as error:  # surface bind errors in start()
            self._startup_error = error
            try:
                await self.server.stop()  # release the owned pool/store
            except Exception:  # pragma: no cover - best-effort cleanup
                logger.exception("cleanup after failed startup")
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def stop(self) -> None:
        """Gracefully stop the server and join its thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
