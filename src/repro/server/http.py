"""Minimal HTTP/1.1 message handling over :mod:`asyncio` streams.

The server speaks just enough HTTP for a JSON query API -- request-line +
headers + ``Content-Length`` bodies in, fixed-length or chunked responses
out, keep-alive by default -- without pulling in a web framework.  Anything
outside that fragment (chunked request bodies, huge headers, oversized
payloads) is rejected with a typed :class:`HTTPError` that the server turns
into a structured JSON error response.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "HTTPError",
    "Request",
    "json_bytes",
    "read_request",
    "render_response",
]

#: Reason phrases for the status codes the server actually emits.
STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}

#: Upper bound on accumulated header bytes per request.
MAX_HEADER_BYTES = 64 * 1024

#: Default upper bound on request body size (16 MiB).
DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024


class HTTPError(Exception):
    """A request the server refuses, carrying the HTTP status and error code.

    ``status`` is the HTTP status line to send, ``code`` a short
    machine-readable identifier (``"bad_json"``, ``"not_found"``, ...) and
    ``message`` the human-readable explanation; all three end up verbatim in
    the JSON error body ``{"error": {"code": ..., "message": ...,
    "retryable": ...}}``.  ``retryable`` tells clients whether re-sending
    the identical request can succeed (429 rate limits, 503 during drain or
    pool saturation); ``headers`` carries extra response headers such as
    ``Retry-After`` or ``WWW-Authenticate``; ``details`` carries extra
    machine-readable fields merged into the error object (the 413 response
    reports ``max_body_bytes`` there, so client SDKs can resize chunks
    without parsing prose).
    """

    def __init__(self, status: int, code: str, message: str,
                 retryable: bool = False,
                 headers: Optional[Dict[str, str]] = None,
                 details: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retryable = retryable
        self.headers = headers or {}
        self.details = details or {}


@dataclass
class Request:
    """One parsed HTTP request: method, split target, headers and raw body."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response.

        HTTP/1.0 connections always close (the server also falls back to
        EOF-delimited bodies for them -- chunked framing is 1.1-only).
        """
        if self.version == "HTTP/1.0":
            return False
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body decoded as a JSON object; :class:`HTTPError` 400 otherwise."""
        if not self.body:
            raise HTTPError(400, "bad_json", "request body must be a JSON object")
        try:
            payload = json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as error:
            raise HTTPError(400, "bad_json", f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise HTTPError(400, "bad_json", "request body must be a JSON object")
        return payload


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = DEFAULT_MAX_BODY_BYTES) -> Optional[Request]:
    """Read and parse one request; None on a clean end-of-stream.

    Raises :class:`HTTPError` for malformed request lines, oversized headers
    or bodies, and chunked request bodies (which the server does not accept).
    A connection that closes mid-request surfaces as a 400.
    """
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HTTPError(431, "header_too_large", "request line too long")
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HTTPError(400, "bad_request_line",
                        f"malformed request line {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HTTPError(505, "http_version", f"unsupported version {version}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise HTTPError(431, "header_too_large", "header line too long")
        if not line:
            raise HTTPError(400, "truncated", "connection closed inside headers")
        if line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HTTPError(431, "header_too_large", "headers exceed 64 KiB")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HTTPError(400, "bad_header", f"malformed header line {line!r}")
        name = name.strip().lower()
        value = value.strip()
        if name == "content-length" and name in headers \
                and headers[name] != value:
            # RFC 9110: conflicting duplicate Content-Length must be
            # rejected -- accepting one of them enables request smuggling
            # behind an intermediary that frames on the other.
            raise HTTPError(400, "bad_header",
                            "conflicting Content-Length headers")
        headers[name] = value

    body = b""
    if "transfer-encoding" in headers:
        raise HTTPError(501, "chunked_body",
                        "chunked request bodies are not supported; "
                        "send Content-Length")
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "bad_header", "malformed Content-Length")
        if length < 0:
            raise HTTPError(400, "bad_header", "negative Content-Length")
        if length > max_body:
            raise HTTPError(413, "payload_too_large",
                            f"request body of {length} bytes exceeds the "
                            f"{max_body} byte limit",
                            details={"max_body_bytes": max_body,
                                     "body_bytes": length})
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HTTPError(400, "truncated", "connection closed inside body")

    path = target.partition("?")[0]
    return Request(method=method.upper(), path=path,
                   headers=headers, body=body, version=version)


def json_bytes(payload: Any) -> bytes:
    """Serialize ``payload`` compactly; non-JSON values degrade to ``repr``."""
    return json.dumps(payload, separators=(",", ":"), default=repr).encode("utf-8")


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    keep_alive: bool = True,
                    chunked: bool = False,
                    eof_delimited: bool = False,
                    extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    """Serialize a response head (and, unless streaming, the body).

    With ``chunked=True`` only the head (announcing
    ``Transfer-Encoding: chunked``) is returned; the caller then streams
    chunks -- see the NDJSON path of ``POST /query``.  ``eof_delimited``
    likewise returns only the head, with neither ``Content-Length`` nor
    chunked framing: the body ends when the (necessarily closing)
    connection does -- the HTTP/1.0 streaming fallback.  ``extra_headers``
    appends literal header lines (``Retry-After``, ``WWW-Authenticate``,
    cache markers).
    """
    phrase = STATUS_PHRASES.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {phrase}",
            f"Content-Type: {content_type}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    if chunked:
        head.append("Transfer-Encoding: chunked")
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
    if eof_delimited:
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
    head.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def chunk(data: bytes) -> bytes:
    """Encode one chunk of a chunked response body."""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


#: The terminating chunk of a chunked response.
LAST_CHUNK = b"0\r\n\r\n"
