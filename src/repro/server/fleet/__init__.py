"""Multi-process fleet serving for the UA-DB HTTP server.

This package turns the single-process asyncio server into a pre-forked
fleet sharing one ``.uadb`` store and one public port:

* :mod:`repro.server.fleet.coordination` -- cross-process write
  coordination: an advisory ``flock`` write lock with fencing tokens, and a
  per-process catalog watcher that refreshes stale readers from the WAL.
* :mod:`repro.server.fleet.supervisor` -- the pre-fork supervisor:
  ``SO_REUSEPORT`` load balancing (or a round-robin asyncio router
  fallback), graceful per-worker drain, crash restarts with backoff.
* :mod:`repro.server.fleet.cache` -- an HTTP-level result cache keyed on
  (normalized SQL, params, engine, catalog version, stats version).
* :mod:`repro.server.fleet.auth` -- bearer-token authentication and
  per-client token-bucket rate limiting.
* :mod:`repro.server.fleet.metrics_exchange` -- cross-worker metrics
  aggregation for ``GET /metrics``.
"""

from repro.server.fleet.auth import SecurityPolicy, TokenBucket
from repro.server.fleet.cache import ResultCache
from repro.server.fleet.coordination import (FleetWriteLock, StoreCoordinator,
                                             WriteLockTimeout)
from repro.server.fleet.metrics_exchange import MetricsExchange, aggregate_fleet
from repro.server.fleet.supervisor import FleetSupervisor, reuseport_available

__all__ = [
    "FleetSupervisor",
    "FleetWriteLock",
    "MetricsExchange",
    "ResultCache",
    "SecurityPolicy",
    "StoreCoordinator",
    "TokenBucket",
    "WriteLockTimeout",
    "aggregate_fleet",
    "reuseport_available",
]
