"""Bearer-token authentication and per-client token-bucket rate limiting.

One :class:`SecurityPolicy` object guards every endpoint of a server (the
``/healthz`` liveness probe is exempted by the server so orchestrators can
always reach it).  Two independent knobs:

* **Authentication** -- static bearer tokens from a JSON config file
  (:meth:`SecurityPolicy.from_file`).  When any tokens are configured, every
  request must carry ``Authorization: Bearer <token>``; unknown or missing
  tokens answer ``401`` with a ``WWW-Authenticate`` challenge.  With no
  tokens configured the server stays open (the pre-fleet behaviour).

* **Rate limiting** -- a token bucket per client: ``rate`` requests/second
  sustained, bursting to ``burst``.  Authenticated clients are keyed by
  their token's ``client`` name; anonymous clients by peer IP.  Exhausted
  buckets answer ``429`` with ``Retry-After`` (seconds, rounded up) so
  well-behaved clients -- including :class:`repro.server.client.Client` --
  back off precisely instead of guessing.

Config file shape (all fields optional)::

    {
      "tokens": {
        "s3cret-token": {"client": "alice", "rate": 100, "burst": 200},
        "other-token":  {"client": "bob"}
      },
      "default_rate": 50,
      "default_burst": 100
    }

Per-token ``rate``/``burst`` override the defaults; a client with no rate
anywhere is unlimited.  Buckets use the monotonic clock and are thread-safe.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Any, Dict, Optional

from repro.server.http import HTTPError, Request

__all__ = ["SecurityPolicy", "TokenBucket"]


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_lock")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def consume(self, amount: float = 1.0) -> float:
        """Take ``amount`` tokens; returns 0.0 on success, else seconds to wait."""
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            if self._tokens >= amount:
                self._tokens -= amount
                return 0.0
            if self.rate <= 0:
                return math.inf
            return (amount - self._tokens) / self.rate

    def __repr__(self) -> str:
        return f"<TokenBucket {self.rate}/s burst={self.burst}>"


class SecurityPolicy:
    """Authentication + rate limiting for one server, in one middleware check.

    ``tokens`` maps bearer-token strings to descriptors (``client`` name,
    optional ``rate``/``burst``).  ``default_rate``/``default_burst`` apply
    to tokens without their own numbers -- and, when no tokens are
    configured at all, to anonymous clients keyed by peer IP.
    """

    #: Anonymous per-IP buckets retained before the oldest are dropped.
    MAX_TRACKED_CLIENTS = 4096

    def __init__(self, tokens: Optional[Dict[str, Dict[str, Any]]] = None,
                 default_rate: Optional[float] = None,
                 default_burst: Optional[float] = None) -> None:
        self.tokens: Dict[str, Dict[str, Any]] = dict(tokens or {})
        self.default_rate = default_rate
        self.default_burst = default_burst
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.denied_auth = 0
        self.denied_rate = 0

    @classmethod
    def from_file(cls, path: str) -> "SecurityPolicy":
        """Load a policy from a JSON config file (shape in the module doc)."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                config = json.load(handle)
            except ValueError as exc:
                raise ValueError(f"tokens file {path!r} is not valid JSON: {exc}")
        if not isinstance(config, dict):
            raise ValueError(f"tokens file {path!r} must hold a JSON object")
        tokens = config.get("tokens", {})
        if not isinstance(tokens, dict):
            raise ValueError(f"tokens file {path!r}: 'tokens' must be an object")
        normalized: Dict[str, Dict[str, Any]] = {}
        for token, descriptor in tokens.items():
            if isinstance(descriptor, str):
                descriptor = {"client": descriptor}
            if not isinstance(descriptor, dict):
                raise ValueError(
                    f"tokens file {path!r}: descriptor of one token must be "
                    f"an object or a client name string")
            descriptor.setdefault("client", f"token-{len(normalized)}")
            normalized[str(token)] = descriptor
        return cls(normalized,
                   default_rate=config.get("default_rate"),
                   default_burst=config.get("default_burst"))

    @property
    def requires_auth(self) -> bool:
        """True when any bearer token is configured."""
        return bool(self.tokens)

    # -- the middleware check -----------------------------------------------------

    def check(self, request: Request, peer: Optional[str] = None) -> str:
        """Authenticate and rate-limit one request; returns the client name.

        Raises :class:`~repro.server.http.HTTPError` 401 (bad/missing
        token, with a ``WWW-Authenticate`` challenge) or 429 (bucket empty,
        with ``Retry-After``).
        """
        client, rate, burst = self._identify(request, peer)
        if rate is not None:
            wait = self._bucket(client, rate, burst).consume()
            if wait > 0:
                self.denied_rate += 1
                retry_after = max(1, math.ceil(min(wait, 3600)))
                raise HTTPError(
                    429, "rate_limited",
                    f"client {client!r} exceeded {rate:g} requests/s; "
                    f"retry after {retry_after}s",
                    retryable=True,
                    headers={"Retry-After": str(retry_after)})
        return client

    def _identify(self, request: Request, peer: Optional[str]):
        """Resolve (client name, rate, burst) or raise 401."""
        if not self.requires_auth:
            client = f"ip:{peer}" if peer else "anonymous"
            return client, self.default_rate, self._burst(self.default_rate,
                                                          None)
        header = request.headers.get("authorization", "")
        scheme, _, credential = header.partition(" ")
        credential = credential.strip()
        if scheme.lower() != "bearer" or not credential:
            self.denied_auth += 1
            raise HTTPError(
                401, "unauthorized",
                "missing bearer token; send 'Authorization: Bearer <token>'",
                headers={"WWW-Authenticate": 'Bearer realm="uadb"'})
        descriptor = self.tokens.get(credential)
        if descriptor is None:
            self.denied_auth += 1
            raise HTTPError(
                401, "unauthorized", "unknown bearer token",
                headers={"WWW-Authenticate": 'Bearer realm="uadb"'})
        rate = descriptor.get("rate", self.default_rate)
        burst = self._burst(rate, descriptor.get("burst"))
        return descriptor["client"], rate, burst

    def _burst(self, rate: Optional[float],
               burst: Optional[float]) -> Optional[float]:
        if burst is not None:
            return burst
        if self.default_burst is not None:
            return self.default_burst
        return rate  # sensible default: a full second of traffic

    def _bucket(self, client: str, rate: float,
                burst: Optional[float]) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    rate, burst if burst is not None else rate)
                # Bound anonymous-client tracking: a port scanner must not
                # grow the bucket table without limit.
                while len(self._buckets) > self.MAX_TRACKED_CLIENTS:
                    self._buckets.pop(next(iter(self._buckets)))
            return bucket

    def stats(self) -> Dict[str, Any]:
        """Denial counters and configuration gauges for /metrics."""
        with self._lock:
            tracked = len(self._buckets)
        return {
            "auth_required": self.requires_auth,
            "clients_tracked": tracked,
            "denied_auth": self.denied_auth,
            "denied_rate": self.denied_rate,
            "default_rate": self.default_rate,
        }

    def __repr__(self) -> str:
        return (f"<SecurityPolicy tokens={len(self.tokens)} "
                f"default_rate={self.default_rate}>")
