"""Cross-worker metrics aggregation through per-worker snapshot files.

Pre-forked workers share no memory, so ``GET /metrics`` on any one worker
would otherwise report only that process's counters (the per-process
``hit_rate`` problem).  :class:`MetricsExchange` fixes this with the
simplest robust mechanism available to siblings on one host: each worker
periodically publishes its metrics payload to ``<dir>/worker-<index>.json``
via an atomic write (temp file + ``rename``), and whichever worker serves a
``/metrics`` request merges every sibling's latest snapshot into a ``fleet``
section -- per-worker payloads labeled by worker index plus an aggregate
whose rates are recomputed from *summed* counters, not averaged averages.

A crashed worker's file is overwritten when the supervisor restarts its
slot; a worker that has not published yet simply does not appear.  Readers
tolerate torn or missing files (the atomic rename makes them near
impossible) by skipping them.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, Optional

__all__ = ["MetricsExchange", "aggregate_fleet"]

#: Snapshot files older than this many seconds are reported as stale.
STALE_AFTER = 15.0


class MetricsExchange:
    """Publishes one worker's metrics and reads every sibling's.

    ``directory`` is shared by all workers of one fleet (the supervisor
    creates and owns it); ``worker_index`` names this worker's file, so a
    restarted worker in the same slot replaces its predecessor's snapshot.
    """

    def __init__(self, directory: str, worker_index: int) -> None:
        self.directory = directory
        self.worker_index = worker_index
        self.path = os.path.join(directory, f"worker-{worker_index}.json")
        self.publishes = 0

    def publish(self, payload: Dict[str, Any]) -> None:
        """Atomically replace this worker's snapshot file with ``payload``."""
        body = json.dumps({
            "worker": self.worker_index,
            "pid": os.getpid(),
            "published_at": time.time(),
            "metrics": payload,
        }, separators=(",", ":"), default=repr)
        fd, temp_path = tempfile.mkstemp(dir=self.directory,
                                         prefix=f".worker-{self.worker_index}-")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
            os.replace(temp_path, self.path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.publishes += 1

    def read_all(self) -> Dict[int, Dict[str, Any]]:
        """Every worker's latest snapshot, keyed by worker index.

        Includes this worker's own published file; the server overlays its
        *live* payload on top so the serving worker is never stale.
        """
        snapshots: Dict[int, Dict[str, Any]] = {}
        try:
            names = os.listdir(self.directory)
        except OSError:
            return snapshots
        for name in names:
            if not (name.startswith("worker-") and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(self.directory, name),
                          encoding="utf-8") as handle:
                    snapshot = json.load(handle)
                index = int(snapshot["worker"])
            except (OSError, ValueError, KeyError, TypeError):
                continue  # torn write or foreign file: skip
            snapshots[index] = snapshot
        return snapshots

    def __repr__(self) -> str:
        return f"<MetricsExchange worker={self.worker_index} dir={self.directory!r}>"


def _rate(hits: float, misses: float) -> float:
    lookups = hits + misses
    return hits / lookups if lookups else 0.0


def aggregate_fleet(snapshots: Dict[int, Dict[str, Any]],
                    now: Optional[float] = None) -> Dict[str, Any]:
    """Merge per-worker snapshots into the ``fleet`` section of /metrics.

    Rates (cache hit rates) are recomputed from summed hit/miss counters
    across workers -- the whole point of the exchange: a per-process rate
    silently describes one worker, the aggregate describes the fleet.
    """
    now = time.time() if now is None else now
    workers: Dict[str, Any] = {}
    totals = {
        "requests_total": 0, "errors_total": 0, "rows_streamed": 0,
        "plan_cache_hits": 0, "plan_cache_misses": 0,
        "result_cache_hits": 0, "result_cache_misses": 0,
    }
    for index in sorted(snapshots):
        snapshot = snapshots[index]
        metrics = snapshot.get("metrics", {})
        server = metrics.get("server", {})
        plan_cache = metrics.get("plan_cache", {})
        result_cache = metrics.get("result_cache") or {}
        age = max(0.0, now - float(snapshot.get("published_at", now)))
        workers[str(index)] = {
            "pid": snapshot.get("pid"),
            "age_seconds": round(age, 3),
            "stale": age > STALE_AFTER,
            "requests_total": server.get("requests_total", 0),
            "errors_total": server.get("errors_total", 0),
            "in_flight": server.get("in_flight", 0),
            "plan_cache_hit_rate": plan_cache.get("hit_rate", 0.0),
            "result_cache_hit_rate": result_cache.get("hit_rate", 0.0),
        }
        totals["requests_total"] += server.get("requests_total", 0)
        totals["errors_total"] += server.get("errors_total", 0)
        totals["rows_streamed"] += server.get("rows_streamed", 0)
        totals["plan_cache_hits"] += plan_cache.get("hits", 0)
        totals["plan_cache_misses"] += plan_cache.get("misses", 0)
        totals["result_cache_hits"] += result_cache.get("hits", 0)
        totals["result_cache_misses"] += result_cache.get("misses", 0)
    return {
        "workers": workers,
        "aggregate": {
            **totals,
            "plan_cache_hit_rate": _rate(totals["plan_cache_hits"],
                                         totals["plan_cache_misses"]),
            "result_cache_hit_rate": _rate(totals["result_cache_hits"],
                                           totals["result_cache_misses"]),
        },
    }
