"""A byte-bounded HTTP-level result cache with exact version invalidation.

:class:`ResultCache` memoizes the fully rendered JSON body of non-streamed
``POST /query`` responses.  The key includes the catalog and statistics
versions the answer was computed under -- the same counters the prepared-plan
cache already keys its invalidation on -- so any DDL or INSERT (local or, via
the :class:`~repro.server.fleet.coordination.StoreCoordinator`, in another
process) changes the key and retires every stale entry *exactly*: no TTLs,
no heuristic invalidation, no stale reads.

Entries are LRU-evicted against a byte budget (bodies dominate, keys are
counted too); single bodies larger than ``max_entry_bytes`` are never cached
(they would evict the whole working set for one unrepeatable hit).  All
operations are thread-safe: worker threads of the asyncio server share one
instance.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

__all__ = ["ResultCache"]

#: Default byte budget (64 MiB) -- roughly 10k typical query bodies.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


def normalize_sql(sql: str) -> str:
    """Collapse runs of whitespace so trivially reformatted SQL shares a key."""
    return " ".join(sql.split())


def canonical_params(params: Any) -> str:
    """A deterministic string form of a parameter list/dict (or ``None``)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"),
                      default=repr)


class ResultCache:
    """An LRU over rendered response bodies, bounded by total bytes.

    ``max_bytes <= 0`` disables caching entirely (every lookup misses),
    keeping the server's code path uniform.  ``max_entry_bytes`` defaults to
    an eighth of the budget.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES,
                 max_entry_bytes: Optional[int] = None) -> None:
        self.max_bytes = max_bytes
        self.max_entry_bytes = (max(1, max_bytes // 8)
                                if max_entry_bytes is None else max_entry_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, bytes]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0

    @staticmethod
    def key(sql: str, params: Any, mode: str, engine: str,
            catalog_version: int, stats_version: int) -> Tuple:
        """The cache key for one query under one catalog/statistics state."""
        return (normalize_sql(sql), canonical_params(params), mode, engine,
                catalog_version, stats_version)

    @property
    def enabled(self) -> bool:
        """False when the byte budget disables caching."""
        return self.max_bytes > 0

    def get(self, key: Tuple) -> Optional[bytes]:
        """The cached body for ``key``, or None (counted as hit/miss)."""
        with self._lock:
            body = self._entries.get(key)
            if body is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return body

    def peek(self, key: Tuple) -> Optional[bytes]:
        """Like :meth:`get`, but a miss is not counted (no LRU effect either).

        For two-stage lookups -- an inline fast path that falls back to the
        full path, whose :meth:`get` records the miss -- so one request
        never counts as two lookups.
        """
        with self._lock:
            body = self._entries.get(key)
            if body is None:
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return body

    def put(self, key: Tuple, body: bytes) -> None:
        """Insert ``body``, evicting least-recently-used entries to fit."""
        size = self._entry_size(key, body)
        if not self.enabled or size > self.max_entry_bytes:
            self.rejected += 1
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= self._entry_size(key, old)
            self._entries[key] = body
            self._bytes += size
            while self._bytes > self.max_bytes and self._entries:
                stale_key, stale_body = self._entries.popitem(last=False)
                self._bytes -= self._entry_size(stale_key, stale_body)
                self.evictions += 1

    @staticmethod
    def _entry_size(key: Tuple, body: bytes) -> int:
        return len(body) + sum(len(str(part)) for part in key)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction counters and current footprint for /metrics."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:
        return (f"<ResultCache {len(self)} entries {self._bytes}B "
                f"hits={self.hits} misses={self.misses}>")
