"""Cross-process write coordination over one shared ``.uadb`` store.

The WAL store already lets many *threads* of one process share a catalog;
this module extends that to many **processes**.  Two cooperating pieces:

* :class:`FleetWriteLock` -- an advisory ``fcntl.flock`` lock file next to
  the store (``<store>.lock``).  Writers across all processes funnel through
  it (lock-and-retry), and because the kernel releases a ``flock`` when the
  holding process dies -- cleanly or not -- a crashed writer can never
  wedge the fleet.  Each successful acquisition increments a fencing token
  persisted inside the lock file, giving post-mortem tooling a total order
  of write sessions.

* :class:`StoreCoordinator` -- a per-process catalog watcher.  Every request
  polls the store's *persisted* ``(catalog_version, stats_version)`` pair
  (one indexed SQLite read); when another process advanced it, the
  coordinator takes the pool's writer lock, reloads the changed relations
  from the WAL, adopts the persisted versions into the store's in-memory
  mirrors, and bumps the shared plan cache so every stale prepared plan is
  recompiled.  Writes wrap :meth:`StoreCoordinator.write`: cross-process
  lock, refresh-under-lock (so the write applies to the latest catalog),
  then the session's ordinary write-ahead append protocol.

Consistency model: SQLite's WAL gives atomic, durable commits per
transaction; the flock serializes writers across processes; the version poll
bounds staleness of readers to one request.  A worker crashing mid-INSERT
leaves either a committed transaction (the rows are durable, the version
counters may or may not have advanced -- the client never got an
acknowledgement either way) or a rolled-back one; the next acquirer of the
lock proceeds against a consistent store in both cases.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

try:  # POSIX only; the fleet tier is Linux/macOS
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback, single-process
    fcntl = None  # type: ignore[assignment]

from repro.api.pool import ConnectionPool
from repro.api.store import StoreError
from repro.core.encoding import decode_relation

__all__ = ["FleetWriteLock", "StoreCoordinator", "WriteLockTimeout"]

#: Width of the fencing token stored in the lock file (zero-padded ASCII).
_TOKEN_WIDTH = 20


class WriteLockTimeout(StoreError):
    """The cross-process write lock stayed held past the acquire timeout.

    Maps to HTTP 503 with ``retryable: true``: the writer holding the lock
    is alive and making progress, the client should back off and retry.
    """


class FleetWriteLock:
    """An advisory cross-process write lock file with a fencing counter.

    ``path`` is the lock file (conventionally ``<store path>.lock``).
    Acquisition polls ``fcntl.flock(LOCK_EX | LOCK_NB)`` every
    ``poll_interval`` seconds up to ``timeout``; the kernel releases the
    lock automatically when the holding process exits or dies, so crash
    recovery needs no lease expiry or lock-breaking heuristics.

    The file body holds a monotonically increasing **fencing token**: each
    acquisition reads, increments and fsyncs it while holding the exclusive
    lock.  :attr:`last_token` exposes the token of the most recent hold.
    """

    def __init__(self, path: "str | os.PathLike", timeout: float = 30.0,
                 poll_interval: float = 0.01) -> None:
        self.path = os.fspath(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        #: Fencing token of this object's most recent acquisition (0 = never).
        self.last_token = 0
        #: Successful acquisitions through this object (observability).
        self.acquisitions = 0
        #: Total seconds spent waiting to acquire (observability).
        self.wait_seconds = 0.0

    @staticmethod
    def path_for(store_path: str) -> str:
        """The conventional lock-file path for a store file."""
        return store_path + ".lock"

    @contextmanager
    def hold(self, timeout: Optional[float] = None) -> Iterator[int]:
        """Acquire the lock, yield the new fencing token, release on exit.

        Raises :class:`WriteLockTimeout` when the lock cannot be acquired
        within ``timeout`` (default: the constructor's).  Release is
        guaranteed on exit, and by the kernel on process death.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield 0
            return
        bound = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + bound
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        waited_from = time.monotonic()
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError as exc:
                    if exc.errno not in (errno.EAGAIN, errno.EACCES):
                        raise
                    if time.monotonic() >= deadline:
                        raise WriteLockTimeout(
                            f"write lock {self.path!r} still held after "
                            f"{bound:.1f}s; another process is writing"
                        ) from None
                    time.sleep(self.poll_interval)
            self.wait_seconds += time.monotonic() - waited_from
            token = self._advance_token(fd)
            self.last_token = token
            self.acquisitions += 1
            try:
                yield token
            finally:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - close releases anyway
                    pass
        finally:
            os.close(fd)

    @staticmethod
    def _advance_token(fd: int) -> int:
        """Read, increment and durably rewrite the fencing token.

        Runs while the exclusive lock is held, so the read-modify-write is
        race-free.  A torn or garbled body (a writer crashed inside the
        ~20-byte write -- possible in principle, never observed) degrades to
        restarting the counter at 1: the token is diagnostic, correctness
        rests on SQLite's WAL.
        """
        raw = os.pread(fd, _TOKEN_WIDTH, 0)
        try:
            token = int(raw.decode("ascii").strip() or 0) + 1
        except (UnicodeDecodeError, ValueError):
            token = 1
        os.pwrite(fd, str(token).rjust(_TOKEN_WIDTH, "0").encode("ascii"), 0)
        os.fsync(fd)
        return token

    def peek_token(self) -> int:
        """The current fencing token on disk (0 for a fresh/absent file)."""
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read(_TOKEN_WIDTH)
        except FileNotFoundError:
            return 0
        try:
            return int(raw.decode("ascii").strip() or 0)
        except (UnicodeDecodeError, ValueError):
            return 0

    def __repr__(self) -> str:
        return (f"<FleetWriteLock {self.path!r} "
                f"token={self.last_token} acquisitions={self.acquisitions}>")


class StoreCoordinator:
    """Keeps one process's pool coherent with a store other processes write.

    Construct one over a store-backed :class:`~repro.api.pool.ConnectionPool`
    and call :meth:`ensure_fresh` at the start of every request (the HTTP
    server does) and :meth:`write` around every mutation.  Pools without a
    store get a no-op coordinator: both calls degrade to nothing, so the
    server code path stays uniform.
    """

    def __init__(self, pool: ConnectionPool,
                 lock_timeout: float = 30.0) -> None:
        self.pool = pool
        self.store = pool.store
        self._seen_lock = threading.Lock()
        #: Cross-process refreshes performed (observability and tests).
        self.refreshes = 0
        if self.store is not None:
            self.write_lock: Optional[FleetWriteLock] = FleetWriteLock(
                FleetWriteLock.path_for(self.store.path), timeout=lock_timeout)
            self._seen: Tuple[int, int] = self.store.read_persisted_versions()
            # The pool loaded the store during construction, so what is in
            # memory corresponds to the versions just read.
            self.store.adopt_versions(*self._seen)
        else:
            self.write_lock = None
            self._seen = (0, 0)

    @property
    def active(self) -> bool:
        """True when the coordinator actually coordinates (store-backed)."""
        return self.store is not None

    # -- read path ----------------------------------------------------------------

    def versions(self) -> Tuple[int, int]:
        """The last ``(catalog_version, stats_version)`` seen (no I/O)."""
        if self.store is None:
            cache = self.pool.plan_cache
            return (cache.catalog_version, cache.stats_version)
        with self._seen_lock:
            return self._seen

    def poll(self) -> Optional[Tuple[int, int]]:
        """The current versions if already adopted, else None (refresh due).

        The non-blocking half of :meth:`ensure_fresh`: one indexed SQLite
        read and no locks beyond the version mirror's, so the server's event
        loop can probe freshness inline (the result-cache fast path) and
        fall back to a worker thread only when a real refresh -- which takes
        the pool's writer lock -- is needed.
        """
        if self.store is None:
            return self.versions()
        current = self.store.read_persisted_versions()
        with self._seen_lock:
            return current if current == self._seen else None

    def ensure_fresh(self) -> Tuple[int, int]:
        """Adopt any writes other processes committed; returns the versions.

        The fast path is one indexed SQLite read of the meta table.  On a
        version change the refresh itself runs under the pool's writer lock:
        relations are reloaded from the WAL, persisted statistics re-read,
        version mirrors fast-forwarded, and the shared plan cache bumped so
        every plan compiled against the old catalog misses.
        """
        if self.store is None:
            return self.versions()
        current = self.store.read_persisted_versions()
        with self._seen_lock:
            if current == self._seen:
                return current
        with self.pool.exclusive() as core:
            current = self.store.read_persisted_versions()
            with self._seen_lock:
                if current == self._seen:
                    return current
            self._refresh(core, current)
            with self._seen_lock:
                self._seen = current
        return current

    def _refresh(self, core, versions: Tuple[int, int]) -> None:
        """Reload the catalog from the store (caller holds the writer lock)."""
        store = self.store
        store.adopt_versions(*versions)
        # Persisted statistics first: adopt() below pins them to the
        # freshly loaded relations when the row counts still match.
        core.stats.reload()
        for name in store.relation_names():
            encoded = store.load_relation(name)
            core.encoded.add_relation(encoded, replace=True)
            core.uadb.add_relation(
                decode_relation(encoded, core.uadb.ua_semiring), replace=True)
            core.stats.adopt(encoded)
        core.plan_cache.bump_catalog_version()
        core.plan_cache.bump_stats_version()
        self.refreshes += 1

    # -- write path ---------------------------------------------------------------

    @contextmanager
    def write(self, timeout: Optional[float] = None) -> Iterator[None]:
        """Serialize one mutation across every process sharing the store.

        Protocol: acquire the cross-process lock file, refresh from any
        writes that landed while waiting (so this write applies to -- and
        its version bump supersedes -- the latest catalog), run the body
        (the session's ordinary write-ahead append), then record the
        versions our own bump produced so the next :meth:`ensure_fresh`
        does not mistake them for foreign writes.
        """
        if self.store is None or self.write_lock is None:
            yield
            return
        with self.write_lock.hold(timeout=timeout):
            self.ensure_fresh()
            try:
                yield
            finally:
                fresh = self.store.read_persisted_versions()
                with self._seen_lock:
                    self._seen = fresh

    def stats(self) -> dict:
        """Coordination counters for ``GET /metrics``."""
        payload = {
            "active": self.active,
            "refreshes": self.refreshes,
        }
        if self.write_lock is not None:
            payload["write_lock"] = {
                "acquisitions": self.write_lock.acquisitions,
                "last_token": self.write_lock.last_token,
                "wait_seconds": round(self.write_lock.wait_seconds, 6),
            }
        return payload

    def __repr__(self) -> str:
        backing = self.store.path if self.store is not None else "memory"
        return f"<StoreCoordinator {backing!r} refreshes={self.refreshes}>"
