"""The fleet supervisor: pre-forked workers behind one shared port.

``python -m repro.server --workers N`` hands control to
:class:`FleetSupervisor`, which

* reserves the public port once (so ``--port 0`` resolves to one concrete
  port for the whole fleet), then ``fork()``\\ s N workers, each running the
  ordinary asyncio :class:`~repro.server.app.UADBServer` over its **own**
  connection pool on the shared ``.uadb`` store -- pools, sqlite
  connections and event loops are built strictly *after* the fork, so no
  file descriptor or lock state is shared accidentally;
* load-balances with ``SO_REUSEPORT`` where the kernel offers it (every
  worker listens on the same address; the kernel spreads accepted
  connections), falling back to -- or forced into, with ``--router`` -- a
  tiny asyncio round-robin TCP router in the parent that proxies each
  connection to a worker's private ephemeral port;
* restarts crashed workers with per-slot exponential backoff (reset after a
  stable run), and on SIGTERM/SIGINT forwards the signal so every worker
  drains in-flight requests before exiting (a second signal force-kills);
* prints one parseable readiness line -- ``FLEET READY http://host:port
  workers=N mode=...`` -- to stdout once every worker accepts connections,
  which tests and deployment scripts wait for.

Workers coordinate writes and catalog refreshes through the store-level
protocol in :mod:`repro.server.fleet.coordination`; the supervisor itself
never touches the store.
"""

from __future__ import annotations

import asyncio
import logging
import os
import select
import signal
import socket
import sys
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.server.fleet.metrics_exchange import MetricsExchange

__all__ = ["FleetSupervisor", "reuseport_available"]

logger = logging.getLogger(__name__)

#: A worker alive this long has its restart backoff reset to the base.
STABLE_UPTIME = 5.0


def reuseport_available() -> bool:
    """True when the platform kernel supports ``SO_REUSEPORT`` balancing."""
    return hasattr(socket, "SO_REUSEPORT")


class _RoundRobinRouter:
    """An asyncio TCP proxy spreading connections over worker backends.

    The ``SO_REUSEPORT`` fallback: runs on its own thread + event loop in
    the supervisor process, accepts on the public address and relays each
    connection (both directions, with backpressure) to the next live
    backend.  Backends are registered per worker slot and swapped in place
    when the supervisor restarts a worker on a new ephemeral port.
    """

    def __init__(self, host: str, port: int, slots: int) -> None:
        self.host = host
        self.port = port
        self._backends: List[Optional[Tuple[str, int]]] = [None] * slots
        self._lock = threading.Lock()
        self._next = 0
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def set_backend(self, slot: int, address: Optional[Tuple[str, int]]) -> None:
        """Point ``slot`` at a (re)started worker, or None while it is down."""
        with self._lock:
            self._backends[slot] = address

    def _pick(self) -> Optional[Tuple[str, int]]:
        with self._lock:
            for _ in range(len(self._backends)):
                backend = self._backends[self._next % len(self._backends)]
                self._next += 1
                if backend is not None:
                    return backend
        return None

    async def _relay(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                piece = await reader.read(65536)
                if not piece:
                    break
                writer.write(piece)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                writer.write_eof()
            except (OSError, RuntimeError):
                pass

    async def _handle(self, client_reader: asyncio.StreamReader,
                      client_writer: asyncio.StreamWriter) -> None:
        backend = self._pick()
        if backend is None:
            client_writer.close()
            return
        try:
            backend_reader, backend_writer = await asyncio.open_connection(
                *backend)
        except OSError:
            client_writer.close()
            return
        try:
            await asyncio.gather(
                self._relay(client_reader, backend_writer),
                self._relay(backend_reader, client_writer))
        finally:
            for writer in (client_writer, backend_writer):
                writer.close()

    def start(self) -> None:
        """Bind the public address on a dedicated loop thread (blocking)."""
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="uadb-fleet-router")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(self._handle, self.host,
                                                self.port)
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop.wait()

    def stop(self) -> None:
        """Stop accepting and join the router thread (idempotent)."""
        if self._loop is not None and self._thread is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass
            self._thread.join(timeout=5.0)
            self._thread = None


class FleetSupervisor:
    """Forks, watches, restarts and drains N worker server processes.

    ``server_factory(host=..., port=..., reuse_port=...,
    metrics_exchange=...)`` must return an **unstarted**
    :class:`~repro.server.app.UADBServer`; it runs inside each freshly
    forked worker, so everything it builds (pools, stores, caches) is
    per-process.  ``use_router=True`` forces the asyncio round-robin proxy
    even where ``SO_REUSEPORT`` is available (its own code path is also the
    portability fallback).
    """

    def __init__(self, server_factory: Callable[..., object], *,
                 workers: int, host: str = "127.0.0.1", port: int = 8080,
                 use_router: bool = False,
                 metrics_dir: Optional[str] = None,
                 ready_timeout: float = 30.0,
                 backoff_base: float = 0.1,
                 backoff_cap: float = 5.0) -> None:
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.server_factory = server_factory
        self.workers = workers
        self.host = host
        self.port = port
        self.use_router = use_router or not reuseport_available()
        self.ready_timeout = ready_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._metrics_dir = metrics_dir
        self._owns_metrics_dir = metrics_dir is None
        self._placeholder: Optional[socket.socket] = None
        self._router: Optional[_RoundRobinRouter] = None
        self._children: Dict[int, int] = {}  # pid -> slot
        self._spawned_at: Dict[int, float] = {}  # pid -> monotonic
        self._backoff: Dict[int, float] = {}  # slot -> next restart delay
        self._stopping = False
        self._force_kill = False

    @property
    def mode(self) -> str:
        """``"reuseport"`` or ``"router"`` -- how connections are balanced."""
        return "router" if self.use_router else "reuseport"

    # -- public entry point -------------------------------------------------------

    def run(self) -> int:
        """Boot the fleet, supervise until SIGTERM/SIGINT, drain, exit.

        Returns a process exit code: 0 after a clean shutdown, 1 when the
        fleet failed to boot.
        """
        import shutil
        import tempfile

        if self._metrics_dir is None:
            self._metrics_dir = tempfile.mkdtemp(prefix="uadb-fleet-metrics-")
        previous_handlers = {
            signum: signal.signal(signum, self._handle_signal)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            self._bind_frontend()
            for slot in range(self.workers):
                if not self._boot_slot(slot, initial=True):
                    return 1
            print(f"FLEET READY http://{self.host}:{self.port} "
                  f"workers={self.workers} mode={self.mode} "
                  f"pid={os.getpid()}", flush=True)
            logger.info("fleet of %d workers serving on http://%s:%d (%s)",
                        self.workers, self.host, self.port, self.mode)
            self._supervise()
            return 0
        finally:
            self._shutdown_children()
            if self._router is not None:
                self._router.stop()
            if self._placeholder is not None:
                self._placeholder.close()
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
            if self._owns_metrics_dir and self._metrics_dir:
                shutil.rmtree(self._metrics_dir, ignore_errors=True)

    # -- signals ------------------------------------------------------------------

    def _handle_signal(self, signum, frame) -> None:
        if self._stopping:
            # Second signal: the operator is done waiting; force-kill.
            self._force_kill = True
            for pid in list(self._children):
                self._kill(pid, signal.SIGKILL)
            return
        self._stopping = True
        for pid in list(self._children):
            self._kill(pid, signal.SIGTERM)

    @staticmethod
    def _kill(pid: int, signum: int) -> None:
        try:
            os.kill(pid, signum)
        except ProcessLookupError:
            pass

    # -- the public socket --------------------------------------------------------

    def _bind_frontend(self) -> None:
        """Fix the public (host, port) before any worker exists.

        ``reuseport`` mode binds a placeholder socket that never listens: it
        resolves ``--port 0``, keeps the port reserved across the window
        where every worker happens to be dead, and lets each worker bind the
        same address with ``SO_REUSEPORT``.  ``router`` mode starts the
        proxy instead; workers then bind private ephemeral ports.
        """
        if self.use_router:
            self._router = _RoundRobinRouter(self.host, self.port,
                                             self.workers)
            self._router.start()
            self.port = self._router.port
            return
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        placeholder.bind((self.host, self.port))
        self.port = placeholder.getsockname()[1]
        self._placeholder = placeholder

    # -- worker lifecycle ---------------------------------------------------------

    def _boot_slot(self, slot: int, initial: bool) -> bool:
        """Fork a worker for ``slot`` and wait until it accepts connections.

        Returns False when the worker died or stalled before readiness; on
        the initial boot the caller aborts the fleet (configuration errors
        should fail loudly, not loop), on restarts the supervise loop reaps
        the corpse and retries with backoff.
        """
        read_fd, pid = self._fork_worker(slot)
        worker_port = self._await_ready(pid, read_fd)
        os.close(read_fd)
        if worker_port is None:
            if initial:
                logger.error("worker %d (slot %d) failed to become ready",
                             pid, slot)
                self._kill(pid, signal.SIGKILL)
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass
                self._children.pop(pid, None)
            else:
                self._kill(pid, signal.SIGKILL)  # reaped by the supervise loop
            return False
        if self._router is not None:
            self._router.set_backend(slot, ("127.0.0.1", worker_port))
        logger.info("worker slot %d ready (pid %d, port %d)",
                    slot, pid, worker_port)
        return True

    def _fork_worker(self, slot: int) -> Tuple[int, int]:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # -- child ------------------------------------------------------
            status = 1
            try:
                os.close(read_fd)
                self._worker_main(slot, write_fd)
                status = 0
            except BaseException:  # noqa: BLE001 - the child must never return
                traceback.print_exc()
            finally:
                os._exit(status)
        # -- parent ---------------------------------------------------------
        os.close(write_fd)
        self._children[pid] = slot
        self._spawned_at[pid] = time.monotonic()
        return read_fd, pid

    def _await_ready(self, pid: int, read_fd: int) -> Optional[int]:
        """Read the child's ``ready <port>`` line; None on death or timeout."""
        deadline = time.monotonic() + self.ready_timeout
        received = b""
        while b"\n" not in received:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            readable, _, _ = select.select([read_fd], [], [],
                                           min(remaining, 0.25))
            if not readable:
                try:
                    done, _status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    return None
                if done:
                    self._children.pop(pid, None)
                    return None
                continue
            piece = os.read(read_fd, 256)
            if not piece:
                return None  # child died before announcing readiness
            received += piece
        try:
            marker, port = received.decode("ascii").split(None, 1)
            if marker != "ready":
                return None
            return int(port.strip())
        except ValueError:
            return None

    # -- the worker process -------------------------------------------------------

    def _worker_main(self, slot: int, ready_fd: int) -> None:
        """Everything a worker runs between fork and ``os._exit``."""
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent coordinates
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        if self._placeholder is not None:
            self._placeholder.close()
        exchange = MetricsExchange(self._metrics_dir, slot)
        asyncio.run(self._worker_async(slot, ready_fd, exchange))

    async def _worker_async(self, slot: int, ready_fd: int,
                            exchange: MetricsExchange) -> None:
        if self.use_router:
            server = self.server_factory(host="127.0.0.1", port=0,
                                         reuse_port=False,
                                         metrics_exchange=exchange)
        else:
            server = self.server_factory(host=self.host, port=self.port,
                                         reuse_port=True,
                                         metrics_exchange=exchange)
        stop = asyncio.Event()
        asyncio.get_running_loop().add_signal_handler(signal.SIGTERM,
                                                      stop.set)
        await server.start()
        os.write(ready_fd, f"ready {server.port}\n".encode("ascii"))
        os.close(ready_fd)
        await stop.wait()
        # Graceful drain: the server stops accepting, answers late requests
        # on live keep-alive connections with 503 draining, and waits out
        # in-flight statements before the pool (and store) close.
        await server.stop()

    # -- supervision --------------------------------------------------------------

    def _supervise(self) -> None:
        """Reap exits, restart crashes with backoff, until told to stop."""
        while True:
            if self._stopping and not self._children:
                return
            try:
                pid, status = os.waitpid(-1, 0)
            except InterruptedError:  # pragma: no cover - PEP 475 retries
                continue
            except ChildProcessError:
                return
            slot = self._children.pop(pid, None)
            if slot is None:
                continue
            uptime = time.monotonic() - self._spawned_at.pop(pid, 0.0)
            if self._stopping:
                continue
            if self._router is not None:
                self._router.set_backend(slot, None)
            delay = self._next_backoff(slot, uptime)
            logger.warning(
                "worker slot %d (pid %d) exited with status %s after %.1fs; "
                "restarting in %.2fs", slot, pid,
                os.waitstatus_to_exitcode(status), uptime, delay)
            self._interruptible_sleep(delay)
            if self._stopping:
                continue
            self._boot_slot(slot, initial=False)

    def _next_backoff(self, slot: int, uptime: float) -> float:
        if uptime >= STABLE_UPTIME:
            self._backoff[slot] = self.backoff_base
        else:
            self._backoff[slot] = min(
                self.backoff_cap,
                self._backoff.get(slot, self.backoff_base / 2) * 2)
        return self._backoff[slot]

    def _interruptible_sleep(self, seconds: float) -> None:
        deadline = time.monotonic() + seconds
        while not self._stopping and time.monotonic() < deadline:
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))

    def _shutdown_children(self, grace: float = 15.0) -> None:
        """SIGTERM every child, wait for drains, SIGKILL stragglers."""
        if not self._children:
            return
        for pid in list(self._children):
            self._kill(pid, signal.SIGTERM)
        deadline = time.monotonic() + grace
        while self._children and time.monotonic() < deadline:
            try:
                pid, _status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                self._children.clear()
                break
            if pid:
                self._children.pop(pid, None)
            else:
                time.sleep(0.05)
        for pid in list(self._children):
            logger.warning("worker pid %d ignored SIGTERM; killing", pid)
            self._kill(pid, signal.SIGKILL)
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
            self._children.pop(pid, None)

    def __repr__(self) -> str:
        return (f"<FleetSupervisor {self.workers} workers "
                f"http://{self.host}:{self.port} {self.mode}>")
