"""A thin synchronous HTTP client for the UA-DB query server.

:class:`Client` wraps stdlib :class:`http.client.HTTPConnection` -- no
third-party dependencies -- and mirrors the session API's result shapes:
:meth:`Client.query` returns a :class:`QueryReply` with ``rows`` /
``certain`` / ``labeled_rows()`` accessors, :meth:`Client.execute` returns a
rowcount, and :meth:`Client.stream` iterates a large result as it arrives
over NDJSON.  Server-side failures raise :class:`ServerError` carrying the
structured error code from the JSON body.

One client holds one keep-alive connection and is **not** thread-safe; give
each thread its own instance (they are cheap).
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.db.relation import Row, _row_sort_key

__all__ = ["Client", "QueryReply", "ServerError"]

Params = Union[None, List[Any], Dict[str, Any]]


class ServerError(RuntimeError):
    """An error response from the server: HTTP status + structured code.

    ``code`` is the machine-readable identifier from the JSON body
    (``"parse_error"``, ``"pool_timeout"``, ...), ``status`` the HTTP status
    code, and the exception message the server's human-readable explanation.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class QueryReply:
    """A query answer as served over HTTP: rows plus certainty labels.

    ``rows`` holds the best-guess answer in result order (each row a tuple,
    JSON scalars only -- values that are not JSON-representable arrive as
    their ``repr``), ``certain`` the parallel under-approximation flags:
    ``certain[i]`` is True when ``rows[i]`` is in **every** possible world
    of the uncertain input.  ``columns``/``types`` describe the schema and
    ``elapsed_ms`` is the server-side evaluation time.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.columns: List[str] = payload["columns"]
        self.types: List[str] = payload["types"]
        self.rows: List[Row] = [tuple(row) for row in payload["rows"]]
        self.certain: List[bool] = payload["certain"]
        self.row_count: int = payload["row_count"]
        self.certain_count: int = payload["certain_count"]
        self.elapsed_ms: float = payload["elapsed_ms"]

    def labeled_rows(self) -> List[Tuple[Row, bool]]:
        """``(row, certain?)`` pairs sorted for stable output.

        Matches :meth:`repro.api.session.UAQueryResult.labeled_rows` (same
        sort key), so a client-side reply compares directly against an
        in-process oracle.
        """
        pairs = list(zip(self.rows, self.certain))
        pairs.sort(key=lambda pair: _row_sort_key(pair[0]))
        return pairs

    def certain_rows(self) -> List[Row]:
        """Rows labeled certain (the under-approximation of certain answers)."""
        return [row for row, flag in zip(self.rows, self.certain) if flag]

    def uncertain_rows(self) -> List[Row]:
        """Rows not labeled certain (best-guess answers that may not hold)."""
        return [row for row, flag in zip(self.rows, self.certain) if not flag]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (f"<QueryReply {len(self.rows)} rows "
                f"({self.certain_count} certain) in {self.elapsed_ms:.2f}ms>")


class Client:
    """A blocking JSON/HTTP client for one UA-DB server.

    ``timeout`` applies per request (socket-level).  The underlying
    keep-alive connection reconnects transparently if the server closed it
    between requests.  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- plumbing -----------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._connection

    def _reset(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None
                 ) -> http.client.HTTPResponse:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, default=repr).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # /execute is the one non-idempotent endpoint: an INSERT must never
        # be silently resent once its bytes may have reached the server.
        retry_after_send = path != "/execute"
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError):
                # The request could not be sent (typically a dead keep-alive
                # socket): reconnect and retry once, whatever the endpoint.
                self._reset()
                if attempt:
                    raise
                continue
            try:
                return connection.getresponse()
            except (http.client.HTTPException, ConnectionError, OSError) as error:
                self._reset()
                # A timeout is a slow server, not a dead socket: resending
                # would run the (already expensive) statement a second time.
                if isinstance(error, TimeoutError):
                    raise
                # The request went out and the connection dropped promptly
                # (typically a stale keep-alive closed under us).  Only
                # idempotent requests may retry; resending DDL/DML could
                # apply it twice.
                if attempt or not retry_after_send:
                    raise
        raise AssertionError("unreachable")

    def _json(self, method: str, path: str,
              payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        response = self._request(method, path, payload)
        data = response.read()
        parsed = json.loads(data) if data else {}
        if response.status >= 400:
            error = parsed.get("error", {}) if isinstance(parsed, dict) else {}
            raise ServerError(response.status,
                              error.get("code", "unknown"),
                              error.get("message", data.decode("utf-8",
                                                               "replace")))
        return parsed

    # -- endpoints ----------------------------------------------------------------

    def query(self, sql: str, params: Params = None,
              mode: str = "rewritten") -> QueryReply:
        """Run a ``SELECT`` and fetch the whole UA-labeled answer.

        ``mode="direct"`` evaluates K_UA semantics without the Figure 8/9
        rewriting (the validation path); the default runs the rewritten
        query over the encoded database.
        """
        payload: Dict[str, Any] = {"sql": sql, "mode": mode}
        if params is not None:
            payload["params"] = params
        return QueryReply(self._json("POST", "/query", payload))

    def stream(self, sql: str, params: Params = None,
               mode: str = "rewritten") -> Iterator[Tuple[Row, bool]]:
        """Run a ``SELECT`` and yield ``(row, certain?)`` pairs as they arrive.

        The server answers with chunked NDJSON; rows are decoded
        incrementally, so arbitrarily large results never materialize as one
        JSON document on either side.  The generator must be consumed (or
        closed) before the client is used again -- one connection, one
        in-flight response.
        """
        payload: Dict[str, Any] = {"sql": sql, "mode": mode, "stream": True}
        if params is not None:
            payload["params"] = params
        response = self._request("POST", "/query", payload)
        if response.status >= 400:
            data = response.read()
            parsed = json.loads(data) if data else {}
            error = parsed.get("error", {}) if isinstance(parsed, dict) else {}
            raise ServerError(response.status, error.get("code", "unknown"),
                              error.get("message", ""))

        def rows() -> Iterator[Tuple[Row, bool]]:
            completed = False
            try:
                header_line = response.readline()
                json.loads(header_line)  # {"columns": ..., "types": ...}
                while True:
                    line = response.readline()
                    if not line:
                        break
                    record = json.loads(line)
                    if "row" not in record:
                        break  # trailing summary line
                    yield tuple(record["row"]), record["certain"]
                completed = True
            finally:
                if completed:
                    # Drain the (empty) tail: the keep-alive socket stays
                    # usable for the next request.
                    response.read()
                else:
                    # Abandoned mid-stream: dropping the connection is far
                    # cheaper than reading an arbitrarily large remainder.
                    self._reset()

        return rows()

    def execute(self, sql: str, params: Params = None) -> int:
        """Run one DDL/DML statement; returns the affected row count."""
        payload: Dict[str, Any] = {"sql": sql}
        if params is not None:
            payload["params"] = params
        return self._json("POST", "/execute", payload)["rowcount"]

    def executemany(self, sql: str, seq_of_params: List[Params]) -> int:
        """Run a DML statement once per parameter set (compiled once)."""
        payload = {"sql": sql, "params_seq": list(seq_of_params)}
        return self._json("POST", "/execute", payload)["rowcount"]

    def tables(self) -> List[Dict[str, Any]]:
        """Catalog metadata: name, columns and row count per relation."""
        return self._json("GET", "/tables")["tables"]

    def healthz(self) -> Dict[str, Any]:
        """The server's liveness/configuration report."""
        return self._json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """Request counters, latency percentiles, cache and pool gauges."""
        return self._json("GET", "/metrics")

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Drop the keep-alive connection (the client stays reusable)."""
        self._reset()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<Client http://{self.host}:{self.port}>"
