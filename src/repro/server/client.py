"""A thin synchronous HTTP client for the UA-DB query server.

:class:`Client` wraps stdlib :class:`http.client.HTTPConnection` -- no
third-party dependencies -- and mirrors the session API's result shapes:
:meth:`Client.query` returns a :class:`QueryReply` with ``rows`` /
``certain`` / ``labeled_rows()`` accessors, :meth:`Client.execute` returns a
rowcount, and :meth:`Client.stream` iterates a large result as it arrives
over NDJSON.

Server-side failures raise a **typed** exception hierarchy rooted at
:class:`ServerError`, mapped from the structured JSON error body: client
mistakes are :class:`BadRequestError`, credential problems
:class:`AuthError`, rate limiting :class:`RateLimitedError`, transient
refusals (pool saturation, a draining fleet worker, write-lock contention)
:class:`ServerUnavailableError`, server bugs :class:`InternalServerError`,
and a connection dying inside a streamed result :class:`StreamInterrupted`.

The client retries transparently, with exponential backoff and jitter, in
exactly the cases where a retry cannot double-apply work: connection-phase
failures (the request never went out), and error responses the server
explicitly marks ``retryable`` -- ``429`` (honoring ``Retry-After``) and
``503`` refusals, which the server issues strictly *before* dispatching the
statement.  A response **timeout** is never retried (the statement may still
be running), and a request whose bytes may have reached the server is never
re-sent on ``/execute`` unless the server's refusal proves it was not acted
on.  Set ``max_retries=0`` to observe every error directly.

One client holds one keep-alive connection and is **not** thread-safe; give
each thread its own instance (they are cheap).
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.db.relation import Row, _row_sort_key

__all__ = [
    "AuthError",
    "BadRequestError",
    "Client",
    "InternalServerError",
    "LoadReply",
    "QueryReply",
    "RateLimitedError",
    "ServerError",
    "ServerUnavailableError",
    "StreamInterrupted",
]

Params = Union[None, List[Any], Dict[str, Any]]

#: Upper bound on how long one server-directed ``Retry-After`` is honored.
MAX_RETRY_AFTER = 30.0


class ServerError(RuntimeError):
    """An error response from the server: HTTP status + structured code.

    ``code`` is the machine-readable identifier from the JSON body
    (``"parse_error"``, ``"pool_timeout"``, ...), ``status`` the HTTP status
    code, ``retryable`` whether the server marked the condition transient,
    ``retry_after`` the server-suggested wait in seconds (rate limiting and
    draining), and the exception message the human-readable explanation.
    Concrete subclasses classify the failure; catching :class:`ServerError`
    catches them all.
    """

    def __init__(self, status: int, code: str, message: str,
                 retryable: bool = False,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retryable = retryable
        self.retry_after = retry_after


class BadRequestError(ServerError):
    """The request itself is wrong (4xx): bad SQL, bad params, bad shape.

    Never retried -- re-sending an unparseable query cannot help.
    """


class AuthError(ServerError):
    """Missing, malformed or unknown bearer token (401).

    Never retried: fix the ``token`` the client was constructed with.
    """


class RateLimitedError(ServerError):
    """The per-client token bucket ran dry (429).

    Always retryable; :attr:`retry_after` carries the server's
    ``Retry-After`` hint, which the client's retry loop honors.
    """


class ServerUnavailableError(ServerError):
    """A transient refusal (503): pool saturated, write lock contended, or
    the worker is draining for shutdown.

    The server issues these strictly before dispatching the statement, so
    re-sending -- which the retry loop does, with backoff -- cannot apply
    work twice, even on ``/execute``.
    """


class InternalServerError(ServerError):
    """The server failed evaluating the request (5xx other than 503).

    Not retried by default: the same statement would likely fail the same
    way, and on ``/execute`` the failure point is unknown.
    """


class StreamInterrupted(ServerError):
    """The connection died inside a streamed (NDJSON) result.

    Rows already yielded are valid; the remainder was lost and streaming
    resume is not supported -- re-run the query (``retryable`` is True: a
    ``SELECT`` is safe to re-send).
    """

    def __init__(self, message: str) -> None:
        super().__init__(0, "stream_interrupted", message, retryable=True)


def _classify(status: int, code: str, message: str, retryable: bool,
              retry_after: Optional[float]) -> ServerError:
    """Build the typed exception for one structured error response."""
    if status == 401:
        cls = AuthError
    elif status == 429:
        cls = RateLimitedError
        retryable = True
    elif status == 503:
        cls = ServerUnavailableError
    elif status >= 500:
        cls = InternalServerError
    else:
        cls = BadRequestError
    return cls(status, code, message, retryable=retryable,
               retry_after=retry_after)


class QueryReply:
    """A query answer as served over HTTP: rows plus certainty labels.

    ``rows`` holds the best-guess answer in result order (each row a tuple,
    JSON scalars only -- values that are not JSON-representable arrive as
    their ``repr``), ``certain`` the parallel under-approximation flags:
    ``certain[i]`` is True when ``rows[i]`` is in **every** possible world
    of the uncertain input.  ``columns``/``types`` describe the schema and
    ``elapsed_ms`` is the server-side evaluation time.

    Attribute-mode answers (``mode="attribute"``) additionally carry
    ``bounds``: one record per row with ``"cells"`` (per-attribute
    ``[lower, best, upper]`` triples) and ``"multiplicity"`` (the
    fragment's ``[m_lb, m_bg, m_ub]`` triple).  ``bounds`` is ``None``
    for tuple-level replies.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.columns: List[str] = payload["columns"]
        self.types: List[str] = payload["types"]
        self.rows: List[Row] = [tuple(row) for row in payload["rows"]]
        self.certain: List[bool] = payload["certain"]
        self.row_count: int = payload["row_count"]
        self.certain_count: int = payload["certain_count"]
        self.elapsed_ms: float = payload["elapsed_ms"]
        self.bounds: Optional[List[Dict[str, Any]]] = payload.get("bounds")

    def labeled_rows(self) -> List[Tuple[Row, bool]]:
        """``(row, certain?)`` pairs sorted for stable output.

        Matches :meth:`repro.api.session.UAQueryResult.labeled_rows` (same
        sort key), so a client-side reply compares directly against an
        in-process oracle.
        """
        pairs = list(zip(self.rows, self.certain))
        pairs.sort(key=lambda pair: _row_sort_key(pair[0]))
        return pairs

    def certain_rows(self) -> List[Row]:
        """Rows labeled certain (the under-approximation of certain answers)."""
        return [row for row, flag in zip(self.rows, self.certain) if flag]

    def uncertain_rows(self) -> List[Row]:
        """Rows not labeled certain (best-guess answers that may not hold)."""
        return [row for row, flag in zip(self.rows, self.certain) if not flag]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (f"<QueryReply {len(self.rows)} rows "
                f"({self.certain_count} certain) in {self.elapsed_ms:.2f}ms>")


class LoadReply:
    """The aggregated outcome of one :meth:`Client.load` bulk upload.

    A client-side load splits into as many ``POST /load`` requests as the
    server's body limit requires; this object folds their per-request
    reports into batch totals.  ``requests`` is how many HTTP round trips
    the batch took, ``chunks`` how many WAL transactions the server
    committed, ``reports`` the raw per-request server reports (each with
    its own per-chunk breakdown) in submission order.
    """

    def __init__(self, table: str) -> None:
        self.table = table
        #: Total rows committed across every request of the batch.
        self.rows = 0
        #: Rows the server's uncertainty policy flagged uncertain.
        self.uncertain_rows = 0
        #: WAL transactions (= stats folds = version bumps) committed.
        self.chunks = 0
        #: HTTP requests the batch was split into.
        self.requests = 0
        #: Server-side seconds summed over the batch's requests.
        self.server_seconds = 0.0
        #: Client wall-clock seconds for the whole batch (set by ``load``).
        self.seconds = 0.0
        #: True when the first request created the table.
        self.created = False
        #: Raw per-request server reports, in submission order.
        self.reports: List[Dict[str, Any]] = []

    def add(self, report: Dict[str, Any]) -> None:
        """Fold one ``POST /load`` response into the batch totals."""
        self.requests += 1
        self.rows += report.get("rows", 0)
        self.uncertain_rows += report.get("uncertain_rows", 0)
        self.chunks += report.get("chunks", 0)
        self.server_seconds += report.get("seconds", 0.0)
        self.created = self.created or bool(report.get("created"))
        self.reports.append(report)

    @property
    def rows_per_second(self) -> float:
        """Sustained end-to-end ingest rate seen by the client."""
        return self.rows / self.seconds if self.seconds > 0 else 0.0

    def __repr__(self) -> str:
        return (f"<LoadReply {self.table!r} {self.rows} rows in "
                f"{self.chunks} chunks over {self.requests} requests "
                f"({self.rows_per_second:.0f} rows/s)>")


class Client:
    """A blocking JSON/HTTP client for one UA-DB server.

    ``timeout`` applies per request (socket-level).  ``token`` is sent as an
    ``Authorization: Bearer`` header when the server enforces
    authentication.  ``max_retries`` bounds the transparent retries of
    retryable failures (0 disables them; connection-phase failures still get
    the single legacy reconnect so a recycled keep-alive socket stays
    invisible); ``backoff_base``/``backoff_cap`` shape the exponential
    backoff between attempts, always with jitter so a fleet of clients does
    not retry in lockstep.  The underlying keep-alive connection reconnects
    transparently if the server closed it between requests.  Use as a
    context manager or call :meth:`close`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 30.0, token: Optional[str] = None,
                 max_retries: int = 3, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.token = token
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._connection: Optional[http.client.HTTPConnection] = None
        self._max_body_bytes: Optional[int] = None

    # -- plumbing -----------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._connection

    def _reset(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _backoff_sleep(self, attempt: int,
                       retry_after: Optional[float] = None) -> None:
        """Wait before retry ``attempt`` (1-based), with jitter.

        A server-directed ``Retry-After`` overrides the exponential
        schedule -- the server knows when the bucket refills.
        """
        if retry_after is not None:
            delay = min(max(retry_after, 0.0), MAX_RETRY_AFTER)
        else:
            delay = min(self.backoff_cap,
                        self.backoff_base * (2 ** (attempt - 1)))
        time.sleep(delay + random.uniform(0, self.backoff_base))

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 body: Optional[bytes] = None,
                 content_type: str = "application/json"
                 ) -> http.client.HTTPResponse:
        headers = {}
        if payload is not None:
            body = json.dumps(payload, default=repr).encode("utf-8")
            headers["Content-Type"] = "application/json"
        elif body is not None:
            headers["Content-Type"] = content_type
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        # /execute and /load are the non-idempotent endpoints: a write must
        # never be silently resent once its bytes may have reached the
        # server.
        retry_after_send = path not in ("/execute", "/load")
        attempts = max(2, self.max_retries + 1)
        for attempt in range(attempts):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError):
                # The request could not be sent (a dead keep-alive socket,
                # or a fleet worker that just went away): reconnect and
                # retry with backoff, whatever the endpoint -- nothing
                # reached the server.
                self._reset()
                if attempt == attempts - 1:
                    raise
                self._backoff_sleep(attempt + 1)
                continue
            try:
                return connection.getresponse()
            except (http.client.HTTPException, ConnectionError, OSError) as error:
                self._reset()
                # A timeout is a slow server, not a dead socket: resending
                # would run the (already expensive) statement a second time.
                if isinstance(error, TimeoutError):
                    raise
                # The request went out and the connection dropped promptly
                # (typically a stale keep-alive closed under us).  Only
                # idempotent requests may retry; resending DDL/DML could
                # apply it twice.
                if attempt == attempts - 1 or not retry_after_send:
                    raise
                self._backoff_sleep(attempt + 1)
        raise AssertionError("unreachable")

    @staticmethod
    def _error_from(response: http.client.HTTPResponse,
                    data: bytes, parsed: Any) -> ServerError:
        """The typed exception for an already-read >=400 response."""
        error = parsed.get("error", {}) if isinstance(parsed, dict) else {}
        if not isinstance(error, dict):
            error = {}
        retry_after: Optional[float] = None
        header = response.getheader("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                retry_after = None
        return _classify(
            response.status,
            error.get("code", "unknown"),
            error.get("message", data.decode("utf-8", "replace")),
            bool(error.get("retryable", False)),
            retry_after)

    def _json(self, method: str, path: str,
              payload: Optional[Dict[str, Any]] = None,
              body: Optional[bytes] = None,
              content_type: str = "application/json") -> Dict[str, Any]:
        retries = 0
        while True:
            response = self._request(method, path, payload, body=body,
                                     content_type=content_type)
            data = response.read()
            parsed = json.loads(data) if data else {}
            if response.status < 400:
                return parsed
            error = self._error_from(response, data, parsed)
            # Only server-marked transient refusals retry; they are issued
            # before the statement is dispatched, so a re-send -- /execute
            # included -- cannot double-apply work.
            if not error.retryable or retries >= self.max_retries:
                raise error
            retries += 1
            self._backoff_sleep(retries, error.retry_after)

    # -- endpoints ----------------------------------------------------------------

    def query(self, sql: str, params: Params = None,
              mode: str = "rewritten") -> QueryReply:
        """Run a ``SELECT`` and fetch the whole UA-labeled answer.

        ``mode="direct"`` evaluates K_UA semantics without the Figure 8/9
        rewriting (the validation path); the default runs the rewritten
        query over the encoded database.  ``mode="attribute"`` runs the
        AU-DB range rewriting -- the reply's :attr:`QueryReply.bounds`
        then carries per-cell ``[lower, best, upper]`` triples and
        fragment multiplicities.
        """
        payload: Dict[str, Any] = {"sql": sql, "mode": mode}
        if params is not None:
            payload["params"] = params
        return QueryReply(self._json("POST", "/query", payload))

    def stream(self, sql: str, params: Params = None,
               mode: str = "rewritten") -> Iterator[Tuple[Row, bool]]:
        """Run a ``SELECT`` and yield ``(row, certain?)`` pairs as they arrive.

        The server answers with chunked NDJSON; rows are decoded
        incrementally, so arbitrarily large results never materialize as one
        JSON document on either side.  The generator must be consumed (or
        closed) before the client is used again -- one connection, one
        in-flight response.  A connection dying mid-stream raises
        :class:`StreamInterrupted` (resume is not supported; re-run the
        query).  In ``mode="attribute"`` the yielded pairs are the
        best-guess rows with fragment-certainty flags; use :meth:`query`
        when the per-cell ``bounds`` records are needed.
        """
        payload: Dict[str, Any] = {"sql": sql, "mode": mode, "stream": True}
        if params is not None:
            payload["params"] = params
        retries = 0
        while True:
            response = self._request("POST", "/query", payload)
            if response.status < 400:
                break
            data = response.read()
            parsed = json.loads(data) if data else {}
            error = self._error_from(response, data, parsed)
            if not error.retryable or retries >= self.max_retries:
                raise error
            retries += 1
            self._backoff_sleep(retries, error.retry_after)

        def rows() -> Iterator[Tuple[Row, bool]]:
            completed = False
            try:
                try:
                    header_line = response.readline()
                    if not header_line:
                        raise StreamInterrupted(
                            "connection closed before the stream header")
                    json.loads(header_line)  # {"columns": ..., "types": ...}
                    while True:
                        line = response.readline()
                        if not line:
                            # The summary line terminates a complete stream;
                            # EOF before it means the worker died mid-result.
                            raise StreamInterrupted(
                                "connection closed mid-stream; rows beyond "
                                "this point were lost (re-run the query)")
                        record = json.loads(line)
                        if "row" not in record:
                            break  # trailing summary line
                        yield tuple(record["row"]), record["certain"]
                    completed = True
                except StreamInterrupted:
                    raise
                except (http.client.HTTPException, ConnectionError, OSError,
                        ValueError) as error:
                    # IncompleteRead, a reset socket, or a torn NDJSON line:
                    # all the same condition -- the stream did not finish.
                    raise StreamInterrupted(
                        f"stream failed mid-result: {error}") from error
            finally:
                if completed:
                    # Drain the (empty) tail: the keep-alive socket stays
                    # usable for the next request.
                    response.read()
                else:
                    # Abandoned or interrupted mid-stream: dropping the
                    # connection is far cheaper than reading an arbitrarily
                    # large remainder.
                    self._reset()

        return rows()

    def execute(self, sql: str, params: Params = None) -> int:
        """Run one DDL/DML statement; returns the affected row count."""
        payload: Dict[str, Any] = {"sql": sql}
        if params is not None:
            payload["params"] = params
        return self._json("POST", "/execute", payload)["rowcount"]

    def executemany(self, sql: str, seq_of_params: List[Params]) -> int:
        """Run a DML statement once per parameter set (compiled once)."""
        payload = {"sql": sql, "params_seq": list(seq_of_params)}
        return self._json("POST", "/execute", payload)["rowcount"]

    def max_body_bytes(self) -> int:
        """The server's advertised request-body limit, cached per client.

        Read from ``GET /healthz`` (the ``limits.max_body_bytes`` field);
        servers from before the field advertise nothing and the 16 MiB
        protocol default is assumed.  :meth:`load` sizes its uploads from
        this, so an oversized batch never has to learn the limit from a
        413.
        """
        if self._max_body_bytes is None:
            limits = self.healthz().get("limits", {})
            self._max_body_bytes = int(
                limits.get("max_body_bytes", 16 * 1024 * 1024))
        return self._max_body_bytes

    def load(self, table: str, source: object, *,
             columns: Optional[List[str]] = None, create: bool = True,
             chunk_size: Optional[int] = None,
             uncertainty: Optional[str] = None,
             format: Optional[str] = None,
             max_request_bytes: Optional[int] = None,
             **source_options: Any) -> LoadReply:
        """Bulk-load rows into the server, chunked to its body limit.

        ``source`` is anything :func:`repro.ingest.sources.open_source`
        accepts -- a CSV/NDJSON path (read locally, streamed out) or an
        iterable of records (tuples/lists or dicts).  Records are
        serialized as NDJSON and shipped in as many ``POST /load``
        requests as needed: each request is auto-sized to the server's
        advertised ``max_body_bytes`` (override with ``max_request_bytes``),
        and the server commits it in WAL-transaction chunks of
        ``chunk_size`` rows.  When ``chunk_size`` is given, request
        boundaries are aligned to whole chunks (a byte-limited flush sends
        the largest multiple of ``chunk_size`` rows and carries the
        remainder), so every WAL transaction holds exactly the rows of one
        client-side chunk -- concurrent readers then observe chunks
        all-or-nothing.  ``uncertainty`` is the server-side load policy
        (``"certain"``, ``"flag"`` or ``"impute"``).

        Transient refusals (a contended write lock, a draining worker)
        are retried with the standard backoff *before* a request is
        dispatched; like ``/execute``, a request whose bytes may have
        reached the server is never silently resent.  Returns a
        :class:`LoadReply` with batch totals and per-request reports.
        """
        from repro.ingest.sources import IngestError, open_source

        resolved = open_source(source, format=format, columns=columns,
                               **source_options)
        limit = max_request_bytes or self.max_body_bytes()
        reply = LoadReply(table)
        started = time.monotonic()

        def header_bytes() -> bytes:
            header: Dict[str, Any] = {"table": table, "create": create}
            names = columns or resolved.columns
            if names is not None:
                header["columns"] = list(names)
            if chunk_size is not None:
                header["chunk_size"] = chunk_size
            if uncertainty is not None:
                header["uncertainty"] = uncertainty
            return json.dumps(header, separators=(",", ":")).encode("utf-8")

        def flush(lines: List[bytes]) -> None:
            body = b"\n".join([header_bytes()] + lines)
            reply.add(self._json("POST", "/load", body=body,
                                 content_type="application/x-ndjson"))

        buffered: List[bytes] = []
        buffered_bytes = 0
        for record in resolved:
            if isinstance(record, dict):
                line = json.dumps(record, default=repr).encode("utf-8")
            else:
                line = json.dumps(list(record), default=repr).encode("utf-8")
            # Header size depends on source.columns, which file sources
            # discover while reading; re-measure it per flush decision.
            overhead = len(header_bytes()) + 1
            if len(line) + overhead > limit:
                raise IngestError(
                    f"one record serializes to {len(line)} bytes, over the "
                    f"server's {limit} byte request limit")
            if buffered and overhead + buffered_bytes + len(line) + 1 > limit:
                sent = len(buffered)
                if chunk_size and sent > chunk_size:
                    # Align the flush to whole chunks so WAL-transaction
                    # boundaries match client-side chunk boundaries.
                    sent = (sent // chunk_size) * chunk_size
                flush(buffered[:sent])
                buffered = buffered[sent:]
                buffered_bytes = sum(len(kept) + 1 for kept in buffered)
            buffered.append(line)
            buffered_bytes += len(line) + 1
        if buffered:
            flush(buffered)
        reply.seconds = time.monotonic() - started
        return reply

    def tables(self) -> List[Dict[str, Any]]:
        """Catalog metadata: name, columns and row count per relation."""
        return self._json("GET", "/tables")["tables"]

    def healthz(self) -> Dict[str, Any]:
        """The server's liveness/configuration report."""
        return self._json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """Request counters, latency percentiles, cache and pool gauges."""
        return self._json("GET", "/metrics")

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Drop the keep-alive connection (the client stays reusable)."""
        self._reset()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<Client http://{self.host}:{self.port}>"
