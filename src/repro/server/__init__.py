"""An asyncio HTTP/JSON query service over the UA-DB connection pool.

The server is the repo's first multi-process-capable front door: where
:func:`repro.connect` requires an in-process import, ``repro.server`` puts a
socket in front of a :class:`~repro.api.pool.ConnectionPool` so any
HTTP-speaking client can run parameterized SQL against a (persistent or
in-memory) UA-database and get back best-guess rows annotated with the
paper's certain-answer under-approximation.

Three ways in, all stdlib-only (``asyncio`` streams, no web framework):

* ``python -m repro.server --store app.uadb --port 8080`` -- the CLI,
* :class:`UADBServer` / :func:`serve` -- inside an asyncio program,
* :class:`ServerThread` -- a background-thread server for tests, examples
  and notebooks, paired with the synchronous :class:`Client`.

Endpoints: ``POST /query`` (SELECT, optional NDJSON streaming),
``POST /execute`` (DDL/DML), ``GET /tables``, ``GET /healthz``,
``GET /metrics``.  Queries run on a worker-thread executor (the event loop
never blocks on the GIL-bound engines) and concurrently under the pool's
shared read lock; writes serialize through its writer lock.  Typed errors
from every layer map to JSON ``{"error": {"code", "message", "retryable"}}``
bodies -- see ``ERROR_MAP`` in :mod:`repro.server.app` -- which the client
raises as a typed exception hierarchy rooted at :class:`ServerError`.

``python -m repro.server --store app.uadb --workers 4`` scales the same
server to a pre-forked fleet: see :mod:`repro.server.fleet` for the
supervisor, cross-process write coordination, the HTTP result cache, and
authentication/rate limiting.
"""

from repro.server.app import ServerThread, UADBServer, serve
from repro.server.client import (AuthError, BadRequestError, Client,
                                 InternalServerError, QueryReply,
                                 RateLimitedError, ServerError,
                                 ServerUnavailableError, StreamInterrupted)
from repro.server.http import HTTPError, Request
from repro.server.metrics import ServerMetrics

__all__ = [
    "AuthError",
    "BadRequestError",
    "Client",
    "HTTPError",
    "InternalServerError",
    "QueryReply",
    "RateLimitedError",
    "Request",
    "ServerError",
    "ServerMetrics",
    "ServerThread",
    "ServerUnavailableError",
    "StreamInterrupted",
    "UADBServer",
    "serve",
]
