"""``python -m repro.server`` -- run the UA-DB HTTP query server.

Examples::

    python -m repro.server                              # in-memory, port 8080
    python -m repro.server --store app.uadb --port 9000 # persistent store
    python -m repro.server --engine sqlite --pool-size 16

Then::

    curl -s localhost:8080/healthz
    curl -s -X POST localhost:8080/execute \\
         -d '{"sql": "CREATE TABLE t (a INT, b TEXT)"}'
    curl -s -X POST localhost:8080/execute \\
         -d '{"sql": "INSERT INTO t VALUES (?, ?)", "params": [1, "x"]}'
    curl -s -X POST localhost:8080/query \\
         -d '{"sql": "SELECT a, b FROM t"}'

Stops gracefully on Ctrl-C / SIGTERM: in-flight requests drain, the pool
(and its store, if any) closes cleanly.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import logging
import signal
import sys
from typing import List, Optional

from repro.core.encoding import STORABLE_SEMIRINGS
from repro.db.engine import available_engines
from repro.server.app import UADBServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a UA-database over HTTP/JSON.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080,
                        help="port to bind; 0 picks an ephemeral port "
                             "(default: 8080)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="back the catalog with a persistent .uadb file "
                             "(created if missing; default: in-memory)")
    parser.add_argument("--engine", default=None,
                        help=f"execution engine "
                             f"({', '.join(available_engines())}; "
                             f"default: REPRO_ENGINE or row)")
    parser.add_argument("--semiring", default=None,
                        help=f"annotation semiring by name "
                             f"({', '.join(sorted(STORABLE_SEMIRINGS))}; "
                             f"default: N, or the store's persisted one)")
    parser.add_argument("--pool-size", type=int, default=8, metavar="N",
                        help="max concurrent pooled connections (default: 8)")
    parser.add_argument("--cache-size", type=int, default=256, metavar="N",
                        help="prepared-plan cache entries (default: 256)")
    parser.add_argument("--checkout-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="how long a request waits for a pooled "
                             "connection before 503 (default: 30)")
    parser.add_argument("--no-optimize", action="store_true",
                        help="disable the logical optimizer")
    parser.add_argument("--log-level", default="info",
                        choices=["debug", "info", "warning", "error"],
                        help="logging verbosity (default: info)")
    return parser


async def _serve(args: argparse.Namespace) -> None:
    semiring = (STORABLE_SEMIRINGS[args.semiring]
                if args.semiring is not None else None)
    server = UADBServer(
        host=args.host, port=args.port, store=args.store, semiring=semiring,
        engine=args.engine, optimize=False if args.no_optimize else None,
        cache_size=args.cache_size, max_connections=args.pool_size,
        checkout_timeout=args.checkout_timeout)
    await server.start()
    host, port = server.address
    logging.getLogger("repro.server").info(
        "serving UA-DB (%s engine, %s) on http://%s:%d",
        server._engine_name(),
        args.store or "in-memory", host, port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # non-POSIX loops
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        logging.getLogger("repro.server").info("shutting down")
        await server.stop()


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and serve until SIGINT/SIGTERM; returns an exit code."""
    args = _build_parser().parse_args(argv)
    if args.semiring is not None and args.semiring not in STORABLE_SEMIRINGS:
        print(f"unknown semiring {args.semiring!r}; available: "
              f"{', '.join(sorted(STORABLE_SEMIRINGS))}", file=sys.stderr)
        return 2
    if args.engine is not None and args.engine.lower() not in available_engines():
        print(f"unknown engine {args.engine!r}; available: "
              f"{', '.join(available_engines())}", file=sys.stderr)
        return 2
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
