"""``python -m repro.server`` -- run the UA-DB HTTP query server.

Examples::

    python -m repro.server                              # in-memory, port 8080
    python -m repro.server --store app.uadb --port 9000 # persistent store
    python -m repro.server --engine sqlite --pool-size 16
    python -m repro.server --store app.uadb --workers 4 # pre-forked fleet
    python -m repro.server --store app.uadb --workers 2 --router \\
        --tokens tokens.json --result-cache-mb 128

Then::

    curl -s localhost:8080/healthz
    curl -s -X POST localhost:8080/execute \\
         -d '{"sql": "CREATE TABLE t (a INT, b TEXT)"}'
    curl -s -X POST localhost:8080/execute \\
         -d '{"sql": "INSERT INTO t VALUES (?, ?)", "params": [1, "x"]}'
    curl -s -X POST localhost:8080/query \\
         -d '{"sql": "SELECT a, b FROM t"}'

Passing ``--workers N`` serves through the pre-forked fleet supervisor: N
worker processes share the port via ``SO_REUSEPORT`` (or the ``--router``
round-robin proxy), coordinate writes over the shared ``--store`` file, and
are restarted by the supervisor if they crash (N > 1 requires ``--store``;
``--workers 1`` is a supervised fleet of one, useful as a like-for-like
baseline).  The fleet prints one ``FLEET READY http://host:port workers=N
mode=...`` line on stdout once every worker accepts connections.

Stops gracefully on Ctrl-C / SIGTERM: in-flight requests drain, the pool
(and its store, if any) closes cleanly; the supervisor forwards the signal
so every worker of a fleet drains the same way.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import logging
import signal
import sys
from typing import List, Optional

from repro.core.encoding import STORABLE_SEMIRINGS
from repro.db.engine import available_engines
from repro.server.app import UADBServer
from repro.server.fleet import (FleetSupervisor, ResultCache, SecurityPolicy,
                                reuseport_available)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a UA-database over HTTP/JSON.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080,
                        help="port to bind; 0 picks an ephemeral port "
                             "(default: 8080)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="back the catalog with a persistent .uadb file "
                             "(created if missing; default: in-memory)")
    parser.add_argument("--engine", default=None,
                        help=f"execution engine "
                             f"({', '.join(available_engines())}; "
                             f"default: REPRO_ENGINE or row)")
    parser.add_argument("--semiring", default=None,
                        help=f"annotation semiring by name "
                             f"({', '.join(sorted(STORABLE_SEMIRINGS))}; "
                             f"default: N, or the store's persisted one)")
    parser.add_argument("--pool-size", type=int, default=8, metavar="N",
                        help="max concurrent pooled connections (default: 8)")
    parser.add_argument("--cache-size", type=int, default=256, metavar="N",
                        help="prepared-plan cache entries (default: 256)")
    parser.add_argument("--checkout-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="how long a request waits for a pooled "
                             "connection before 503 (default: 30)")
    parser.add_argument("--no-optimize", action="store_true",
                        help="disable the logical optimizer")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes; passing the flag (any N >= 1) "
                             "serves through the pre-forked fleet supervisor "
                             "-- N > 1 shares --store and the port across "
                             "processes (default: single-process, no "
                             "supervisor)")
    parser.add_argument("--router", action="store_true",
                        help="balance fleet connections through an asyncio "
                             "round-robin router instead of SO_REUSEPORT "
                             "(the automatic fallback where the kernel "
                             "lacks it)")
    parser.add_argument("--tokens", default=None, metavar="PATH",
                        help="JSON file of bearer tokens and per-client "
                             "rate limits; enables authentication")
    parser.add_argument("--rate", type=float, default=None, metavar="R",
                        help="default per-client rate limit in requests/s "
                             "(default: unlimited)")
    parser.add_argument("--burst", type=float, default=None, metavar="B",
                        help="per-client burst size for --rate "
                             "(default: one second of traffic)")
    parser.add_argument("--result-cache-mb", type=float, default=0.0,
                        metavar="MB",
                        help="HTTP result cache budget in MiB; 0 disables "
                             "(default: 0)")
    parser.add_argument("--log-level", default="info",
                        choices=["debug", "info", "warning", "error"],
                        help="logging verbosity (default: info)")
    return parser


def _build_policy(args: argparse.Namespace) -> Optional[SecurityPolicy]:
    """The security middleware the CLI flags ask for, or None for open."""
    if args.tokens is not None:
        policy = SecurityPolicy.from_file(args.tokens)
        if args.rate is not None and policy.default_rate is None:
            policy.default_rate = args.rate
        if args.burst is not None and policy.default_burst is None:
            policy.default_burst = args.burst
        return policy
    if args.rate is not None:
        return SecurityPolicy(default_rate=args.rate,
                              default_burst=args.burst)
    return None


def _server_kwargs(args: argparse.Namespace) -> dict:
    """UADBServer construction kwargs shared by both serving modes."""
    semiring = (STORABLE_SEMIRINGS[args.semiring]
                if args.semiring is not None else None)
    kwargs = dict(
        store=args.store, semiring=semiring, engine=args.engine,
        optimize=False if args.no_optimize else None,
        cache_size=args.cache_size, max_connections=args.pool_size,
        checkout_timeout=args.checkout_timeout)
    if args.result_cache_mb > 0:
        kwargs["result_cache"] = ResultCache(
            max_bytes=int(args.result_cache_mb * 1024 * 1024))
    policy = _build_policy(args)
    if policy is not None:
        kwargs["policy"] = policy
    return kwargs


async def _serve(args: argparse.Namespace) -> None:
    server = UADBServer(host=args.host, port=args.port, **_server_kwargs(args))
    await server.start()
    host, port = server.address
    logging.getLogger("repro.server").info(
        "serving UA-DB (%s engine, %s) on http://%s:%d",
        server._engine_name(),
        args.store or "in-memory", host, port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # non-POSIX loops
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        logging.getLogger("repro.server").info("shutting down")
        await server.stop()


def _serve_fleet(args: argparse.Namespace) -> int:
    """Boot a pre-forked fleet and supervise it until SIGTERM/SIGINT."""

    def factory(host: str, port: int, reuse_port: bool,
                metrics_exchange) -> UADBServer:
        # Runs inside each freshly forked worker: pools, stores and caches
        # are strictly per-process.  Only --store backed fleets get here
        # (main() enforces it), so workers share one catalog through the
        # cross-process coordination protocol.
        return UADBServer(host=host, port=port, reuse_port=reuse_port,
                          metrics_exchange=metrics_exchange,
                          **_server_kwargs(args))

    supervisor = FleetSupervisor(factory, workers=args.workers,
                                 host=args.host, port=args.port,
                                 use_router=args.router)
    return supervisor.run()


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and serve until SIGINT/SIGTERM; returns an exit code."""
    args = _build_parser().parse_args(argv)
    if args.semiring is not None and args.semiring not in STORABLE_SEMIRINGS:
        print(f"unknown semiring {args.semiring!r}; available: "
              f"{', '.join(sorted(STORABLE_SEMIRINGS))}", file=sys.stderr)
        return 2
    if args.engine is not None and args.engine.lower() not in available_engines():
        print(f"unknown engine {args.engine!r}; available: "
              f"{', '.join(available_engines())}", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers > 1 and args.store is None:
        print("--workers > 1 requires --store: fleet workers share one "
              "persistent catalog", file=sys.stderr)
        return 2
    if args.tokens is not None:
        try:
            SecurityPolicy.from_file(args.tokens)  # fail fast on bad config
        except (OSError, ValueError) as error:
            print(f"cannot load --tokens: {error}", file=sys.stderr)
            return 2
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    if args.workers is not None:
        if not args.router and not reuseport_available():
            logging.getLogger("repro.server").info(
                "SO_REUSEPORT unavailable; using the round-robin router")
        return _serve_fleet(args)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
