"""Request-level observability for the HTTP server.

:class:`ServerMetrics` is a small, thread-safe aggregator: per-endpoint
request/error counters and a bounded sliding window of latencies from which
percentiles are computed on demand.  It deliberately knows nothing about the
pool or plan cache -- the server merges those in from
``ConnectionPool.stats()`` when serving ``GET /metrics`` -- so it can be
updated from both the event loop and worker threads without lock ordering
concerns.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List

__all__ = ["ServerMetrics", "percentile"]

#: Latencies retained per endpoint for percentile estimation.
LATENCY_WINDOW = 2048


def percentile(samples: List[float], fraction: float) -> float:
    """The ``fraction`` (0..1) percentile of ``samples`` (nearest-rank).

    Returns 0.0 for an empty sample list, so a scrape of an idle server is
    still well-formed JSON.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class _EndpointStats:
    """Counters and a latency window for one endpoint."""

    __slots__ = ("requests", "errors", "latencies")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)


class ServerMetrics:
    """Thread-safe request counters and latency percentiles, per endpoint.

    :meth:`record` is called once per finished request with the endpoint
    path, response status and elapsed wall-clock seconds; :meth:`snapshot`
    renders everything as a JSON-ready dict (counts, error counts, mean and
    p50/p90/p99 latencies in milliseconds, rows streamed, uptime and
    in-flight gauge).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _EndpointStats] = {}
        self._started = time.monotonic()
        self._in_flight = 0
        self._rows_streamed = 0

    def begin(self) -> None:
        """Mark a request as in flight (gauge for ``snapshot()``)."""
        with self._lock:
            self._in_flight += 1

    def record(self, endpoint: str, status: int, elapsed: float) -> None:
        """Account one finished request against ``endpoint``.

        Statuses >= 400 count as errors; every request, error or not,
        contributes its latency to the percentile window.
        """
        with self._lock:
            stats = self._endpoints.get(endpoint)
            if stats is None:
                stats = self._endpoints[endpoint] = _EndpointStats()
            stats.requests += 1
            if status >= 400:
                stats.errors += 1
            stats.latencies.append(elapsed)
            self._in_flight -= 1

    def add_streamed_rows(self, count: int) -> None:
        """Account ``count`` rows sent over an NDJSON stream."""
        with self._lock:
            self._rows_streamed += count

    def snapshot(self) -> Dict[str, Any]:
        """All counters as a JSON-ready dict (latencies in milliseconds)."""
        with self._lock:
            endpoints: Dict[str, Any] = {}
            total_requests = 0
            total_errors = 0
            for path in sorted(self._endpoints):
                stats = self._endpoints[path]
                samples = list(stats.latencies)
                total_requests += stats.requests
                total_errors += stats.errors
                endpoints[path] = {
                    "requests": stats.requests,
                    "errors": stats.errors,
                    "latency_ms": {
                        "mean": (sum(samples) / len(samples) * 1e3
                                 if samples else 0.0),
                        "p50": percentile(samples, 0.50) * 1e3,
                        "p90": percentile(samples, 0.90) * 1e3,
                        "p99": percentile(samples, 0.99) * 1e3,
                    },
                }
            return {
                "uptime_seconds": time.monotonic() - self._started,
                "in_flight": self._in_flight,
                "requests_total": total_requests,
                "errors_total": total_errors,
                "rows_streamed": self._rows_streamed,
                "endpoints": endpoints,
            }
