"""The three PDBench queries (Section 11.1).

The paper states its PDBench queries "roughly correspond to TPC-H queries Q3,
Q6 and Q7"; since UA-DBs cover RA+ (no aggregation), the shapes below keep
the selections and joins of those TPC-H queries and project the attributes
their aggregates consume.
"""

from __future__ import annotations

from typing import Dict

#: PDBench Q1: the join/selection core of TPC-H Q3 (shipping priority).
PDBENCH_Q1 = """
SELECT o.o_orderkey, o.o_orderdate, o.o_shippriority, l.l_extendedprice, l.l_discount
FROM customer c, orders o, lineitem l
WHERE c.c_mktsegment = 'BUILDING'
  AND c.c_custkey = o.o_custkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_orderdate < 1200
  AND l.l_shipdate > 1200
"""

#: PDBench Q2: the selection of TPC-H Q6 (forecasting revenue change).
PDBENCH_Q2 = """
SELECT l.l_orderkey, l.l_linenumber, l.l_extendedprice, l.l_discount
FROM lineitem l
WHERE l.l_shipdate >= 400 AND l.l_shipdate < 800
  AND l.l_discount BETWEEN 0.02 AND 0.09
  AND l.l_quantity < 24
"""

#: PDBench Q3: the join core of TPC-H Q7 (volume shipping between nations).
PDBENCH_Q3 = """
SELECT n.n_name, o.o_orderkey, l.l_linenumber, l.l_extendedprice
FROM customer c, orders o, lineitem l, nation n
WHERE c.c_custkey = o.o_custkey
  AND o.o_orderkey = l.l_orderkey
  AND c.c_nationkey = n.n_nationkey
  AND n.n_name IN ('FRANCE', 'GERMANY')
  AND l.l_shipdate BETWEEN 800 AND 1600
"""

#: Mapping from the names used in the paper's figures to SQL text.
PDBENCH_QUERIES: Dict[str, str] = {
    "Q1": PDBENCH_Q1,
    "Q2": PDBENCH_Q2,
    "Q3": PDBENCH_Q3,
}


def pdbench_query(name: str) -> str:
    """SQL text of a PDBench query by name ('Q1', 'Q2' or 'Q3')."""
    try:
        return PDBENCH_QUERIES[name.upper()]
    except KeyError as exc:
        raise KeyError(f"unknown PDBench query {name!r}; expected Q1, Q2 or Q3") from exc
