"""Missing-value imputation (the SparkML substitute).

The paper cleans its real-world datasets with SparkML imputation and treats
alternative imputations as a source of uncertainty.  This module provides
several simple imputers producing candidate repairs per missing cell:

* :class:`MeanImputer` / :class:`ModeImputer` -- a single statistical guess,
* :class:`HotDeckImputer` -- values copied from random complete donor rows,
* :class:`KNNImputer` -- values taken from the nearest complete rows under a
  mixed numeric/categorical distance.

:func:`impute_alternatives` combines imputers into an x-DB-style alternative
set per dirty row, used by the real-world dataset generators and the
Figure 18 utility experiment.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.db.schema import RelationSchema


def _column_values(rows: Sequence[Sequence[Any]], index: int) -> List[Any]:
    return [row[index] for row in rows if row[index] is not None]


def _is_numeric_column(values: Sequence[Any]) -> bool:
    return bool(values) and all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
    )


class MeanImputer:
    """Impute numeric columns with the mean, categorical columns with the mode."""

    def fit(self, rows: Sequence[Sequence[Any]], schema: RelationSchema) -> "MeanImputer":
        """Learn per-column statistics from ``rows``."""
        self.defaults: List[Any] = []
        for index in range(schema.arity):
            values = _column_values(rows, index)
            if not values:
                self.defaults.append(None)
            elif _is_numeric_column(values):
                mean = sum(values) / len(values)
                self.defaults.append(round(mean, 4) if isinstance(values[0], float) else int(round(mean)))
            else:
                self.defaults.append(Counter(values).most_common(1)[0][0])
        return self

    def candidates(self, row: Sequence[Any], index: int) -> List[Any]:
        """Candidate values for the missing cell ``row[index]``."""
        default = self.defaults[index]
        return [default] if default is not None else []


class ModeImputer:
    """Impute every column with its most frequent value."""

    def fit(self, rows: Sequence[Sequence[Any]], schema: RelationSchema) -> "ModeImputer":
        """Learn per-column modes from ``rows``."""
        self.modes: List[Any] = []
        for index in range(schema.arity):
            values = _column_values(rows, index)
            self.modes.append(Counter(values).most_common(1)[0][0] if values else None)
        return self

    def candidates(self, row: Sequence[Any], index: int) -> List[Any]:
        """Candidate values for the missing cell ``row[index]``."""
        mode = self.modes[index]
        return [mode] if mode is not None else []


class HotDeckImputer:
    """Impute from randomly drawn complete donor rows."""

    def __init__(self, num_donors: int = 2, seed: int = 0) -> None:
        self.num_donors = num_donors
        self.seed = seed

    def fit(self, rows: Sequence[Sequence[Any]], schema: RelationSchema) -> "HotDeckImputer":
        """Remember the donor pool (rows with no missing values)."""
        self.rng = random.Random(self.seed)
        self.donors = [row for row in rows if all(v is not None for v in row)]
        self.all_rows = list(rows)
        return self

    def candidates(self, row: Sequence[Any], index: int) -> List[Any]:
        """Values of column ``index`` from up to ``num_donors`` donor rows."""
        pool = self.donors or [r for r in self.all_rows if r[index] is not None]
        if not pool:
            return []
        donors = self.rng.sample(pool, min(self.num_donors, len(pool)))
        values = []
        for donor in donors:
            if donor[index] is not None and donor[index] not in values:
                values.append(donor[index])
        return values


class KNNImputer:
    """Impute from the k nearest complete rows (mixed-type distance)."""

    def __init__(self, k: int = 3) -> None:
        self.k = k

    def fit(self, rows: Sequence[Sequence[Any]], schema: RelationSchema) -> "KNNImputer":
        """Remember complete rows and per-column value ranges for normalization."""
        self.schema = schema
        self.complete = [row for row in rows if all(v is not None for v in row)]
        self.ranges: List[float] = []
        for index in range(schema.arity):
            values = _column_values(rows, index)
            if _is_numeric_column(values) and values:
                spread = max(values) - min(values)
                self.ranges.append(spread if spread > 0 else 1.0)
            else:
                self.ranges.append(0.0)
        return self

    def _distance(self, left: Sequence[Any], right: Sequence[Any]) -> float:
        total = 0.0
        counted = 0
        for index, (a, b) in enumerate(zip(left, right)):
            if a is None or b is None:
                continue
            counted += 1
            if self.ranges[index] > 0 and isinstance(a, (int, float)) and isinstance(b, (int, float)):
                total += abs(a - b) / self.ranges[index]
            else:
                total += 0.0 if a == b else 1.0
        if counted == 0:
            return math.inf
        return total / counted

    def candidates(self, row: Sequence[Any], index: int) -> List[Any]:
        """Values of column ``index`` among the k nearest complete rows."""
        if not self.complete:
            return []
        neighbours = sorted(self.complete, key=lambda donor: self._distance(row, donor))
        values: List[Any] = []
        for donor in neighbours[: self.k]:
            if donor[index] is not None and donor[index] not in values:
                values.append(donor[index])
        return values


DEFAULT_IMPUTERS = (MeanImputer, HotDeckImputer)


def impute_alternatives(rows: Sequence[Sequence[Any]], schema: RelationSchema,
                        imputers: Optional[Sequence] = None,
                        max_alternatives: int = 4,
                        seed: int = 0) -> List[List[Tuple[Any, ...]]]:
    """Produce per-row alternative repairs for rows with missing values.

    Returns one list of alternatives per input row.  Rows without missing
    values yield a single alternative (themselves); dirty rows yield up to
    ``max_alternatives`` repairs combining the candidates proposed by the
    imputers, the first repair being the "primary" (best-guess) imputation.
    """
    if imputers is None:
        fitted = [MeanImputer().fit(rows, schema), HotDeckImputer(seed=seed).fit(rows, schema)]
    else:
        fitted = [imputer.fit(rows, schema) for imputer in imputers]
    result: List[List[Tuple[Any, ...]]] = []
    for row in rows:
        missing = [index for index, value in enumerate(row) if value is None]
        if not missing:
            result.append([tuple(row)])
            continue
        # Per-cell candidate lists, first candidate from the primary imputer.
        cell_candidates: List[List[Any]] = []
        for index in missing:
            candidates: List[Any] = []
            for imputer in fitted:
                for value in imputer.candidates(row, index):
                    if value not in candidates:
                        candidates.append(value)
            if not candidates:
                candidates = [0]
            cell_candidates.append(candidates)
        alternatives: List[Tuple[Any, ...]] = []
        # Enumerate combinations breadth-first so the primary imputation
        # (first candidate everywhere) comes first.
        indices = [0] * len(missing)
        import itertools as _itertools

        for combination in _itertools.product(*cell_candidates):
            repaired = list(row)
            for position, value in zip(missing, combination):
                repaired[position] = value
            candidate = tuple(repaired)
            if candidate not in alternatives:
                alternatives.append(candidate)
            if len(alternatives) >= max_alternatives:
                break
        result.append(alternatives)
    return result
