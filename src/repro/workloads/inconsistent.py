"""Inconsistent query answering via key repairs, as a UA-DB use case.

The paper notes that UA-DBs apply to "use cases like inconsistent query
answering where possible worlds are defined declaratively (e.g., all repairs
of an inconsistent database)".  This module provides that declarative
definition for the most common constraint class, primary keys:

* a database violating a key constraint has several *repairs*, each obtained
  by keeping exactly one row from every group of rows that agree on the key,
* the set of repairs is the set of possible worlds; the *consistent answers*
  to a query are its certain answers over those worlds (Arenas et al.),
* because the rows of different key groups can be repaired independently, the
  repairs are exactly the possible worlds of an x-DB whose x-tuples are the
  key groups -- so the paper's x-DB labeling scheme applies unchanged and a
  UA-DB built from it under-approximates the consistent answers while still
  returning a full best-guess repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db import algebra
from repro.db.database import Database
from repro.db.relation import KRelation, Row
from repro.db.schema import SchemaError
from repro.semirings import BOOLEAN, Semiring
from repro.incomplete.worlds import IncompleteDatabase
from repro.incomplete.xdb import XDatabase, XTuple
from repro.core.uadb import UADatabase


@dataclass(frozen=True)
class KeyConstraint:
    """A primary-key constraint: ``key_attributes`` determine the whole row."""

    relation: str
    key_attributes: Tuple[str, ...]

    def __init__(self, relation: str, key_attributes: Sequence[str]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "key_attributes", tuple(key_attributes))

    def key_of(self, relation: KRelation, row: Sequence) -> Tuple:
        """Project ``row`` onto the key attributes."""
        indexes = [relation.schema.index_of(name) for name in self.key_attributes]
        return tuple(row[index] for index in indexes)


def find_violations(relation: KRelation,
                    constraint: KeyConstraint) -> Dict[Tuple, List[Row]]:
    """Key groups with more than one row (the conflicts to repair)."""
    groups: Dict[Tuple, List[Row]] = {}
    for row in relation.rows():
        groups.setdefault(constraint.key_of(relation, row), []).append(row)
    return {key: rows for key, rows in groups.items() if len(rows) > 1}


def is_consistent(database: Database, constraints: Sequence[KeyConstraint]) -> bool:
    """True if no constraint has a violating key group."""
    for constraint in constraints:
        if constraint.relation not in database:
            raise SchemaError(f"unknown relation {constraint.relation!r}")
        if find_violations(database.relation(constraint.relation), constraint):
            return False
    return True


def repairs_as_xdb(database: Database, constraints: Sequence[KeyConstraint],
                   weights: Optional[Dict[Row, float]] = None,
                   name: Optional[str] = None) -> XDatabase:
    """Encode the key repairs of ``database`` as an x-DB.

    Every key group becomes one x-tuple whose alternatives are the group's
    rows; choosing one alternative per x-tuple is exactly choosing one repair.
    ``weights`` optionally assigns a relative weight to individual rows (e.g.
    source trust scores); alternatives are weighted proportionally, otherwise
    uniformly.  Relations without a constraint are copied as certain rows.
    """
    by_relation: Dict[str, List[KeyConstraint]] = {}
    for constraint in constraints:
        by_relation.setdefault(constraint.relation.lower(), []).append(constraint)
    xdb = XDatabase(name or f"{database.name}_repairs")
    for relation in database:
        x_relation = xdb.create_relation(relation.schema)
        relation_constraints = by_relation.get(relation.schema.name.lower(), [])
        if not relation_constraints:
            for row in relation.rows():
                x_relation.add_certain(row)
            continue
        if len(relation_constraints) > 1:
            raise ValueError(
                f"relation {relation.schema.name!r} has multiple key constraints; "
                "repairs for overlapping keys are not independent"
            )
        constraint = relation_constraints[0]
        groups: Dict[Tuple, List[Row]] = {}
        for row in relation.rows():
            groups.setdefault(constraint.key_of(relation, row), []).append(row)
        for rows in groups.values():
            if len(rows) == 1:
                x_relation.add_certain(rows[0])
                continue
            if weights:
                raw = [max(weights.get(row, 1.0), 0.0) for row in rows]
                total = sum(raw) or float(len(rows))
                probabilities = [value / total for value in raw]
            else:
                probabilities = [1.0 / len(rows)] * len(rows)
            x_relation.add(XTuple(list(rows), probabilities))
    return xdb


def repairs(database: Database, constraints: Sequence[KeyConstraint],
            semiring: Semiring = BOOLEAN, limit: int = 4096) -> IncompleteDatabase:
    """Enumerate all key repairs as an explicit incomplete database."""
    return repairs_as_xdb(database, constraints).possible_worlds(semiring, limit)


def consistent_answers(database: Database, constraints: Sequence[KeyConstraint],
                       plan: algebra.Operator, semiring: Semiring = BOOLEAN,
                       limit: int = 4096) -> List[Row]:
    """Exact consistent answers (certain answers over all repairs).

    Enumerates every repair, so this is exponential in the number of
    violating key groups; it serves as ground truth for the UA-DB
    approximation in tests and experiments.
    """
    result = repairs(database, constraints, semiring, limit).query(plan)
    return result.certain_rows()


def uadb_for_repairs(database: Database, constraints: Sequence[KeyConstraint],
                     weights: Optional[Dict[Row, float]] = None,
                     semiring: Semiring = BOOLEAN) -> UADatabase:
    """A UA-DB whose best-guess world is the most-trusted repair.

    Certain labels under-approximate the consistent answers (they are exact
    for the base relations: a row is labeled certain iff its key group has no
    conflict), and queries preserve that bound (Theorem 5 of the paper).
    """
    xdb = repairs_as_xdb(database, constraints, weights)
    return UADatabase.from_xdb(xdb, semiring, name=f"{database.name}_cqa")
