"""Random C-tables and random query chains for the Figure 10 experiment.

The paper builds a synthetic 8-attribute table where each tuple has half of
its attributes replaced by variables, then measures the per-result-tuple cost
of computing exact certain answers (local-condition construction + Z3
tautology check) versus UA-DB evaluation, as a function of the number of
operators in a randomly assembled query chain of selections, projections and
self-joins.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.db import algebra
from repro.db.expressions import Column, Comparison, Literal
from repro.db.schema import Attribute, DataType, RelationSchema
from repro.incomplete.conditions import ComparisonAtom, TrueCondition, Variable
from repro.incomplete.ctable import CTable, CTableDatabase, CTupleSpec


def generate_random_ctable(num_tuples: int = 20, num_attributes: int = 8,
                           variable_fraction: float = 0.5, seed: int = 13,
                           domain_size: int = 4,
                           name: str = "synthetic") -> CTableDatabase:
    """Build the Figure 10 C-table: half of each tuple's attributes are variables.

    Every variable receives an explicit finite domain of ``domain_size``
    floating point constants so tautology checking (and possible-world
    enumeration in tests) is well defined.
    """
    rng = random.Random(seed)
    schema = RelationSchema(
        name, [Attribute(f"a{i}", DataType.FLOAT) for i in range(num_attributes)]
    )
    database = CTableDatabase(f"{name}_db")
    ctable = database.create_relation(schema)
    variables_per_tuple = max(1, int(num_attributes * variable_fraction))
    for tuple_index in range(num_tuples):
        positions = rng.sample(range(num_attributes), variables_per_tuple)
        values: List = []
        for position in range(num_attributes):
            if position in positions:
                variable = Variable(f"x_{tuple_index}_{position}")
                domain = sorted(round(rng.uniform(0, 10), 1) for _ in range(domain_size))
                database.set_domain(variable, domain)
                values.append(variable)
            else:
                values.append(round(rng.uniform(0, 10), 1))
        ctable.add(CTupleSpec(tuple(values), TrueCondition()))
    return database


def generate_random_query_chain(relation_name: str, num_operators: int,
                                num_attributes: int = 8, seed: int = 17,
                                max_joins: int = 1) -> algebra.Operator:
    """Assemble a random chain of selections, projections and self-joins.

    ``num_operators`` controls the length of the chain (the paper's x-axis,
    "Complexity" 1-7).  Self-joins are capped (default one) to keep the
    cross-product size manageable while still exercising condition growth.
    """
    rng = random.Random(seed)
    plan: algebra.Operator = algebra.RelationRef(relation_name)
    available = [f"a{i}" for i in range(num_attributes)]
    joins_used = 0
    for step in range(num_operators):
        choices = ["selection", "projection"]
        if joins_used < max_joins and len(available) >= 2:
            choices.append("join")
        operator = rng.choice(choices)
        if operator == "selection":
            attribute = rng.choice(available)
            threshold = round(rng.uniform(2, 8), 1)
            op = rng.choice(["<", "<=", ">", ">="])
            plan = algebra.Selection(plan, Comparison(op, Column(attribute), Literal(threshold)))
        elif operator == "projection":
            keep = max(2, len(available) - rng.randrange(1, 3))
            kept = rng.sample(available, keep)
            # Preserve the original attribute order for readability.
            kept = [a for a in available if a in kept]
            plan = algebra.Projection(plan, tuple((Column(a), a) for a in kept))
            available = kept
        else:
            joins_used += 1
            right: algebra.Operator = algebra.Qualify(
                algebra.RelationRef(relation_name), f"r{joins_used}"
            )
            left_attr = rng.choice(available)
            right_attr = f"r{joins_used}.a{rng.randrange(num_attributes)}"
            qualifier, name = right_attr.split(".")
            predicate = Comparison("=", Column(left_attr), Column(name, qualifier=qualifier))
            plan = algebra.Join(plan, right, predicate)
            available = available + [right_attr]
    return plan
