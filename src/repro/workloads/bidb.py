"""Block-independent database (BI-DB) generator and the QP probability queries.

Figure 19 of the paper compares UA-DBs against MayBMS on a BI-DB (an x-DB
with probabilities) derived from the Buffalo shootings dataset, varying the
number of alternatives per block (2, 5, 10, 20).  The generator below builds
a shootings-like table where every block (one incident) has the configured
number of alternative (district, type) readings; the three QP queries mirror
the paper's MayBMS queries:

* ``QP1`` -- the probability of one specific incident,
* ``QP2`` -- the probability of incidents in one district within an index range,
* ``QP3`` -- a self-join pairing incidents with the same district and type as
  a chosen incident.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.db.database import Database
from repro.db.schema import Attribute, DataType, RelationSchema
from repro.semirings import NATURAL, Semiring
from repro.incomplete.xdb import XDatabase

SHOOTINGS_SCHEMA = RelationSchema("shootings", [
    Attribute("index", DataType.INTEGER),
    Attribute("district_shooting", DataType.STRING),
    Attribute("type_shooting", DataType.STRING),
])

_DISTRICTS = ["BA", "BB", "BC", "BD", "BE", "BF"]
_TYPES = ["Fatal", "Non-fatal", "Unknown"]


@dataclass
class BIDBInstance:
    """A generated BI-DB plus the parameters used to build it."""

    xdb: XDatabase
    num_blocks: int
    alternatives_per_block: int
    #: The incident index used by QP1/QP3 (guaranteed to exist).
    probe_index: int = 1


#: SQL/RA shapes of the three probability queries of Figure 19.  MayBMS's
#: ``conf()`` aggregate is computed by the baseline, so the queries here
#: describe the tuple sets whose confidence is requested.
QP_QUERIES: Dict[str, str] = {
    "QP1": "SELECT index, district_shooting, type_shooting FROM shootings WHERE index = {probe}",
    "QP2": ("SELECT district_shooting, index FROM shootings "
            "WHERE index > 650 AND index < 2000 AND district_shooting = 'BD'"),
    "QP3": ("SELECT x.index, y.index FROM shootings x, shootings y "
            "WHERE x.district_shooting = y.district_shooting "
            "AND x.type_shooting = y.type_shooting AND x.index = {probe}"),
}


def qp_query(name: str, probe_index: int = 1) -> str:
    """SQL text of a QP query with the probe incident index substituted."""
    return QP_QUERIES[name.upper()].format(probe=probe_index)


def generate_bidb(num_blocks: int = 120, alternatives_per_block: int = 2,
                  seed: int = 5) -> BIDBInstance:
    """Generate a shootings-like BI-DB with the given block structure.

    Every incident (block) has ``alternatives_per_block`` mutually exclusive
    readings with probabilities summing to 1; roughly 30% of blocks are
    certain (a single alternative) so the result contains certain answers to
    misclassify or not.
    """
    if alternatives_per_block < 1:
        raise ValueError("need at least one alternative per block")
    rng = random.Random(seed)
    xdb = XDatabase("shootings_bidb")
    relation = xdb.create_relation(SHOOTINGS_SCHEMA)
    for index in range(1, num_blocks + 1):
        if alternatives_per_block == 1 or rng.random() < 0.3:
            relation.add_certain((index, rng.choice(_DISTRICTS), rng.choice(_TYPES)))
            continue
        alternatives: List[Tuple] = []
        while len(alternatives) < alternatives_per_block:
            candidate = (index, rng.choice(_DISTRICTS), rng.choice(_TYPES))
            if candidate not in alternatives:
                alternatives.append(candidate)
            if len(alternatives) == len(_DISTRICTS) * len(_TYPES):
                break
        weights = [rng.random() for _ in alternatives]
        total = sum(weights)
        probabilities = [w / total for w in weights]
        relation.add_alternatives(alternatives, probabilities)
    return BIDBInstance(
        xdb=xdb,
        num_blocks=num_blocks,
        alternatives_per_block=alternatives_per_block,
        probe_index=1,
    )
