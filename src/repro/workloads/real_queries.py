"""The five hand-written queries of Section 11.3/11.4 and their datasets.

The queries run over Chicago-style city datasets (crime, graffiti removal,
food inspections).  :func:`generate_city_database` builds synthetic versions
of those three tables with missing values imputed into x-tuples, so the five
queries can be evaluated over a UA-DB, the best-guess world and the exact
possible worlds exactly as in Figure 17.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.db.database import Database
from repro.db.relation import KRelation
from repro.db.schema import Attribute, DataType, RelationSchema
from repro.semirings import NATURAL, Semiring
from repro.incomplete.xdb import XDatabase

# -- schemas -------------------------------------------------------------------

CRIME_SCHEMA = RelationSchema("crime", [
    Attribute("id", DataType.INTEGER),
    Attribute("case_number", DataType.STRING),
    Attribute("iucr", DataType.INTEGER),
    Attribute("district", DataType.STRING),
    Attribute("longitude", DataType.FLOAT),
    Attribute("latitude", DataType.FLOAT),
    Attribute("x_coordinate", DataType.INTEGER),
    Attribute("y_coordinate", DataType.INTEGER),
])

GRAFFITI_SCHEMA = RelationSchema("graffiti", [
    Attribute("service_request_number", DataType.STRING),
    Attribute("street_address", DataType.STRING),
    Attribute("zip_code", DataType.INTEGER),
    Attribute("status", DataType.STRING),
    Attribute("police_district", DataType.INTEGER),
    Attribute("community_area", DataType.INTEGER),
    Attribute("x_coordinate", DataType.INTEGER),
    Attribute("y_coordinate", DataType.INTEGER),
])

FOOD_SCHEMA = RelationSchema("foodinspections", [
    Attribute("inspection_id", DataType.INTEGER),
    Attribute("inspection_date", DataType.STRING),
    Attribute("address", DataType.STRING),
    Attribute("zip", DataType.INTEGER),
    Attribute("results", DataType.STRING),
    Attribute("risk", DataType.STRING),
])

# -- queries --------------------------------------------------------------------

#: Q1: crime ids/case numbers for thefts, domestic batteries and criminal damage.
REAL_Q1 = """
SELECT id, case_number,
       CASE iucr
            WHEN 820 THEN 'Theft'
            WHEN 486 THEN 'Domestic Battery'
            WHEN 1320 THEN 'Criminal Damage'
       END AS crime_type
FROM crime
WHERE iucr = 820 OR iucr = 486 OR iucr = 1320
"""

#: Q2: crimes within the rectangle around the Chicago Water Tower.
REAL_Q2 = """
SELECT id, case_number, longitude, latitude
FROM crime
WHERE longitude BETWEEN -87.674 AND -87.619
  AND latitude BETWEEN 41.892 AND 41.903
"""

#: Q3: open graffiti-removal requests.
REAL_Q3 = """
SELECT street_address, zip_code, status
FROM graffiti
WHERE status = 'Open'
"""

#: Q4: high-risk restaurants that passed with conditions.
REAL_Q4 = """
SELECT inspection_date, address, zip
FROM foodinspections
WHERE results = 'Pass w/ Conditions'
  AND risk = 'Risk 1 (High)'
"""

#: Q5: crimes near graffiti-removal requests in district 8 (spatial self-band join).
REAL_Q5 = """
SELECT c.id, c.case_number, c.iucr, g.status, g.service_request_number, g.community_area
FROM (SELECT * FROM graffiti WHERE police_district = 8) g,
     (SELECT * FROM crime WHERE district = '008') c
WHERE c.x_coordinate < g.x_coordinate + 100
  AND c.x_coordinate > g.x_coordinate - 100
  AND c.y_coordinate < g.y_coordinate + 100
  AND c.y_coordinate > g.y_coordinate - 100
"""

#: The five real-world queries keyed by the names used in Figure 17.
REAL_QUERIES: Dict[str, str] = {
    "Q1": REAL_Q1,
    "Q2": REAL_Q2,
    "Q3": REAL_Q3,
    "Q4": REAL_Q4,
    "Q5": REAL_Q5,
}


# -- dataset generation ---------------------------------------------------------------


@dataclass
class CityDataInstance:
    """Synthetic crime/graffiti/food-inspection data in several representations."""

    xdb: XDatabase
    ground_truth: Database
    null_database: Database


_IUCR_CODES = [820, 486, 1320, 610, 460, 910, 2820]
_DISTRICTS = ["008", "007", "012", "001", "025"]
_STATUSES = ["Open", "Completed", "Pending"]
_RESULTS = ["Pass", "Fail", "Pass w/ Conditions"]
_RISKS = ["Risk 1 (High)", "Risk 2 (Medium)", "Risk 3 (Low)"]


def generate_city_database(num_crimes: int = 600, num_graffiti: int = 250,
                           num_inspections: int = 250, uncertainty: float = 0.08,
                           seed: int = 3, semiring: Semiring = NATURAL
                           ) -> CityDataInstance:
    """Generate the crime/graffiti/food tables with attribute-level uncertainty.

    ``uncertainty`` is the probability that a row has one uncertain attribute
    (with 2-3 alternative values), mirroring how imputation choices introduce
    uncertainty in the paper's real datasets.
    """
    rng = random.Random(seed)
    xdb = XDatabase("city")
    ground = Database(semiring, "city_ground")
    nulls = Database(semiring, "city_nulls")

    def build(schema: RelationSchema, rows: List[Tuple],
              uncertain_column: str, candidates: List[Any]) -> None:
        x_relation = xdb.create_relation(schema)
        ground_relation = KRelation(schema, semiring)
        null_relation = KRelation(schema, semiring)
        position = schema.index_of(uncertain_column)
        for row in rows:
            ground_relation.add(row, semiring.one)
            if rng.random() < uncertainty:
                alternatives = [row]
                for candidate in rng.sample(candidates, min(2, len(candidates))):
                    repaired = list(row)
                    repaired[position] = candidate
                    alternative = tuple(repaired)
                    if alternative not in alternatives:
                        alternatives.append(alternative)
                x_relation.add_alternatives(alternatives)
                null_row = list(row)
                null_row[position] = None
                null_relation.add(tuple(null_row), semiring.one)
            else:
                x_relation.add_certain(row)
                null_relation.add(row, semiring.one)
        ground.add_relation(ground_relation)
        nulls.add_relation(null_relation)

    crime_rows = []
    for index in range(num_crimes):
        in_watertower = rng.random() < 0.25
        longitude = rng.uniform(-87.674, -87.619) if in_watertower else rng.uniform(-87.9, -87.5)
        latitude = rng.uniform(41.892, 41.903) if in_watertower else rng.uniform(41.6, 42.1)
        crime_rows.append((
            index,
            f"HZ{100000 + index}",
            rng.choice(_IUCR_CODES),
            rng.choice(_DISTRICTS),
            round(longitude, 5),
            round(latitude, 5),
            rng.randrange(1_100_000, 1_210_000, 10),
            rng.randrange(1_800_000, 1_960_000, 10),
        ))
    build(CRIME_SCHEMA, crime_rows, "iucr", _IUCR_CODES)

    graffiti_rows = []
    for index in range(num_graffiti):
        graffiti_rows.append((
            f"SR{200000 + index}",
            f"{rng.randrange(100, 9999)} W EXAMPLE ST",
            rng.choice([60601, 60614, 60622, 60629, 60636]),
            rng.choice(_STATUSES),
            rng.choice([8, 7, 12, 1]),
            rng.randrange(1, 78),
            rng.randrange(1_100_000, 1_210_000, 10),
            rng.randrange(1_800_000, 1_960_000, 10),
        ))
    build(GRAFFITI_SCHEMA, graffiti_rows, "status", _STATUSES)

    food_rows = []
    for index in range(num_inspections):
        food_rows.append((
            index,
            f"2018-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}",
            f"{rng.randrange(100, 9999)} N SAMPLE AVE",
            rng.choice([60601, 60614, 60622, 60629, 60636]),
            rng.choice(_RESULTS),
            rng.choice(_RISKS),
        ))
    build(FOOD_SCHEMA, food_rows, "results", _RESULTS)

    return CityDataInstance(xdb=xdb, ground_truth=ground, null_database=nulls)
