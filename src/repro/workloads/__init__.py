"""Workload generators and queries used by the experimental evaluation.

* :mod:`repro.workloads.pdbench` -- a PDBench-style uncertain TPC-H generator
  (attribute-level uncertainty with up to 8 alternatives per uncertain cell),
* :mod:`repro.workloads.tpch_queries` -- the three PDBench queries (analogues
  of TPC-H Q3, Q6 and Q7),
* :mod:`repro.workloads.imputation` -- missing-value imputation used to build
  x-DBs from dirty data (the SparkML substitute),
* :mod:`repro.workloads.realworld` -- synthetic stand-ins for the paper's
  nine real-world open-data datasets (Figure 16),
* :mod:`repro.workloads.real_queries` -- the five hand-written queries of
  Section 11.3/11.4,
* :mod:`repro.workloads.bidb` -- the BI-DB generator and the three MayBMS
  probability queries (QP1-QP3),
* :mod:`repro.workloads.ctable_gen` -- random C-tables and random query
  chains for the Figure 10 experiment,
* :mod:`repro.workloads.inconsistent` -- key-repair based inconsistent query
  answering, one of the use cases the paper's introduction motivates.
"""

from repro.workloads.pdbench import PDBenchInstance, generate_pdbench
from repro.workloads.tpch_queries import PDBENCH_QUERIES, pdbench_query
from repro.workloads.imputation import (
    MeanImputer, ModeImputer, HotDeckImputer, KNNImputer, impute_alternatives,
)
from repro.workloads.realworld import (
    RealWorldDataset, DATASET_PROFILES, generate_dataset, generate_all_datasets,
)
from repro.workloads.real_queries import REAL_QUERIES, generate_city_database
from repro.workloads.bidb import BIDBInstance, generate_bidb, QP_QUERIES
from repro.workloads.ctable_gen import (
    generate_random_ctable, generate_random_query_chain,
)
from repro.workloads.inconsistent import (
    KeyConstraint, find_violations, is_consistent, repairs, repairs_as_xdb,
    consistent_answers, uadb_for_repairs,
)

__all__ = [
    "PDBenchInstance",
    "generate_pdbench",
    "PDBENCH_QUERIES",
    "pdbench_query",
    "MeanImputer",
    "ModeImputer",
    "HotDeckImputer",
    "KNNImputer",
    "impute_alternatives",
    "RealWorldDataset",
    "DATASET_PROFILES",
    "generate_dataset",
    "generate_all_datasets",
    "REAL_QUERIES",
    "generate_city_database",
    "BIDBInstance",
    "generate_bidb",
    "QP_QUERIES",
    "generate_random_ctable",
    "generate_random_query_chain",
    "KeyConstraint",
    "find_violations",
    "is_consistent",
    "repairs",
    "repairs_as_xdb",
    "consistent_answers",
    "uadb_for_repairs",
]
