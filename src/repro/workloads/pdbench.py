"""A PDBench-style uncertain TPC-H data generator.

PDBench (Antova et al., ICDE 2008) modifies the TPC-H generator to introduce
attribute-level uncertainty: a configurable percentage of cells receives a
set of up to eight possible values.  This module generates a small TPC-H-like
schema (nation, customer, orders, lineitem), injects uncertainty the same
way, and exposes the result in all the representations the experiments need:

* the clean ground-truth world (before uncertainty injection),
* an :class:`~repro.incomplete.xdb.XDatabase` where each uncertain row is an
  x-tuple whose alternatives enumerate combinations of the cell alternatives,
* a null-based database (for the Libkin baseline),
* a best-guess world (one randomly chosen alternative per uncertain cell,
  exactly as the paper does for its PDBench runs).

Scale factor 1.0 corresponds to roughly 6000 lineitem rows -- three orders of
magnitude below TPC-H SF1, keeping laptop-scale runtimes while preserving the
relative row counts between tables.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.db.relation import KRelation
from repro.db.schema import Attribute, DataType, RelationSchema
from repro.semirings import NATURAL, Semiring
from repro.incomplete.vtable import VTable, VTableDatabase
from repro.incomplete.xdb import XDatabase, XRelation, XTuple

# -- schema -----------------------------------------------------------------

NATION_SCHEMA = RelationSchema("nation", [
    Attribute("n_nationkey", DataType.INTEGER),
    Attribute("n_name", DataType.STRING),
    Attribute("n_regionkey", DataType.INTEGER),
])

CUSTOMER_SCHEMA = RelationSchema("customer", [
    Attribute("c_custkey", DataType.INTEGER),
    Attribute("c_name", DataType.STRING),
    Attribute("c_nationkey", DataType.INTEGER),
    Attribute("c_acctbal", DataType.FLOAT),
    Attribute("c_mktsegment", DataType.STRING),
])

ORDERS_SCHEMA = RelationSchema("orders", [
    Attribute("o_orderkey", DataType.INTEGER),
    Attribute("o_custkey", DataType.INTEGER),
    Attribute("o_orderdate", DataType.INTEGER),
    Attribute("o_totalprice", DataType.FLOAT),
    Attribute("o_shippriority", DataType.INTEGER),
])

LINEITEM_SCHEMA = RelationSchema("lineitem", [
    Attribute("l_orderkey", DataType.INTEGER),
    Attribute("l_linenumber", DataType.INTEGER),
    Attribute("l_quantity", DataType.INTEGER),
    Attribute("l_extendedprice", DataType.FLOAT),
    Attribute("l_discount", DataType.FLOAT),
    Attribute("l_shipdate", DataType.INTEGER),
    Attribute("l_shipmode", DataType.STRING),
])

SCHEMAS = (NATION_SCHEMA, CUSTOMER_SCHEMA, ORDERS_SCHEMA, LINEITEM_SCHEMA)

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
SHIP_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"]

#: Attributes eligible for uncertainty injection (PDBench perturbs values,
#: not keys, so the join structure of the schema stays intact).
UNCERTAIN_ATTRIBUTES = {
    "customer": ["c_nationkey", "c_acctbal", "c_mktsegment"],
    "orders": ["o_orderdate", "o_totalprice", "o_shippriority"],
    "lineitem": ["l_quantity", "l_extendedprice", "l_discount", "l_shipdate", "l_shipmode"],
}

#: Number of rows per table at scale factor 1.0.
BASE_CARDINALITIES = {"nation": 25, "customer": 150, "orders": 1500, "lineitem": 6000}


@dataclass
class PDBenchInstance:
    """All representations of one generated PDBench database."""

    scale_factor: float
    uncertainty: float
    #: Clean data before uncertainty injection (the notional ground truth).
    ground_truth: Database
    #: Attribute-level uncertainty as an x-DB (one x-tuple per uncertain row).
    xdb: XDatabase
    #: Null-based encoding for the Libkin baseline (uncertain cells -> NULL).
    null_database: Database
    #: One possible world with a random value chosen for every uncertain cell.
    best_guess: Database
    #: Row counts per relation.
    cardinalities: Dict[str, int] = field(default_factory=dict)
    #: Number of uncertain cells per relation.
    uncertain_cells: Dict[str, int] = field(default_factory=dict)


def _random_value(attribute: str, rng: random.Random, num_orders: int,
                  num_customers: int) -> Any:
    """Draw a fresh value for ``attribute`` (used for alternatives)."""
    if attribute == "c_nationkey":
        return rng.randrange(len(NATION_NAMES))
    if attribute == "c_acctbal":
        return round(rng.uniform(-999.0, 9999.0), 2)
    if attribute == "c_mktsegment":
        return rng.choice(MARKET_SEGMENTS)
    if attribute == "o_orderdate":
        return rng.randrange(0, 2400)
    if attribute == "o_totalprice":
        return round(rng.uniform(1000.0, 400000.0), 2)
    if attribute == "o_shippriority":
        return rng.randrange(0, 2)
    if attribute == "l_quantity":
        return rng.randrange(1, 51)
    if attribute == "l_extendedprice":
        return round(rng.uniform(900.0, 100000.0), 2)
    if attribute == "l_discount":
        return round(rng.uniform(0.0, 0.1), 2)
    if attribute == "l_shipdate":
        return rng.randrange(0, 2500)
    if attribute == "l_shipmode":
        return rng.choice(SHIP_MODES)
    raise ValueError(f"no generator for attribute {attribute!r}")


def _generate_clean_rows(scale_factor: float,
                         rng: random.Random) -> Dict[str, List[Tuple]]:
    """Deterministic TPC-H-like base data."""
    counts = {
        name: max(1, int(round(cardinality * scale_factor))) if name != "nation" else 25
        for name, cardinality in BASE_CARDINALITIES.items()
    }
    rows: Dict[str, List[Tuple]] = {name: [] for name in counts}
    for key, name in enumerate(NATION_NAMES):
        rows["nation"].append((key, name, key % 5))
    for key in range(1, counts["customer"] + 1):
        rows["customer"].append((
            key,
            f"Customer#{key:09d}",
            rng.randrange(len(NATION_NAMES)),
            round(rng.uniform(-999.0, 9999.0), 2),
            rng.choice(MARKET_SEGMENTS),
        ))
    for key in range(1, counts["orders"] + 1):
        rows["orders"].append((
            key,
            rng.randrange(1, counts["customer"] + 1),
            rng.randrange(0, 2400),
            round(rng.uniform(1000.0, 400000.0), 2),
            rng.randrange(0, 2),
        ))
    for index in range(counts["lineitem"]):
        rows["lineitem"].append((
            rng.randrange(1, counts["orders"] + 1),
            index,
            rng.randrange(1, 51),
            round(rng.uniform(900.0, 100000.0), 2),
            round(rng.uniform(0.0, 0.1), 2),
            rng.randrange(0, 2500),
            rng.choice(SHIP_MODES),
        ))
    return rows


def _database_from_rows(rows: Dict[str, List[Tuple]], name: str,
                        semiring: Semiring = NATURAL) -> Database:
    database = Database(semiring, name)
    schemas = {schema.name: schema for schema in SCHEMAS}
    for relation_name, relation_rows in rows.items():
        relation = KRelation(schemas[relation_name], semiring)
        for row in relation_rows:
            relation.add(row, semiring.one)
        database.add_relation(relation)
    return database


def generate_pdbench(scale_factor: float = 0.1, uncertainty: float = 0.02,
                     max_alternatives: int = 8, seed: int = 7,
                     max_uncertain_attrs_per_row: int = 2,
                     semiring: Semiring = NATURAL) -> PDBenchInstance:
    """Generate a PDBench-like instance.

    ``uncertainty`` is the fraction of (eligible) cells that receive
    alternatives; every uncertain cell gets between 2 and ``max_alternatives``
    possible values (the original plus fresh random values), matching the
    PDBench mechanism of the paper's Section 11.1.
    """
    if not 0.0 <= uncertainty <= 1.0:
        raise ValueError("uncertainty must be a fraction between 0 and 1")
    rng = random.Random(seed)
    clean_rows = _generate_clean_rows(scale_factor, rng)
    ground_truth = _database_from_rows(clean_rows, "pdbench_ground", semiring)

    schemas = {schema.name: schema for schema in SCHEMAS}
    xdb = XDatabase("pdbench")
    null_rows: Dict[str, List[Tuple]] = {}
    best_rows: Dict[str, List[Tuple]] = {}
    uncertain_cells: Dict[str, int] = {}

    num_customers = len(clean_rows["customer"])
    num_orders = len(clean_rows["orders"])

    for relation_name, relation_rows in clean_rows.items():
        schema = schemas[relation_name]
        x_relation = xdb.create_relation(schema)
        null_rows[relation_name] = []
        best_rows[relation_name] = []
        uncertain_cells[relation_name] = 0
        eligible = UNCERTAIN_ATTRIBUTES.get(relation_name, [])
        eligible_indexes = [schema.index_of(attr) for attr in eligible]
        for row in relation_rows:
            uncertain_positions = [
                index for index in eligible_indexes if rng.random() < uncertainty
            ]
            uncertain_positions = uncertain_positions[:max_uncertain_attrs_per_row]
            if not uncertain_positions:
                x_relation.add_certain(row)
                null_rows[relation_name].append(row)
                best_rows[relation_name].append(row)
                continue
            uncertain_cells[relation_name] += len(uncertain_positions)
            # Build the per-cell alternative sets (original value included).
            cell_alternatives: List[List[Any]] = []
            for position in uncertain_positions:
                attribute = schema.attributes[position].name
                count = rng.randrange(2, max_alternatives + 1)
                values = [row[position]]
                # Low-cardinality attributes (e.g. o_shippriority) may not
                # have `count` distinct values; cap the number of attempts.
                attempts = 0
                while len(values) < count and attempts < 8 * count:
                    attempts += 1
                    candidate = _random_value(attribute, rng, num_orders, num_customers)
                    if candidate not in values:
                        values.append(candidate)
                cell_alternatives.append(values)
            # The x-tuple's alternatives are the cross product of cell choices,
            # capped to keep the representation compact (PDBench caps at 8).
            alternatives: List[Tuple] = []
            for combination in itertools.product(*cell_alternatives):
                candidate = list(row)
                for position, value in zip(uncertain_positions, combination):
                    candidate[position] = value
                alternatives.append(tuple(candidate))
                if len(alternatives) >= max_alternatives:
                    break
            x_relation.add_alternatives(alternatives)
            # Null-based encoding: uncertain cells become SQL NULL.
            null_row = list(row)
            for position in uncertain_positions:
                null_row[position] = None
            null_rows[relation_name].append(tuple(null_row))
            # Best-guess world: pick a random alternative (as the paper does).
            best_rows[relation_name].append(rng.choice(alternatives))

    null_database = _database_from_rows(null_rows, "pdbench_nulls", semiring)
    best_guess = _database_from_rows(best_rows, "pdbench_bg", semiring)
    cardinalities = {name: len(rows) for name, rows in clean_rows.items()}
    return PDBenchInstance(
        scale_factor=scale_factor,
        uncertainty=uncertainty,
        ground_truth=ground_truth,
        xdb=xdb,
        null_database=null_database,
        best_guess=best_guess,
        cardinalities=cardinalities,
        uncertain_cells=uncertain_cells,
    )
