"""Synthetic stand-ins for the paper's real-world datasets (Figure 16).

The paper evaluates on nine open-data datasets (Chicago building violations,
Buffalo shootings, business licenses, crime, contracts, food inspections,
graffiti removal, building permits, the public library survey).  Those files
are not redistributable here, so each dataset is replaced by a generator that
matches its published profile: number of columns, fraction of uncertain
attribute values (``u_attr``) and fraction of uncertain rows (``u_row``),
with row counts scaled down to laptop size (the scale is configurable).

Missingness is *correlated within a row* (a dirty row tends to have several
dirty cells, like real open data), which is what gives Figure 15 its shape:
projections onto subsets of attributes frequently drop every uncertain cell
of a row, turning an "uncertain" base tuple into a certain answer.
"""

from __future__ import annotations

import random
import string
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.db.relation import KRelation
from repro.db.schema import Attribute, DataType, RelationSchema
from repro.semirings import NATURAL, Semiring
from repro.incomplete.xdb import XDatabase
from repro.workloads.imputation import impute_alternatives


@dataclass(frozen=True)
class DatasetProfile:
    """Published statistics of one real-world dataset (Figure 16)."""

    name: str
    rows: int
    columns: int
    u_attr: float
    u_row: float
    url: str


#: The nine datasets of Figure 16 with their published statistics.
DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "building_violations": DatasetProfile(
        "building_violations", 1_300_000, 35, 0.0082, 0.128,
        "https://data.cityofchicago.org/Buildings/Building-Violations/22u3-xenr"),
    "shootings_buffalo": DatasetProfile(
        "shootings_buffalo", 2_900, 21, 0.0024, 0.021,
        "http://projects.buffalonews.com/charts/shootings/index.html"),
    "business_licenses": DatasetProfile(
        "business_licenses", 63_000, 25, 0.0139, 0.140,
        "https://data.cityofchicago.org/Community-Economic-Development/Business-Licenses"),
    "chicago_crime": DatasetProfile(
        "chicago_crime", 6_600_000, 17, 0.0021, 0.009,
        "https://data.cityofchicago.org/Public-Safety/Crimes-2001-to-present"),
    "contracts": DatasetProfile(
        "contracts", 94_000, 13, 0.0150, 0.192,
        "https://data.cityofchicago.org/Administration-Finance/Contracts"),
    "food_inspections": DatasetProfile(
        "food_inspections", 169_000, 16, 0.0034, 0.046,
        "https://data.cityofchicago.org/Health-Human-Services/Food-Inspections"),
    "graffiti_removal": DatasetProfile(
        "graffiti_removal", 985_000, 15, 0.0009, 0.008,
        "https://data.cityofchicago.org/Service-Requests/311-Graffiti-Removal"),
    "building_permits": DatasetProfile(
        "building_permits", 198_000, 19, 0.0042, 0.053,
        "https://www.kaggle.com/aparnashastry/building-permit-applications-data"),
    "public_library_survey": DatasetProfile(
        "public_library_survey", 9_200, 99, 0.0119, 0.142,
        "https://www.imls.gov/research-evaluation/data-collection/public-libraries-survey"),
}


@dataclass
class RealWorldDataset:
    """A generated dataset in every representation the experiments need."""

    profile: DatasetProfile
    schema: RelationSchema
    #: The clean ground-truth rows (before missingness injection).
    ground_truth: Database
    #: x-DB built from imputation alternatives for the dirty rows.
    xdb: XDatabase
    #: Null-carrying version (dirty cells are SQL NULL) for the Libkin baseline.
    null_database: Database
    #: Fraction of attribute values made uncertain (measured, not nominal).
    measured_u_attr: float = 0.0
    #: Fraction of rows containing at least one uncertain value.
    measured_u_row: float = 0.0


def _make_schema(name: str, columns: int, rng: random.Random) -> RelationSchema:
    """A schema with an id column plus a mix of categorical and numeric columns."""
    attributes = [Attribute("id", DataType.INTEGER)]
    for index in range(1, columns):
        if index % 3 == 0:
            attributes.append(Attribute(f"num_{index}", DataType.FLOAT))
        elif index % 3 == 1:
            attributes.append(Attribute(f"cat_{index}", DataType.STRING))
        else:
            attributes.append(Attribute(f"code_{index}", DataType.INTEGER))
    return RelationSchema(name, attributes)


def _random_cell(attribute: Attribute, rng: random.Random) -> Any:
    if attribute.data_type is DataType.FLOAT:
        return round(rng.uniform(0, 1000), 2)
    if attribute.data_type is DataType.INTEGER:
        return rng.randrange(0, 50)
    # Low-cardinality categorical values so projections collide realistically.
    return "".join(rng.choices(string.ascii_uppercase[:8], k=3))


def generate_dataset(name: str, scale: float = 0.001, seed: int = 11,
                     max_alternatives: int = 4,
                     semiring: Semiring = NATURAL) -> RealWorldDataset:
    """Generate a synthetic stand-in for one of the Figure 16 datasets.

    ``scale`` multiplies the published row count (default keeps every dataset
    in the hundreds-to-thousands of rows range).
    """
    try:
        profile = DATASET_PROFILES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_PROFILES)}"
        ) from exc
    # zlib.crc32, not hash(): string hashing is salted per process, which
    # would make "seeded" datasets differ between runs.
    rng = random.Random(seed + zlib.crc32(name.encode("utf-8")) % 10_000)
    num_rows = max(50, int(profile.rows * scale))
    schema = _make_schema(profile.name, profile.columns, rng)

    # Clean ground-truth rows.
    clean_rows: List[Tuple[Any, ...]] = []
    for row_id in range(num_rows):
        row = [row_id] + [_random_cell(attr, rng) for attr in schema.attributes[1:]]
        clean_rows.append(tuple(row))

    # Inject correlated missingness: u_row of the rows are dirty, and within
    # a dirty row enough cells go missing to hit the published u_attr.
    cells_per_dirty_row = max(
        1, int(round(profile.u_attr * profile.columns / max(profile.u_row, 1e-9)))
    )
    dirty_rows: List[Tuple[Any, ...]] = []
    dirty_flags: List[bool] = []
    eligible_positions = list(range(1, schema.arity))  # never corrupt the id
    total_missing_cells = 0
    for row in clean_rows:
        if rng.random() < profile.u_row:
            positions = rng.sample(
                eligible_positions, min(cells_per_dirty_row, len(eligible_positions))
            )
            dirty = list(row)
            for position in positions:
                dirty[position] = None
            total_missing_cells += len(positions)
            dirty_rows.append(tuple(dirty))
            dirty_flags.append(True)
        else:
            dirty_rows.append(row)
            dirty_flags.append(False)

    # Build the x-DB from imputation alternatives.
    alternatives = impute_alternatives(
        dirty_rows, schema, max_alternatives=max_alternatives, seed=seed
    )
    xdb = XDatabase(profile.name)
    x_relation = xdb.create_relation(schema)
    for row_alternatives in alternatives:
        if len(row_alternatives) == 1:
            x_relation.add_certain(row_alternatives[0])
        else:
            x_relation.add_alternatives(row_alternatives)

    ground_truth = Database(semiring, f"{profile.name}_ground")
    ground_relation = KRelation(schema, semiring)
    for row in clean_rows:
        ground_relation.add(row, semiring.one)
    ground_truth.add_relation(ground_relation)

    null_database = Database(semiring, f"{profile.name}_nulls")
    null_relation = KRelation(schema, semiring)
    for row in dirty_rows:
        null_relation.add(row, semiring.one)
    null_database.add_relation(null_relation)

    measured_u_attr = total_missing_cells / (num_rows * schema.arity)
    measured_u_row = sum(dirty_flags) / num_rows
    return RealWorldDataset(
        profile=profile,
        schema=schema,
        ground_truth=ground_truth,
        xdb=xdb,
        null_database=null_database,
        measured_u_attr=measured_u_attr,
        measured_u_row=measured_u_row,
    )


def generate_all_datasets(scale: float = 0.0005, seed: int = 11,
                          names: Optional[Sequence[str]] = None
                          ) -> Dict[str, RealWorldDataset]:
    """Generate every (or the named) Figure 16 dataset at the given scale."""
    names = list(names) if names is not None else list(DATASET_PROFILES)
    return {name: generate_dataset(name, scale=scale, seed=seed) for name in names}
