"""The natural number semiring N = (N, +, *, 0, 1).

N-relations encode bag (multiset) semantics: a tuple is annotated with its
multiplicity.  The natural order is the usual order on the naturals, the GLB
is ``min`` and the LUB is ``max``, so the certain multiplicity of a tuple is
the minimum of its multiplicities across possible worlds -- matching the bag
certain answers of Guagliardo and Libkin.
"""

from __future__ import annotations

from typing import Any

from repro.semirings.base import Semiring


class NaturalSemiring(Semiring):
    """Bag semantics: annotations are non-negative Python ints."""

    name = "N"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def plus(self, a: int, b: int) -> int:
        return a + b

    def times(self, a: int, b: int) -> int:
        return a * b

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0

    def leq(self, a: int, b: int) -> bool:
        return a <= b

    def glb(self, a: int, b: int) -> int:
        return min(a, b)

    def lub(self, a: int, b: int) -> int:
        return max(a, b)

    def monus(self, a: int, b: int) -> int:
        # Truncated subtraction keeps the result inside N.
        return max(a - b, 0)


#: Shared singleton instance of the bag semiring.
NATURAL = NaturalSemiring()
