"""Abstract commutative semiring with natural order and lattice operations.

A commutative semiring is a structure ``(K, +, *, 0, 1)`` where addition and
multiplication are commutative and associative, multiplication distributes
over addition, ``0`` is the additive identity (and annihilates under
multiplication) and ``1`` is the multiplicative identity.

The *natural order* of a semiring is defined as::

    k <= k'   iff   there exists k'' such that k + k'' == k'

Semirings whose natural order is a partial order are *naturally ordered*;
semirings whose natural order forms a lattice are *l-semirings*.  The UA-DB
paper defines certain annotations via the greatest lower bound (GLB) of a
tuple's annotations across possible worlds, which requires an l-semiring.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import reduce
from typing import Any, Callable, Iterable


class SemiringElementError(ValueError):
    """Raised when a value is not a member of the semiring's domain."""


class Semiring(ABC):
    """Abstract base class for commutative semirings.

    Concrete subclasses must provide the two identity elements, the two
    binary operations, membership testing, and (for l-semirings) the lattice
    operations ``glb`` and ``lub`` induced by the natural order.
    """

    #: Short human-readable name, e.g. ``"N"`` or ``"B"``.
    name: str = "K"

    # -- identities --------------------------------------------------------

    @property
    @abstractmethod
    def zero(self) -> Any:
        """The additive identity 0_K."""

    @property
    @abstractmethod
    def one(self) -> Any:
        """The multiplicative identity 1_K."""

    # -- operations --------------------------------------------------------

    @abstractmethod
    def plus(self, a: Any, b: Any) -> Any:
        """Semiring addition."""

    @abstractmethod
    def times(self, a: Any, b: Any) -> Any:
        """Semiring multiplication."""

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Return True if ``value`` is an element of the semiring domain."""

    # -- natural order and lattice ----------------------------------------

    @abstractmethod
    def leq(self, a: Any, b: Any) -> bool:
        """Natural order: ``a <= b`` iff exists c with ``a + c == b``."""

    @abstractmethod
    def glb(self, a: Any, b: Any) -> Any:
        """Greatest lower bound of ``a`` and ``b`` under the natural order."""

    @abstractmethod
    def lub(self, a: Any, b: Any) -> Any:
        """Least upper bound of ``a`` and ``b`` under the natural order."""

    # -- optional structure -------------------------------------------------

    def monus(self, a: Any, b: Any) -> Any:
        """Truncated difference ``a - b`` (the semiring monus), if defined.

        Semirings with a monus support the ``Enc`` multiset encoding used by
        the SQL implementation (Definition 8 in the paper).  The default
        raises ``NotImplementedError``.
        """
        raise NotImplementedError(f"semiring {self.name} has no monus")

    @property
    def has_monus(self) -> bool:
        """True if :meth:`monus` is implemented for this semiring."""
        try:
            self.monus(self.one, self.zero)
        except NotImplementedError:
            return False
        return True

    @property
    def is_idempotent(self) -> bool:
        """True if ``a + a == a`` for all elements (e.g. B, A, tropical)."""
        return self.plus(self.one, self.one) == self.one

    # -- derived helpers ----------------------------------------------------

    def check(self, value: Any) -> Any:
        """Validate that ``value`` is in the domain and return it."""
        if not self.contains(value):
            raise SemiringElementError(
                f"{value!r} is not an element of semiring {self.name}"
            )
        return value

    def sum(self, values: Iterable[Any]) -> Any:
        """Fold semiring addition over ``values`` (0_K for empty input)."""
        return reduce(self.plus, values, self.zero)

    def product(self, values: Iterable[Any]) -> Any:
        """Fold semiring multiplication over ``values`` (1_K for empty input)."""
        return reduce(self.times, values, self.one)

    def glb_all(self, values: Iterable[Any]) -> Any:
        """GLB of a non-empty collection of elements.

        This is the *certain annotation* operator ``cert_K`` of the paper
        when applied to a tuple's annotations across all possible worlds.
        """
        values = list(values)
        if not values:
            raise ValueError("glb_all requires at least one element")
        return reduce(self.glb, values)

    def lub_all(self, values: Iterable[Any]) -> Any:
        """LUB of a non-empty collection of elements (``poss_K``)."""
        values = list(values)
        if not values:
            raise ValueError("lub_all requires at least one element")
        return reduce(self.lub, values)

    def is_zero(self, value: Any) -> bool:
        """True if ``value`` equals the additive identity."""
        return value == self.zero

    def delta(self, value: Any) -> Any:
        """Duplicate-elimination annotation: ``0 if value == 0 else 1``.

        Semirings with component structure (pairs, per-world vectors)
        override this *component-wise*: ``delta`` must commute with their
        projection homomorphisms (``h(delta(x)) == delta(h(x))``), or
        duplicate elimination would manufacture certainty -- e.g. the UA
        pair ``[0, 3]`` must become ``[0, 1]``, not ``1_K = [1, 1]``.
        """
        return self.zero if self.is_zero(value) else self.one

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Semiring {self.name}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.name == getattr(other, "name", None)

    def __hash__(self) -> int:
        return hash((type(self), self.name))


class SemiringHomomorphism:
    """A structure-preserving map ``h : K -> K'`` between semirings.

    Homomorphisms map the identities to identities and distribute over the
    semiring operations.  Because RA+ over K-relations is defined purely in
    terms of the semiring operations, homomorphisms commute with queries
    (Green et al.), a fact the paper exploits for ``pw_i``, ``h_cert`` and
    ``h_det``.
    """

    def __init__(self, source: Semiring, target: Semiring,
                 func: Callable[[Any], Any], name: str = "h") -> None:
        self.source = source
        self.target = target
        self.func = func
        self.name = name

    def __call__(self, value: Any) -> Any:
        return self.func(value)

    def verify(self, samples: Iterable[Any]) -> bool:
        """Check the homomorphism laws on all pairs drawn from ``samples``."""
        return is_homomorphism(self.source, self.target, self.func, samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Homomorphism {self.name}: {self.source.name} -> {self.target.name}>"


def is_homomorphism(source: Semiring, target: Semiring,
                    func: Callable[[Any], Any], samples: Iterable[Any]) -> bool:
    """Test whether ``func`` behaves as a homomorphism on sample elements.

    This cannot prove the property in general but is useful in tests and as a
    sanity check for user-supplied mappings.
    """
    samples = list(samples)
    if func(source.zero) != target.zero:
        return False
    if func(source.one) != target.one:
        return False
    for a in samples:
        for b in samples:
            if func(source.plus(a, b)) != target.plus(func(a), func(b)):
                return False
            if func(source.times(a, b)) != target.times(func(a), func(b)):
                return False
    return True
