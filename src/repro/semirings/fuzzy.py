"""The fuzzy / Viterbi semiring ([0, 1], max, *, 0, 1).

Annotations are confidence scores in the unit interval: union keeps the most
confident derivation, joins multiply confidences.  The semiring is an
l-semiring (it is totally ordered), so UA-DBs can carry lower and upper
bounds on a tuple's certain confidence across possible worlds -- one of the
"semirings beyond sets and bags" the paper's conclusion proposes to explore.
"""

from __future__ import annotations

from typing import Any

from repro.semirings.base import Semiring


class FuzzySemiring(Semiring):
    """Confidence scores in [0, 1] with max as addition and * as product."""

    name = "V"

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def plus(self, a: float, b: float) -> float:
        return max(a, b)

    def times(self, a: float, b: float) -> float:
        return a * b

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and 0.0 <= float(value) <= 1.0
        )

    def leq(self, a: float, b: float) -> bool:
        # max-based addition makes the natural order the usual order on [0,1].
        return a <= b

    def glb(self, a: float, b: float) -> float:
        return min(a, b)

    def lub(self, a: float, b: float) -> float:
        return max(a, b)


#: Shared singleton instance of the fuzzy semiring.
FUZZY = FuzzySemiring()
