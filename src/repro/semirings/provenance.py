"""Provenance semirings: N[X] polynomials, Why(X) witnesses and Lineage.

Green et al. introduced the provenance polynomial semiring ``N[X]`` as the
*universal* commutative semiring over a set of variables X: any other
annotation semantics is obtained by evaluating the polynomial under a
valuation of the variables.  The UA-DB paper's framework is built on the same
K-relation machinery, and its conclusions call out "uncertain versions of
semirings beyond sets and bags" as future work.  This module provides three
classic provenance semirings, all of which are l-semirings and can therefore
carry UA-DB style certain-annotation bounds:

* :class:`PolynomialSemiring` -- provenance polynomials ``N[X]``.  The natural
  order is coefficient-wise, so GLB/LUB are the monomial-wise min/max of
  coefficients and the semiring has a monus (truncated coefficient
  subtraction).
* :class:`WhySemiring` -- why-provenance ``Why(X)``: sets of witnesses (sets
  of variables).  Both operations are idempotent; the natural order is set
  inclusion.
* :class:`LineageSemiring` -- lineage ``Lin(X)``: the set of all contributing
  variables, with a distinguished bottom element for "no derivation".

Variables are plain strings (typically tuple identifiers).  Polynomials are
kept in a canonical sorted form so equality, hashing and ordering behave like
the mathematical objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.semirings.base import Semiring, SemiringHomomorphism

#: A monomial maps variable names to positive integer exponents.  It is stored
#: as a sorted tuple of ``(variable, exponent)`` pairs so it can be hashed.
Monomial = Tuple[Tuple[str, int], ...]

#: The empty monomial (the constant term).
UNIT_MONOMIAL: Monomial = ()


def _normalize_monomial(powers: Mapping[str, int]) -> Monomial:
    """Canonical sorted form of a variable-to-exponent mapping."""
    items = [(var, exp) for var, exp in powers.items() if exp > 0]
    items.sort()
    return tuple(items)


def _multiply_monomials(left: Monomial, right: Monomial) -> Monomial:
    """Product of two monomials (exponents add)."""
    powers: Dict[str, int] = dict(left)
    for var, exp in right:
        powers[var] = powers.get(var, 0) + exp
    return _normalize_monomial(powers)


@dataclass(frozen=True)
class Polynomial:
    """A provenance polynomial: a finite map from monomials to N coefficients.

    Instances are immutable and canonical: zero coefficients are dropped and
    the term order is fixed, so two equal polynomials compare and hash equal.
    """

    terms: Tuple[Tuple[Monomial, int], ...]

    def __init__(self, terms: Mapping[Monomial, int] | Iterable[Tuple[Monomial, int]] = ()) -> None:
        collected: Dict[Monomial, int] = {}
        items = terms.items() if isinstance(terms, Mapping) else terms
        for monomial, coefficient in items:
            if coefficient < 0:
                raise ValueError("N[X] coefficients must be non-negative")
            if coefficient == 0:
                continue
            key = _normalize_monomial(dict(monomial))
            collected[key] = collected.get(key, 0) + coefficient
        canonical = tuple(sorted(collected.items()))
        object.__setattr__(self, "terms", canonical)

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return cls()

    @classmethod
    def one(cls) -> "Polynomial":
        """The constant polynomial 1."""
        return cls({UNIT_MONOMIAL: 1})

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        """A constant polynomial ``value``."""
        if value < 0:
            raise ValueError("N[X] constants must be non-negative")
        return cls({UNIT_MONOMIAL: value} if value else {})

    @classmethod
    def variable(cls, name: str, exponent: int = 1, coefficient: int = 1) -> "Polynomial":
        """The polynomial ``coefficient * name^exponent``."""
        if exponent <= 0:
            raise ValueError("variable exponent must be positive")
        return cls({((name, exponent),): coefficient})

    # -- inspection -----------------------------------------------------------

    def coefficient(self, monomial: Monomial) -> int:
        """The coefficient of ``monomial`` (0 if absent)."""
        key = _normalize_monomial(dict(monomial))
        for mono, coeff in self.terms:
            if mono == key:
                return coeff
        return 0

    def variables(self) -> FrozenSet[str]:
        """All variables mentioned by the polynomial."""
        return frozenset(var for mono, _ in self.terms for var, _ in mono)

    def monomials(self) -> Tuple[Monomial, ...]:
        """The monomials with non-zero coefficients."""
        return tuple(mono for mono, _ in self.terms)

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self.terms

    def degree(self) -> int:
        """Total degree (0 for constants and the zero polynomial)."""
        if not self.terms:
            return 0
        return max(sum(exp for _, exp in mono) for mono, _ in self.terms)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        combined: Dict[Monomial, int] = dict(self.terms)
        for mono, coeff in other.terms:
            combined[mono] = combined.get(mono, 0) + coeff
        return Polynomial(combined)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        combined: Dict[Monomial, int] = {}
        for left_mono, left_coeff in self.terms:
            for right_mono, right_coeff in other.terms:
                mono = _multiply_monomials(left_mono, right_mono)
                combined[mono] = combined.get(mono, 0) + left_coeff * right_coeff
        return Polynomial(combined)

    def pointwise_min(self, other: "Polynomial") -> "Polynomial":
        """Monomial-wise minimum of coefficients (the N[X] GLB)."""
        monomials = {mono for mono, _ in self.terms} & {mono for mono, _ in other.terms}
        return Polynomial({
            mono: min(self.coefficient(mono), other.coefficient(mono))
            for mono in monomials
        })

    def pointwise_max(self, other: "Polynomial") -> "Polynomial":
        """Monomial-wise maximum of coefficients (the N[X] LUB)."""
        monomials = {mono for mono, _ in self.terms} | {mono for mono, _ in other.terms}
        return Polynomial({
            mono: max(self.coefficient(mono), other.coefficient(mono))
            for mono in monomials
        })

    def monus(self, other: "Polynomial") -> "Polynomial":
        """Monomial-wise truncated subtraction."""
        return Polynomial({
            mono: max(coeff - other.coefficient(mono), 0)
            for mono, coeff in self.terms
        })

    def leq(self, other: "Polynomial") -> bool:
        """Natural order: coefficient-wise less-or-equal."""
        return all(coeff <= other.coefficient(mono) for mono, coeff in self.terms)

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, valuation: Mapping[str, Any], semiring: Semiring) -> Any:
        """Evaluate the polynomial in ``semiring`` under ``valuation``.

        This is the universality property of N[X]: substituting semiring
        values for the variables and interpreting + and * in the target
        semiring yields the annotation the query would have computed there
        directly.  Missing variables default to the target's 1.
        """
        total = semiring.zero
        for monomial, coefficient in self.terms:
            product = semiring.one
            for variable, exponent in monomial:
                value = valuation.get(variable, semiring.one)
                for _ in range(exponent):
                    product = semiring.times(product, value)
            term = semiring.zero
            for _ in range(coefficient):
                term = semiring.plus(term, product)
            total = semiring.plus(total, term)
        return total

    def to_why(self) -> FrozenSet[FrozenSet[str]]:
        """Specialize to why-provenance (drop exponents and coefficients)."""
        return frozenset(
            frozenset(var for var, _ in monomial) for monomial, _ in self.terms
        )

    def to_lineage(self) -> Optional[FrozenSet[str]]:
        """Specialize to lineage (the set of all contributing variables)."""
        if self.is_zero():
            return None
        return self.variables()

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coefficient in self.terms:
            factors = [
                var if exp == 1 else f"{var}^{exp}" for var, exp in monomial
            ]
            if not factors:
                parts.append(str(coefficient))
            elif coefficient == 1:
                parts.append("*".join(factors))
            else:
                parts.append(f"{coefficient}*" + "*".join(factors))
        return " + ".join(parts)


class PolynomialSemiring(Semiring):
    """Provenance polynomials N[X] (the universal commutative semiring).

    The natural order compares coefficients monomial-wise, which makes N[X]
    an l-semiring: GLB and LUB are the monomial-wise min and max.  The
    semiring also has a monus, so N[X]-annotated UA-DBs support the ``Enc``
    encoding.
    """

    name = "N[X]"

    @property
    def zero(self) -> Polynomial:
        return Polynomial.zero()

    @property
    def one(self) -> Polynomial:
        return Polynomial.one()

    def plus(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a + b

    def times(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a * b

    def contains(self, value: Any) -> bool:
        return isinstance(value, Polynomial)

    def leq(self, a: Polynomial, b: Polynomial) -> bool:
        return a.leq(b)

    def glb(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a.pointwise_min(b)

    def lub(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a.pointwise_max(b)

    def monus(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a.monus(b)

    # -- homomorphisms ---------------------------------------------------------

    def evaluation_homomorphism(self, valuation: Mapping[str, Any],
                                target: Semiring) -> SemiringHomomorphism:
        """The homomorphism N[X] -> target induced by ``valuation``."""
        return SemiringHomomorphism(
            self, target,
            lambda polynomial: polynomial.evaluate(valuation, target),
            name=f"eval->{target.name}",
        )

    def why_homomorphism(self) -> SemiringHomomorphism:
        """The specialization homomorphism N[X] -> Why(X)."""
        return SemiringHomomorphism(self, WHY, lambda p: p.to_why(), name="to_why")

    def lineage_homomorphism(self) -> SemiringHomomorphism:
        """The specialization homomorphism N[X] -> Lin(X)."""
        return SemiringHomomorphism(self, LINEAGE, lambda p: p.to_lineage(), name="to_lineage")


class WhySemiring(Semiring):
    """Why-provenance Why(X): finite sets of witnesses (sets of variables).

    Addition is union of witness sets, multiplication combines every witness
    of one side with every witness of the other.  Both operations are
    idempotent; the natural order is set inclusion, so GLB/LUB are
    intersection/union.
    """

    name = "Why(X)"

    @property
    def zero(self) -> FrozenSet[FrozenSet[str]]:
        return frozenset()

    @property
    def one(self) -> FrozenSet[FrozenSet[str]]:
        return frozenset({frozenset()})

    @staticmethod
    def witness(*variables: str) -> FrozenSet[FrozenSet[str]]:
        """A singleton witness set containing the given variables."""
        return frozenset({frozenset(variables)})

    def plus(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a | b

    def times(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return frozenset(left | right for left in a for right in b)

    def contains(self, value: Any) -> bool:
        return isinstance(value, frozenset) and all(
            isinstance(witness, frozenset) for witness in value
        )

    def leq(self, a: FrozenSet, b: FrozenSet) -> bool:
        return a <= b

    def glb(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a & b

    def lub(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a | b

    def monus(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a - b


#: Sentinel for the Lineage semiring's bottom element ("no derivation").
LINEAGE_BOTTOM = None


class LineageSemiring(Semiring):
    """Lineage Lin(X): the set of all variables contributing to a tuple.

    The domain is ``{BOTTOM} ∪ P(X)``: the bottom element means the tuple has
    no derivation (it is the additive identity and annihilates products),
    while the empty set is the multiplicative identity (derived from no
    source tuples).  Both operations take unions of contributing variables.
    """

    name = "Lin(X)"

    @property
    def zero(self) -> Optional[FrozenSet[str]]:
        return LINEAGE_BOTTOM

    @property
    def one(self) -> FrozenSet[str]:
        return frozenset()

    @staticmethod
    def of(*variables: str) -> FrozenSet[str]:
        """The lineage consisting of the given variables."""
        return frozenset(variables)

    def plus(self, a: Optional[FrozenSet], b: Optional[FrozenSet]) -> Optional[FrozenSet]:
        if a is LINEAGE_BOTTOM:
            return b
        if b is LINEAGE_BOTTOM:
            return a
        return a | b

    def times(self, a: Optional[FrozenSet], b: Optional[FrozenSet]) -> Optional[FrozenSet]:
        if a is LINEAGE_BOTTOM or b is LINEAGE_BOTTOM:
            return LINEAGE_BOTTOM
        return a | b

    def contains(self, value: Any) -> bool:
        if value is LINEAGE_BOTTOM:
            return True
        return isinstance(value, frozenset) and all(isinstance(v, str) for v in value)

    def leq(self, a: Optional[FrozenSet], b: Optional[FrozenSet]) -> bool:
        if a is LINEAGE_BOTTOM:
            return True
        if b is LINEAGE_BOTTOM:
            return False
        return a <= b

    def glb(self, a: Optional[FrozenSet], b: Optional[FrozenSet]) -> Optional[FrozenSet]:
        if a is LINEAGE_BOTTOM or b is LINEAGE_BOTTOM:
            return LINEAGE_BOTTOM
        return a & b

    def lub(self, a: Optional[FrozenSet], b: Optional[FrozenSet]) -> Optional[FrozenSet]:
        if a is LINEAGE_BOTTOM:
            return b
        if b is LINEAGE_BOTTOM:
            return a
        return a | b


#: Shared singleton instances.
POLYNOMIAL = PolynomialSemiring()
WHY = WhySemiring()
LINEAGE = LineageSemiring()
