"""Tropical (min-plus and max-min) semirings.

These are not used directly by the paper's experiments, but they are
l-semirings and serve both as additional generality tests for the framework
and as examples of cost-based annotation (e.g. minimal access cost).
"""

from __future__ import annotations

import math
from typing import Any

from repro.semirings.base import Semiring


class MinTropicalSemiring(Semiring):
    """Min-plus semiring over non-negative reals extended with infinity.

    Addition is ``min``, multiplication is ``+``, zero is ``+inf`` and one is
    ``0.0``.  The natural order is the *reverse* numeric order (smaller cost
    is "larger" in the semiring sense because ``min(a, b)`` reaches it).
    """

    name = "Trop-min"

    @property
    def zero(self) -> float:
        return math.inf

    @property
    def one(self) -> float:
        return 0.0

    def plus(self, a: float, b: float) -> float:
        return min(a, b)

    def times(self, a: float, b: float) -> float:
        return a + b

    def contains(self, value: Any) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool) and value >= 0

    def leq(self, a: float, b: float) -> bool:
        # a <= b iff exists c with min(a, c) == b, i.e. b <= a numerically.
        return b <= a

    def glb(self, a: float, b: float) -> float:
        return max(a, b)

    def lub(self, a: float, b: float) -> float:
        return min(a, b)


class MaxTropicalSemiring(Semiring):
    """Max-min (bottleneck) semiring over ``[0, 1]``.

    Addition is ``max``, multiplication is ``min``; useful for annotating
    tuples with confidence scores.  Idempotent, hence an l-semiring with the
    numeric order as natural order.
    """

    name = "Trop-max"

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def plus(self, a: float, b: float) -> float:
        return max(a, b)

    def times(self, a: float, b: float) -> float:
        return min(a, b)

    def contains(self, value: Any) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool) and 0 <= value <= 1

    def leq(self, a: float, b: float) -> bool:
        return a <= b

    def glb(self, a: float, b: float) -> float:
        return min(a, b)

    def lub(self, a: float, b: float) -> float:
        return max(a, b)

    def monus(self, a: float, b: float) -> float:
        return a if b < a else 0.0


#: Shared singletons.
MIN_TROPICAL = MinTropicalSemiring()
MAX_TROPICAL = MaxTropicalSemiring()
