"""The access-control semiring A (Green et al. / Foster et al.).

Annotations are clearance levels ordered ``0 < T < S < C < P`` where

* ``0``  -- nobody can access the tuple,
* ``T``  -- top secret,
* ``S``  -- secret,
* ``C``  -- confidential,
* ``P``  -- public.

Addition is ``max`` (the most permissive derivation wins) and multiplication
is ``min`` (joining data requires the stricter clearance).  The semiring is
idempotent; its natural order coincides with the clearance order, GLB is
``min`` and LUB is ``max``.  The paper uses A in Section 11.3 to evaluate
UA-DB labelings beyond set and bag semantics (Figure 21).
"""

from __future__ import annotations

import enum
from typing import Any

from repro.semirings.base import Semiring


class AccessLevel(enum.IntEnum):
    """Clearance levels of the access-control semiring, ordered by permissiveness."""

    NONE = 0          #: ``0`` -- nobody can access
    TOP_SECRET = 1    #: ``T``
    SECRET = 2        #: ``S``
    CONFIDENTIAL = 3  #: ``C``
    PUBLIC = 4        #: ``P``

    @property
    def symbol(self) -> str:
        """Single-character symbol used in the paper (0, T, S, C, P)."""
        return {"NONE": "0", "TOP_SECRET": "T", "SECRET": "S",
                "CONFIDENTIAL": "C", "PUBLIC": "P"}[self.name]

    @classmethod
    def from_symbol(cls, symbol: str) -> "AccessLevel":
        """Parse a single-character symbol into an :class:`AccessLevel`."""
        mapping = {"0": cls.NONE, "T": cls.TOP_SECRET, "S": cls.SECRET,
                   "C": cls.CONFIDENTIAL, "P": cls.PUBLIC}
        try:
            return mapping[symbol.upper()]
        except KeyError as exc:
            raise ValueError(f"unknown access level symbol {symbol!r}") from exc

    def distance(self, other: "AccessLevel") -> float:
        """Normalized distance between two levels (used by Figure 21).

        The paper normalizes by the number of levels, e.g. the distance
        between C and T is 2/5 = 0.4.
        """
        return abs(int(self) - int(other)) / len(AccessLevel)


class AccessControlSemiring(Semiring):
    """Access control: max/min over the clearance lattice."""

    name = "A"

    @property
    def zero(self) -> AccessLevel:
        return AccessLevel.NONE

    @property
    def one(self) -> AccessLevel:
        return AccessLevel.PUBLIC

    def plus(self, a: AccessLevel, b: AccessLevel) -> AccessLevel:
        return max(a, b)

    def times(self, a: AccessLevel, b: AccessLevel) -> AccessLevel:
        return min(a, b)

    def contains(self, value: Any) -> bool:
        return isinstance(value, AccessLevel)

    def leq(self, a: AccessLevel, b: AccessLevel) -> bool:
        return a <= b

    def glb(self, a: AccessLevel, b: AccessLevel) -> AccessLevel:
        return min(a, b)

    def lub(self, a: AccessLevel, b: AccessLevel) -> AccessLevel:
        return max(a, b)

    def monus(self, a: AccessLevel, b: AccessLevel) -> AccessLevel:
        # In an idempotent max-plus structure the monus is "a if b < a else 0".
        return a if b < a else AccessLevel.NONE


#: Shared singleton instance of the access-control semiring.
ACCESS = AccessControlSemiring()
