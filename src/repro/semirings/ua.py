"""The UA-semiring K_UA = K x K (Definition 3 of the paper).

A UA annotation is a pair ``[c, d]`` where ``d`` is a tuple's annotation in
the designated best-guess world and ``c`` is an under-approximation of its
certain annotation, so ``c <=_K cert_K <=_K d``.  The semiring operates
pointwise; ``h_cert`` and ``h_det`` are the two projection homomorphisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.semirings.base import Semiring, SemiringHomomorphism


@dataclass(frozen=True)
class UAAnnotation:
    """A pair ``[certain, determinized]`` of K-elements annotating one tuple.

    ``certain`` under-approximates the tuple's certain annotation;
    ``determinized`` is the annotation in the best-guess world.
    """

    certain: Any
    determinized: Any

    def __iter__(self) -> Iterator[Any]:
        yield self.certain
        yield self.determinized

    def __getitem__(self, index: int) -> Any:
        return (self.certain, self.determinized)[index]

    def as_tuple(self) -> tuple:
        """Return the annotation as a plain ``(certain, determinized)`` tuple."""
        return (self.certain, self.determinized)

    def __repr__(self) -> str:
        return f"[{self.certain!r}, {self.determinized!r}]"


class UASemiring(Semiring):
    """K^2 with pairs stored as :class:`UAAnnotation` objects."""

    def __init__(self, base: Semiring) -> None:
        self.base = base
        self.name = f"{base.name}_UA"
        # The identity pairs are immutable (frozen dataclass); caching them
        # keeps per-row hot paths (inserts, is_zero checks) allocation-free.
        self._zero = UAAnnotation(base.zero, base.zero)
        self._one = UAAnnotation(base.one, base.one)

    # -- construction -------------------------------------------------------

    def annotation(self, certain: Any, determinized: Any) -> UAAnnotation:
        """Build (and validate) a UA annotation ``[certain, determinized]``.

        Raises ``ValueError`` if the pair violates the bound invariant
        ``certain <=_K determinized`` -- such a pair could never sandwich the
        certain annotation.
        """
        self.base.check(certain)
        self.base.check(determinized)
        if not self.base.leq(certain, determinized):
            raise ValueError(
                f"UA annotation invariant violated: {certain!r} is not <= "
                f"{determinized!r} in {self.base.name}"
            )
        return UAAnnotation(certain, determinized)

    def certain_annotation(self, value: Any) -> UAAnnotation:
        """Annotation of a tuple known to be certain with annotation ``value``."""
        return self.annotation(value, value)

    def uncertain_annotation(self, value: Any) -> UAAnnotation:
        """Annotation of a best-guess tuple with no certainty information."""
        return self.annotation(self.base.zero, value)

    # -- identities ----------------------------------------------------------

    @property
    def zero(self) -> UAAnnotation:
        return self._zero

    @property
    def one(self) -> UAAnnotation:
        return self._one

    # -- operations ----------------------------------------------------------

    def plus(self, a: UAAnnotation, b: UAAnnotation) -> UAAnnotation:
        return UAAnnotation(
            self.base.plus(a.certain, b.certain),
            self.base.plus(a.determinized, b.determinized),
        )

    def times(self, a: UAAnnotation, b: UAAnnotation) -> UAAnnotation:
        return UAAnnotation(
            self.base.times(a.certain, b.certain),
            self.base.times(a.determinized, b.determinized),
        )

    def delta(self, value: UAAnnotation) -> UAAnnotation:
        """Component-wise ``delta``: ``[delta(c), delta(d)]``.

        The product-semiring default (any non-zero pair -> ``[1, 1]``) would
        label every surviving duplicate-eliminated tuple certain, breaking
        c-soundness; component-wise ``delta`` keeps both projection
        homomorphisms commuting with duplicate elimination.
        """
        return UAAnnotation(
            self.base.delta(value.certain), self.base.delta(value.determinized)
        )

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, UAAnnotation)
            and self.base.contains(value.certain)
            and self.base.contains(value.determinized)
        )

    def leq(self, a: UAAnnotation, b: UAAnnotation) -> bool:
        return self.base.leq(a.certain, b.certain) and self.base.leq(
            a.determinized, b.determinized
        )

    def glb(self, a: UAAnnotation, b: UAAnnotation) -> UAAnnotation:
        return UAAnnotation(
            self.base.glb(a.certain, b.certain),
            self.base.glb(a.determinized, b.determinized),
        )

    def lub(self, a: UAAnnotation, b: UAAnnotation) -> UAAnnotation:
        return UAAnnotation(
            self.base.lub(a.certain, b.certain),
            self.base.lub(a.determinized, b.determinized),
        )

    def monus(self, a: UAAnnotation, b: UAAnnotation) -> UAAnnotation:
        return UAAnnotation(
            self.base.monus(a.certain, b.certain),
            self.base.monus(a.determinized, b.determinized),
        )

    # -- projections ----------------------------------------------------------

    @property
    def h_cert(self) -> SemiringHomomorphism:
        """Homomorphism extracting the under-approximation component."""
        return SemiringHomomorphism(
            self, self.base, lambda pair: pair.certain, name="h_cert"
        )

    @property
    def h_det(self) -> SemiringHomomorphism:
        """Homomorphism extracting the best-guess-world component."""
        return SemiringHomomorphism(
            self, self.base, lambda pair: pair.determinized, name="h_det"
        )
