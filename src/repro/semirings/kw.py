"""The possible-world semiring K^W (Definition 2 of the paper).

A K^W element is a vector whose i-th component is a tuple's K-annotation in
possible world i.  Operations are applied component-wise.  ``cert`` (the GLB
across components) and ``poss`` (the LUB) compute certain and possible
annotations; ``pw(i)`` extracts one possible world and is a semiring
homomorphism (Lemma 1), so it commutes with RA+ queries.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.semirings.base import Semiring, SemiringHomomorphism


class PossibleWorldSemiring(Semiring):
    """K^W: vectors of K-annotations, one component per possible world."""

    def __init__(self, base: Semiring, num_worlds: int) -> None:
        if num_worlds < 1:
            raise ValueError("a possible-world semiring needs at least one world")
        self.base = base
        self.num_worlds = num_worlds
        self.name = f"{base.name}^{num_worlds}"

    # -- identities --------------------------------------------------------

    @property
    def zero(self) -> Tuple[Any, ...]:
        return tuple(self.base.zero for _ in range(self.num_worlds))

    @property
    def one(self) -> Tuple[Any, ...]:
        return tuple(self.base.one for _ in range(self.num_worlds))

    # -- helpers -----------------------------------------------------------

    def vector(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Build (and validate) an annotation vector from per-world values."""
        values = tuple(values)
        if len(values) != self.num_worlds:
            raise ValueError(
                f"expected {self.num_worlds} per-world annotations, got {len(values)}"
            )
        for value in values:
            self.base.check(value)
        return values

    def constant(self, value: Any) -> Tuple[Any, ...]:
        """Annotation vector with the same value in every world."""
        self.base.check(value)
        return tuple(value for _ in range(self.num_worlds))

    def _check(self, value: Tuple[Any, ...]) -> None:
        if len(value) != self.num_worlds:
            raise ValueError(
                f"annotation vector of length {len(value)} does not match "
                f"{self.num_worlds} possible worlds"
            )

    # -- semiring operations ------------------------------------------------

    def plus(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        self._check(a)
        self._check(b)
        return tuple(self.base.plus(x, y) for x, y in zip(a, b))

    def times(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        self._check(a)
        self._check(b)
        return tuple(self.base.times(x, y) for x, y in zip(a, b))

    def delta(self, value: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Per-world ``delta``: a tuple absent from world ``w`` must stay
        absent from ``w`` after duplicate elimination."""
        self._check(value)
        return tuple(self.base.delta(x) for x in value)

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, tuple)
            and len(value) == self.num_worlds
            and all(self.base.contains(v) for v in value)
        )

    def leq(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> bool:
        self._check(a)
        self._check(b)
        return all(self.base.leq(x, y) for x, y in zip(a, b))

    def glb(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        self._check(a)
        self._check(b)
        return tuple(self.base.glb(x, y) for x, y in zip(a, b))

    def lub(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        self._check(a)
        self._check(b)
        return tuple(self.base.lub(x, y) for x, y in zip(a, b))

    # -- UA-DB specific operations -------------------------------------------

    def cert(self, vector: Tuple[Any, ...]) -> Any:
        """Certain annotation: GLB of the vector's components (``cert_K``)."""
        self._check(vector)
        return self.base.glb_all(vector)

    def poss(self, vector: Tuple[Any, ...]) -> Any:
        """Possible annotation: LUB of the vector's components (``poss_K``)."""
        self._check(vector)
        return self.base.lub_all(vector)

    def pw(self, world: int) -> SemiringHomomorphism:
        """Projection homomorphism ``pw_i`` onto possible world ``world``."""
        if not 0 <= world < self.num_worlds:
            raise IndexError(f"world {world} out of range (0..{self.num_worlds - 1})")
        return SemiringHomomorphism(
            self, self.base, lambda vector: vector[world], name=f"pw_{world}"
        )
