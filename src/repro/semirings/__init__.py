"""Commutative semirings used to annotate relations (Green et al., PODS 2007).

The UA-DB paper builds on K-relations: relations whose tuples carry
annotations drawn from a commutative semiring K.  This package provides

* the abstract :class:`~repro.semirings.base.Semiring` interface, including
  the *natural order* and lattice (GLB / LUB) operations required of
  l-semirings,
* concrete semirings: the boolean (set) semiring ``BOOLEAN``, the natural
  number (bag) semiring ``NATURAL``, the access-control semiring ``ACCESS``,
  the min/max tropical semirings, and a generic bounded-lattice semiring,
* semiring combinators: the direct product of two semirings, the possible
  world semiring K^W, and the UA-semiring K x K,
* semiring homomorphisms and helpers to lift them to relations.
"""

from repro.semirings.base import (
    Semiring,
    SemiringElementError,
    SemiringHomomorphism,
    is_homomorphism,
)
from repro.semirings.boolean import BooleanSemiring, BOOLEAN
from repro.semirings.natural import NaturalSemiring, NATURAL
from repro.semirings.access import AccessControlSemiring, ACCESS, AccessLevel
from repro.semirings.tropical import MinTropicalSemiring, MaxTropicalSemiring, MIN_TROPICAL, MAX_TROPICAL
from repro.semirings.product import ProductSemiring
from repro.semirings.kw import PossibleWorldSemiring
from repro.semirings.ua import UASemiring, UAAnnotation
from repro.semirings.fuzzy import FuzzySemiring, FUZZY
from repro.semirings.provenance import (
    Polynomial,
    PolynomialSemiring,
    WhySemiring,
    LineageSemiring,
    POLYNOMIAL,
    WHY,
    LINEAGE,
    LINEAGE_BOTTOM,
)

__all__ = [
    "Semiring",
    "SemiringElementError",
    "SemiringHomomorphism",
    "is_homomorphism",
    "BooleanSemiring",
    "BOOLEAN",
    "NaturalSemiring",
    "NATURAL",
    "AccessControlSemiring",
    "ACCESS",
    "AccessLevel",
    "MinTropicalSemiring",
    "MaxTropicalSemiring",
    "MIN_TROPICAL",
    "MAX_TROPICAL",
    "ProductSemiring",
    "PossibleWorldSemiring",
    "UASemiring",
    "UAAnnotation",
    "FuzzySemiring",
    "FUZZY",
    "Polynomial",
    "PolynomialSemiring",
    "WhySemiring",
    "LineageSemiring",
    "POLYNOMIAL",
    "WHY",
    "LINEAGE",
    "LINEAGE_BOTTOM",
]
