"""Direct products of semirings.

The direct product ``K1 x K2`` operates component-wise and is itself a
semiring (products of semirings are semirings).  Both the possible-world
semiring K^W and the UA-semiring K^2 are instances of (iterated) products.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.semirings.base import Semiring


class ProductSemiring(Semiring):
    """The direct product of an arbitrary, fixed sequence of semirings.

    Elements are tuples whose i-th component lives in the i-th factor.  All
    operations are applied component-wise.  If every factor is an l-semiring,
    the product is an l-semiring with component-wise GLB/LUB.
    """

    def __init__(self, factors: Sequence[Semiring], name: str | None = None) -> None:
        if not factors:
            raise ValueError("a product semiring needs at least one factor")
        self.factors: Tuple[Semiring, ...] = tuple(factors)
        self.name = name or " x ".join(factor.name for factor in self.factors)

    @property
    def arity(self) -> int:
        """Number of factors in the product."""
        return len(self.factors)

    @property
    def zero(self) -> Tuple[Any, ...]:
        return tuple(factor.zero for factor in self.factors)

    @property
    def one(self) -> Tuple[Any, ...]:
        return tuple(factor.one for factor in self.factors)

    def _check_arity(self, value: Tuple[Any, ...]) -> None:
        if len(value) != self.arity:
            raise ValueError(
                f"expected a {self.arity}-tuple for semiring {self.name}, got {value!r}"
            )

    def plus(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        self._check_arity(a)
        self._check_arity(b)
        return tuple(f.plus(x, y) for f, x, y in zip(self.factors, a, b))

    def times(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        self._check_arity(a)
        self._check_arity(b)
        return tuple(f.times(x, y) for f, x, y in zip(self.factors, a, b))

    def delta(self, value: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Component-wise ``delta`` (commutes with the factor projections)."""
        self._check_arity(value)
        return tuple(f.delta(x) for f, x in zip(self.factors, value))

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, tuple)
            and len(value) == self.arity
            and all(f.contains(v) for f, v in zip(self.factors, value))
        )

    def leq(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> bool:
        self._check_arity(a)
        self._check_arity(b)
        return all(f.leq(x, y) for f, x, y in zip(self.factors, a, b))

    def glb(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        self._check_arity(a)
        self._check_arity(b)
        return tuple(f.glb(x, y) for f, x, y in zip(self.factors, a, b))

    def lub(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        self._check_arity(a)
        self._check_arity(b)
        return tuple(f.lub(x, y) for f, x, y in zip(self.factors, a, b))

    def monus(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        self._check_arity(a)
        self._check_arity(b)
        return tuple(f.monus(x, y) for f, x, y in zip(self.factors, a, b))

    def project(self, index: int):
        """Return the projection homomorphism onto the ``index``-th factor."""
        from repro.semirings.base import SemiringHomomorphism

        if not 0 <= index < self.arity:
            raise IndexError(f"factor index {index} out of range for {self.name}")
        return SemiringHomomorphism(
            self, self.factors[index], lambda value: value[index],
            name=f"pi_{index}",
        )
