"""The boolean semiring B = ({False, True}, or, and, False, True).

B-relations encode classical set semantics: a tuple is annotated ``True`` iff
it is a member of the relation.  The natural order is ``False < True``, the
GLB is conjunction and the LUB is disjunction, so the certain annotation of a
tuple across possible worlds is exactly the classical "appears in every
world" definition of certain answers.
"""

from __future__ import annotations

from typing import Any

from repro.semirings.base import Semiring


class BooleanSemiring(Semiring):
    """Set semantics: annotations are Python booleans."""

    name = "B"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def plus(self, a: bool, b: bool) -> bool:
        return bool(a) or bool(b)

    def times(self, a: bool, b: bool) -> bool:
        return bool(a) and bool(b)

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)

    def leq(self, a: bool, b: bool) -> bool:
        return (not a) or b

    def glb(self, a: bool, b: bool) -> bool:
        return bool(a) and bool(b)

    def lub(self, a: bool, b: bool) -> bool:
        return bool(a) or bool(b)

    def monus(self, a: bool, b: bool) -> bool:
        # Truncated difference: True - True = False, True - False = True.
        return bool(a) and not bool(b)


#: Shared singleton instance of the boolean semiring.
BOOLEAN = BooleanSemiring()
