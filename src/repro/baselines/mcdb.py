"""MCDB-style Monte-Carlo query processing (tuple-bundle sampling).

MCDB evaluates a query once per sampled possible world ("tuple bundles" of
size N) and estimates result statistics from the per-sample results.  The
paper uses 10 samples; the runtime is therefore roughly N times deterministic
query processing, and tuples appearing in every sample over-approximate the
certain answers.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db import algebra
from repro.db.database import Database
from repro.db.evaluator import evaluate
from repro.db.relation import KRelation, Row
from repro.db.sql import parse_query
from repro.semirings import BOOLEAN, Semiring
from repro.incomplete.tidb import TIDatabase
from repro.incomplete.xdb import XDatabase


class MCDBSampler:
    """Samples possible worlds from an x-DB or TI-DB and runs queries over them."""

    def __init__(self, num_samples: int = 10, seed: int = 0,
                 semiring: Semiring = BOOLEAN) -> None:
        if num_samples < 1:
            raise ValueError("need at least one sample")
        self.num_samples = num_samples
        self.seed = seed
        self.semiring = semiring

    # -- world sampling -----------------------------------------------------------

    def sample_worlds_xdb(self, xdb: XDatabase) -> List[Database]:
        """Draw ``num_samples`` independent worlds from an x-DB / BI-DB."""
        rng = random.Random(self.seed)
        worlds = []
        for _ in range(self.num_samples):
            world = Database(self.semiring, xdb.name)
            for relation in xdb:
                k_relation = KRelation(relation.schema, self.semiring)
                for x_tuple in relation:
                    choices = x_tuple.choices()
                    weights = [x_tuple.choice_probability(choice) for choice in choices]
                    if sum(weights) <= 0:
                        weights = [1.0] * len(choices)
                    choice = rng.choices(choices, weights=weights, k=1)[0]
                    if choice is not None:
                        k_relation.add(choice, self.semiring.one)
                world.add_relation(k_relation)
            worlds.append(world)
        return worlds

    def sample_worlds_tidb(self, tidb: TIDatabase) -> List[Database]:
        """Draw ``num_samples`` independent worlds from a TI-DB."""
        rng = random.Random(self.seed)
        worlds = []
        for _ in range(self.num_samples):
            world = Database(self.semiring, tidb.name)
            for relation in tidb:
                k_relation = KRelation(relation.schema, self.semiring)
                for ti_tuple in relation:
                    if rng.random() < ti_tuple.probability:
                        k_relation.add(ti_tuple.values, self.semiring.one)
                world.add_relation(k_relation)
            worlds.append(world)
        return worlds

    # -- query evaluation -----------------------------------------------------------

    def query(self, worlds: Sequence[Database],
              query: str | algebra.Operator) -> Tuple[List[KRelation], float]:
        """Evaluate ``query`` once per sampled world (MCDB's cost model)."""
        started = time.perf_counter()
        results = []
        for world in worlds:
            if isinstance(query, str):
                plan = parse_query(query, world.schema)
            else:
                plan = query
            results.append(evaluate(plan, world))
        return results, time.perf_counter() - started

    # -- estimation ---------------------------------------------------------------------

    @staticmethod
    def appearance_counts(results: Sequence[KRelation]) -> Dict[Row, int]:
        """Number of samples in which each row appears."""
        counts: Dict[Row, int] = {}
        for result in results:
            for row in result.rows():
                counts[row] = counts.get(row, 0) + 1
        return counts

    def estimated_probabilities(self, results: Sequence[KRelation]) -> Dict[Row, float]:
        """Per-row appearance frequency across the samples."""
        counts = self.appearance_counts(results)
        return {row: count / len(results) for row, count in counts.items()}

    def certain_row_estimate(self, results: Sequence[KRelation]) -> List[Row]:
        """Rows appearing in every sample (an over-approximation of certainty)."""
        counts = self.appearance_counts(results)
        return [row for row, count in counts.items() if count == len(results)]

    def possible_row_estimate(self, results: Sequence[KRelation]) -> List[Row]:
        """Rows appearing in at least one sample (an under-approximation of possibility)."""
        return list(self.appearance_counts(results).keys())
