"""The Libkin/Guagliardo certain-answer under-approximation.

Guagliardo and Libkin (PODS 2016 / SIGMOD Record 2017) evaluate queries over
databases with SQL nulls and return an *under-approximation* of the certain
answers: for positive queries it suffices to evaluate the query under SQL's
three-valued semantics (keeping only rows where the predicate is true) and
retain result tuples that contain no nulls.  Any such tuple is derived purely
from non-null values and therefore appears in every completion of the
database, i.e. it is a certain answer.

The baseline is *c-sound but never c-complete in the presence of nulls*: it
cannot return any answer mentioning an unknown value, which is exactly the
utility limitation Figure 18 quantifies.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.db import algebra
from repro.db.database import Database
from repro.db.evaluator import evaluate
from repro.db.relation import KRelation, Row
from repro.db.sql import parse_query


def libkin_query(database_with_nulls: Database,
                 query: str | algebra.Operator) -> Tuple[KRelation, float]:
    """Evaluate ``query`` over the null-carrying database under 3-valued logic.

    Returns the raw result (which may still contain nulls) and the elapsed
    time; :func:`libkin_certain_answers` applies the null-freeness filter.
    """
    started = time.perf_counter()
    if isinstance(query, str):
        plan = parse_query(query, database_with_nulls.schema)
    else:
        plan = query
    result = evaluate(plan, database_with_nulls)
    return result, time.perf_counter() - started


def certain_rows_of(result: KRelation) -> List[Row]:
    """Null-free rows of a query result (the certain-answer under-approximation)."""
    return [row for row in result.rows() if all(value is not None for value in row)]


def libkin_certain_answers(database_with_nulls: Database,
                           query: str | algebra.Operator) -> Tuple[List[Row], float]:
    """Certain-answer under-approximation and elapsed time for ``query``."""
    result, elapsed = libkin_query(database_with_nulls, query)
    started = time.perf_counter()
    rows = certain_rows_of(result)
    return rows, elapsed + (time.perf_counter() - started)
