"""Exact certain answers over C-tables via symbolic evaluation.

This baseline reproduces the pipeline the paper compares against in
Figure 10: the query is *instrumented* to compute a local condition for every
result tuple (joins conjoin input conditions, projections and unions disjoin
the conditions of coinciding tuples, selections conjoin the selection
predicate, instantiated over the tuple's symbolic values) and a tuple is a
certain answer iff it is ground and its local condition is a tautology.  The
paper uses Z3 for the tautology check; here :mod:`repro.incomplete.solver`
plays that role.

The per-tuple cost grows with the size of the accumulated condition, which is
exactly the behaviour Figure 10 measures (cost versus query complexity).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.db import algebra
from repro.db.expressions import (
    And, Arithmetic, Between, Column, Comparison, Expression, InList, IsNull,
    Literal, Negate, Not, Or,
)
from repro.db.schema import Attribute, RelationSchema
from repro.incomplete.conditions import (
    AndCondition, ComparisonAtom, Condition, FalseCondition, NotCondition,
    OrCondition, TrueCondition, Variable,
)
from repro.incomplete.ctable import CTable, CTableDatabase, CTupleSpec
from repro.incomplete.solver import is_tautology


class SymbolicEvaluationError(RuntimeError):
    """Raised when a plan cannot be evaluated symbolically over C-tables."""


class CTableQueryEvaluator:
    """Evaluates RA+ plans over a C-table database, producing a result C-table."""

    def __init__(self, database: CTableDatabase) -> None:
        self.database = database

    # -- public API -----------------------------------------------------------------

    def evaluate(self, plan: algebra.Operator) -> CTable:
        """Symbolically evaluate ``plan``; the result is a C-table."""
        return self._eval(plan)

    def certain_answers(self, plan: algebra.Operator,
                        merge_duplicates: bool = True) -> Tuple[List[Tuple], float]:
        """Exact certain answers of ``plan`` plus elapsed wall-clock seconds.

        A ground result tuple is certain iff the disjunction of the local
        conditions of all its occurrences is a tautology (under the closed
        world assumption with the database's variable domains).
        """
        started = time.perf_counter()
        result = self._eval(plan)
        candidates = [spec.values for spec in result.tuples if spec.is_ground()]
        seen = set()
        certain: List[Tuple] = []
        for candidate in candidates:
            if candidate in seen:
                continue
            seen.add(candidate)
            # The candidate is certain iff in every valuation *some* result
            # tuple instantiates to it: the disjunction over all result specs
            # of (local condition AND unification constraints) is a tautology.
            disjuncts: List[Condition] = []
            for spec in result.tuples:
                unified = _unify(spec, candidate)
                if unified is not None and not isinstance(unified, FalseCondition):
                    disjuncts.append(unified)
            if not disjuncts:
                continue
            condition: Condition = (
                disjuncts[0] if len(disjuncts) == 1 and merge_duplicates
                else OrCondition(tuple(disjuncts))
            )
            if is_tautology(condition, self.database.domains):
                certain.append(candidate)
        return certain, time.perf_counter() - started

    # -- symbolic evaluation -----------------------------------------------------------

    def _eval(self, plan: algebra.Operator) -> CTable:
        if isinstance(plan, algebra.RelationRef):
            relation = self.database.relation(plan.name)
            if plan.alias and plan.alias.lower() != plan.name.lower():
                return CTable(relation.schema.rename(plan.alias), list(relation.tuples))
            return relation
        if isinstance(plan, algebra.Qualify):
            child = self._eval(plan.child)
            attributes = [
                Attribute(f"{plan.qualifier}.{attr.name.split('.')[-1]}", attr.data_type)
                for attr in child.schema.attributes
            ]
            return CTable(RelationSchema(plan.qualifier, attributes), list(child.tuples))
        if isinstance(plan, algebra.Selection):
            child = self._eval(plan.child)
            result = CTable(child.schema)
            names = child.schema.attribute_names
            for spec in child.tuples:
                predicate = _predicate_to_condition(plan.predicate, names, spec.values)
                condition = AndCondition((spec.condition, predicate)).simplify()
                if not isinstance(condition, FalseCondition):
                    result.add(CTupleSpec(spec.values, condition))
            return result
        if isinstance(plan, algebra.Projection):
            child = self._eval(plan.child)
            names = child.schema.attribute_names
            schema = RelationSchema(
                child.schema.name, [Attribute(name) for _, name in plan.items]
            )
            result = CTable(schema)
            for spec in child.tuples:
                values = tuple(
                    _project_value(expr, names, spec.values) for expr, _ in plan.items
                )
                result.add(CTupleSpec(values, spec.condition))
            return result
        if isinstance(plan, (algebra.Join, algebra.CrossProduct)):
            predicate = plan.predicate if isinstance(plan, algebra.Join) else None
            left = self._eval(plan.left)
            right = self._eval(plan.right)
            schema = left.schema.concat(right.schema)
            names = schema.attribute_names
            result = CTable(schema)
            for left_spec in left.tuples:
                for right_spec in right.tuples:
                    values = left_spec.values + right_spec.values
                    condition: Condition = AndCondition(
                        (left_spec.condition, right_spec.condition)
                    )
                    if predicate is not None:
                        condition = AndCondition(
                            (condition, _predicate_to_condition(predicate, names, values))
                        )
                    condition = condition.simplify()
                    if not isinstance(condition, FalseCondition):
                        result.add(CTupleSpec(values, condition))
            return result
        if isinstance(plan, algebra.Union):
            left = self._eval(plan.left)
            right = self._eval(plan.right)
            result = CTable(left.schema, list(left.tuples))
            for spec in right.tuples:
                result.add(spec)
            return result
        raise SymbolicEvaluationError(
            f"operator {type(plan).__name__} is outside the fragment supported by "
            "symbolic C-table evaluation"
        )


def _unify(spec: CTupleSpec, candidate: Tuple) -> Optional[Condition]:
    """Condition under which ``spec`` instantiates to the ground ``candidate``.

    Returns None when the values can never match (differing constants);
    otherwise the spec's local condition conjoined with one equality atom per
    variable position.
    """
    constraints: List[Condition] = [spec.condition]
    for value, target in zip(spec.values, candidate):
        if isinstance(value, Variable):
            constraints.append(ComparisonAtom("=", value, target))
        elif value != target:
            return None
    return AndCondition(tuple(constraints)).simplify()


# ---------------------------------------------------------------------------
# Translating row-level predicates into symbolic conditions.
# ---------------------------------------------------------------------------

def _lookup_symbolic(column: Column, names: Sequence[str], values: Tuple) -> Any:
    """Resolve a column reference to the tuple's (possibly symbolic) value."""
    target_full = column.full_name.lower()
    target_base = column.name.lower()
    for name, value in zip(names, values):
        if name.lower() == target_full:
            return value
    for name, value in zip(names, values):
        if name.lower().split(".")[-1] == target_base:
            return value
    raise SymbolicEvaluationError(f"unknown column {column.full_name!r}")


def _term(expression: Expression, names: Sequence[str], values: Tuple) -> Any:
    """Evaluate a scalar term, which may resolve to a Variable or a constant."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, Column):
        return _lookup_symbolic(expression, names, values)
    if isinstance(expression, Negate):
        inner = _term(expression.operand, names, values)
        if isinstance(inner, Variable):
            raise SymbolicEvaluationError("cannot negate a symbolic value")
        return -inner
    if isinstance(expression, Arithmetic):
        left = _term(expression.left, names, values)
        right = _term(expression.right, names, values)
        if isinstance(left, Variable) or isinstance(right, Variable):
            raise SymbolicEvaluationError(
                "arithmetic over symbolic values is not supported"
            )
        env_value = {"+": left + right, "-": left - right,
                     "*": left * right, "/": left / right if right else None}
        return env_value[expression.op]
    raise SymbolicEvaluationError(
        f"unsupported term {type(expression).__name__} in a symbolic predicate"
    )


def _predicate_to_condition(predicate: Expression, names: Sequence[str],
                            values: Tuple) -> Condition:
    """Instantiate a predicate over a symbolic tuple as a C-table condition."""
    if isinstance(predicate, Literal):
        return TrueCondition() if predicate.value else FalseCondition()
    if isinstance(predicate, And):
        return AndCondition(
            tuple(_predicate_to_condition(op, names, values) for op in predicate.operands)
        ).simplify()
    if isinstance(predicate, Or):
        return OrCondition(
            tuple(_predicate_to_condition(op, names, values) for op in predicate.operands)
        ).simplify()
    if isinstance(predicate, Not):
        return _predicate_to_condition(predicate.operand, names, values).negate()
    if isinstance(predicate, Comparison):
        left = _term(predicate.left, names, values)
        right = _term(predicate.right, names, values)
        op = "!=" if predicate.op == "<>" else predicate.op
        atom = ComparisonAtom(op, left, right)
        return atom.simplify()
    if isinstance(predicate, Between):
        operand = _term(predicate.operand, names, values)
        low = _term(predicate.low, names, values)
        high = _term(predicate.high, names, values)
        return AndCondition(
            (ComparisonAtom(">=", operand, low), ComparisonAtom("<=", operand, high))
        ).simplify()
    if isinstance(predicate, InList):
        operand = _term(predicate.operand, names, values)
        atoms = tuple(
            ComparisonAtom("=", operand, _term(value, names, values))
            for value in predicate.values
        )
        return OrCondition(atoms).simplify()
    if isinstance(predicate, IsNull):
        value = _term(predicate.operand, names, values)
        is_null = value is None and not isinstance(value, Variable)
        verdict = (not is_null) if predicate.negated else is_null
        return TrueCondition() if verdict else FalseCondition()
    raise SymbolicEvaluationError(
        f"unsupported predicate {type(predicate).__name__} in symbolic evaluation"
    )


def _project_value(expression: Expression, names: Sequence[str], values: Tuple) -> Any:
    """Evaluate a projection expression over a symbolic tuple."""
    return _term(expression, names, values)


def exact_certain_answers(database: CTableDatabase,
                          plan: algebra.Operator) -> Tuple[List[Tuple], float]:
    """Convenience wrapper: exact certain answers of ``plan`` over ``database``."""
    return CTableQueryEvaluator(database).certain_answers(plan)
