"""MayBMS-style possible-answer and confidence computation.

MayBMS represents uncertain relations as *U-relations*: every tuple carries a
world-set descriptor -- a conjunction of ``(variable = value)`` assignments
over independent finite random variables (here: one variable per x-tuple /
block, whose values are the alternative indices).  Queries manipulate the
descriptors:

* joins take the union of the two descriptors (dropping inconsistent
  combinations that assign two different values to the same variable),
* projections collect the descriptors of all contributing input tuples,
* the set of *possible answers* is every tuple with at least one consistent
  descriptor,
* ``conf()`` computes the exact marginal probability of a tuple by
  inclusion-exclusion over its (DNF) descriptor set, or an approximation by
  Monte-Carlo sampling of the variables.

Result sizes therefore grow with the amount of uncertainty (every consistent
combination of alternatives yields a distinct descriptor), reproducing the
blow-up the paper reports for MayBMS in Figures 11, 12 and 19.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.db import algebra
from repro.db.expressions import RowEnvironment
from repro.db.relation import Row
from repro.db.schema import Attribute, RelationSchema
from repro.incomplete.xdb import XDatabase, XRelation
from repro.incomplete.tidb import TIDatabase

#: A world-set descriptor: a consistent partial assignment of block variables.
WorldSetDescriptor = FrozenSet[Tuple[str, int]]


def _consistent(left: WorldSetDescriptor, right: WorldSetDescriptor) -> bool:
    """True if the two descriptors never assign different values to a variable."""
    assignment: Dict[str, int] = dict(left)
    for variable, value in right:
        if assignment.get(variable, value) != value:
            return False
    return True


def _merge(left: WorldSetDescriptor, right: WorldSetDescriptor) -> WorldSetDescriptor:
    return left | right


@dataclass
class MayBMSRelation:
    """A U-relation: rows paired with world-set descriptors."""

    schema: RelationSchema
    #: Every entry is one (row, descriptor) pair; a row may appear many times.
    entries: List[Tuple[Row, WorldSetDescriptor]] = field(default_factory=list)

    def add(self, row: Sequence[Any], descriptor: Iterable[Tuple[str, int]] = ()) -> None:
        """Add a tuple holding under the given world-set descriptor."""
        self.entries.append((tuple(row), frozenset(descriptor)))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Tuple[Row, WorldSetDescriptor]]:
        return iter(self.entries)

    def possible_rows(self) -> List[Row]:
        """Distinct rows holding in at least one world."""
        seen: Dict[Row, None] = {}
        for row, _descriptor in self.entries:
            seen.setdefault(row, None)
        return list(seen.keys())

    def descriptors_of(self, row: Sequence[Any]) -> List[WorldSetDescriptor]:
        """All descriptors under which ``row`` holds (its DNF lineage)."""
        row = tuple(row)
        return [descriptor for r, descriptor in self.entries if r == row]


class MayBMSDatabase:
    """A collection of U-relations plus the block-variable probability tables."""

    def __init__(self, name: str = "maybms") -> None:
        self.name = name
        self.relations: Dict[str, MayBMSRelation] = {}
        #: Probability of each value of each block variable.
        self.variable_distributions: Dict[str, Dict[int, float]] = {}

    # -- construction ----------------------------------------------------------

    def add_relation(self, relation: MayBMSRelation) -> None:
        """Register a U-relation."""
        key = relation.schema.name.lower()
        if key in self.relations:
            raise ValueError(f"relation {relation.schema.name!r} already exists")
        self.relations[key] = relation

    def relation(self, name: str) -> MayBMSRelation:
        """Look up a U-relation by name."""
        return self.relations[name.lower()]

    def set_variable(self, variable: str, distribution: Dict[int, float]) -> None:
        """Register a block variable with its value distribution."""
        self.variable_distributions[variable] = dict(distribution)

    @classmethod
    def from_xdb(cls, xdb: XDatabase, name: Optional[str] = None) -> "MayBMSDatabase":
        """Translate an x-DB / BI-DB into the U-relation encoding."""
        database = cls(name or f"{xdb.name}_maybms")
        for relation in xdb:
            u_relation = MayBMSRelation(relation.schema)
            for block_index, x_tuple in enumerate(relation):
                variable = f"{relation.schema.name.lower()}_b{block_index}"
                choices = x_tuple.choices()
                needs_variable = len(choices) > 1
                distribution: Dict[int, float] = {}
                for alt_index, choice in enumerate(choices):
                    probability = x_tuple.choice_probability(choice)
                    distribution[alt_index] = probability
                    if choice is None:
                        continue
                    descriptor = ((variable, alt_index),) if needs_variable else ()
                    u_relation.add(choice, descriptor)
                if needs_variable:
                    database.set_variable(variable, distribution)
            database.add_relation(u_relation)
        return database

    @classmethod
    def from_tidb(cls, tidb: TIDatabase, name: Optional[str] = None) -> "MayBMSDatabase":
        """Translate a TI-DB into the U-relation encoding."""
        database = cls(name or f"{tidb.name}_maybms")
        for relation in tidb:
            u_relation = MayBMSRelation(relation.schema)
            for index, ti_tuple in enumerate(relation):
                if ti_tuple.optional:
                    variable = f"{relation.schema.name.lower()}_t{index}"
                    database.set_variable(
                        variable, {1: ti_tuple.probability, 0: 1 - ti_tuple.probability}
                    )
                    u_relation.add(ti_tuple.values, ((variable, 1),))
                else:
                    u_relation.add(ti_tuple.values, ())
            database.add_relation(u_relation)
        return database

    # -- query evaluation -----------------------------------------------------------

    def query(self, plan: algebra.Operator) -> Tuple[MayBMSRelation, float]:
        """Evaluate an RA+ plan over the U-relations (possible-answer semantics)."""
        started = time.perf_counter()
        result = self._eval(plan)
        return result, time.perf_counter() - started

    def _eval(self, plan: algebra.Operator) -> MayBMSRelation:
        if isinstance(plan, algebra.RelationRef):
            relation = self.relation(plan.name)
            if plan.alias and plan.alias.lower() != plan.name.lower():
                return MayBMSRelation(relation.schema.rename(plan.alias),
                                      list(relation.entries))
            return relation
        if isinstance(plan, algebra.Qualify):
            child = self._eval(plan.child)
            attributes = [
                Attribute(f"{plan.qualifier}.{attr.name.split('.')[-1]}", attr.data_type)
                for attr in child.schema.attributes
            ]
            schema = RelationSchema(plan.qualifier, attributes)
            return MayBMSRelation(schema, list(child.entries))
        if isinstance(plan, algebra.Selection):
            child = self._eval(plan.child)
            names = child.schema.attribute_names
            kept = [
                (row, descriptor) for row, descriptor in child.entries
                if plan.predicate.evaluate(RowEnvironment(names, row)) is True
            ]
            return MayBMSRelation(child.schema, kept)
        if isinstance(plan, algebra.Projection):
            child = self._eval(plan.child)
            names = child.schema.attribute_names
            schema = RelationSchema(
                child.schema.name, [Attribute(name) for _, name in plan.items]
            )
            result = MayBMSRelation(schema)
            for row, descriptor in child.entries:
                env = RowEnvironment(names, row)
                out_row = tuple(expr.evaluate(env) for expr, _ in plan.items)
                result.add(out_row, descriptor)
            return result
        if isinstance(plan, (algebra.Join, algebra.CrossProduct)):
            predicate = plan.predicate if isinstance(plan, algebra.Join) else None
            left = self._eval(plan.left)
            right = self._eval(plan.right)
            schema = left.schema.concat(right.schema)
            names = schema.attribute_names
            result = MayBMSRelation(schema)
            for left_row, left_descriptor in left.entries:
                for right_row, right_descriptor in right.entries:
                    if not _consistent(left_descriptor, right_descriptor):
                        continue
                    combined = left_row + right_row
                    if predicate is None or predicate.evaluate(
                        RowEnvironment(names, combined)
                    ) is True:
                        result.add(combined, _merge(left_descriptor, right_descriptor))
            return result
        if isinstance(plan, algebra.Union):
            left = self._eval(plan.left)
            right = self._eval(plan.right)
            return MayBMSRelation(left.schema, list(left.entries) + list(right.entries))
        if isinstance(plan, algebra.Distinct):
            child = self._eval(plan.child)
            return child
        raise ValueError(
            f"MayBMS baseline does not support operator {type(plan).__name__}"
        )

    # -- confidence computation ---------------------------------------------------------

    def _variable_probability(self, variable: str, value: int) -> float:
        distribution = self.variable_distributions.get(variable)
        if distribution is None:
            return 1.0
        return distribution.get(value, 0.0)

    def descriptor_probability(self, descriptor: WorldSetDescriptor) -> float:
        """Probability of one conjunctive descriptor (variables are independent)."""
        probability = 1.0
        for variable, value in descriptor:
            probability *= self._variable_probability(variable, value)
        return probability

    def confidence(self, descriptors: Sequence[WorldSetDescriptor]) -> float:
        """Exact marginal probability of a DNF of descriptors (inclusion-exclusion).

        Exponential in the number of descriptors, like MayBMS's exact
        ``conf()`` aggregate; use :meth:`approximate_confidence` for large
        lineages.
        """
        descriptors = [d for d in descriptors]
        if not descriptors:
            return 0.0
        total = 0.0
        for size in range(1, len(descriptors) + 1):
            for subset in itertools.combinations(descriptors, size):
                merged: Dict[str, int] = {}
                consistent = True
                for descriptor in subset:
                    for variable, value in descriptor:
                        if merged.setdefault(variable, value) != value:
                            consistent = False
                            break
                    if not consistent:
                        break
                if not consistent:
                    continue
                probability = 1.0
                for variable, value in merged.items():
                    probability *= self._variable_probability(variable, value)
                total += ((-1) ** (size + 1)) * probability
        return max(0.0, min(1.0, total))

    def approximate_confidence(self, descriptors: Sequence[WorldSetDescriptor],
                               epsilon: float = 0.3, samples: Optional[int] = None,
                               rng: Optional[random.Random] = None) -> float:
        """Monte-Carlo approximation of the marginal probability.

        ``samples`` defaults to a count derived from ``epsilon`` (additive
        error bound with constant confidence), mirroring the approximation
        scheme of Olteanu et al. used in the paper's Figure 19.
        """
        descriptors = list(descriptors)
        if not descriptors:
            return 0.0
        rng = rng or random.Random(0)
        if samples is None:
            samples = max(10, int(3.0 / (epsilon * epsilon)))
        variables = sorted({variable for d in descriptors for variable, _ in d})
        hits = 0
        for _ in range(samples):
            assignment: Dict[str, int] = {}
            for variable in variables:
                distribution = self.variable_distributions.get(variable, {0: 1.0})
                values = list(distribution.keys())
                weights = list(distribution.values())
                assignment[variable] = rng.choices(values, weights=weights, k=1)[0]
            for descriptor in descriptors:
                if all(assignment.get(variable, value) == value for variable, value in descriptor):
                    hits += 1
                    break
        return hits / samples

    def tuple_confidence(self, result: MayBMSRelation, row: Sequence[Any],
                         exact: bool = True, epsilon: float = 0.3) -> float:
        """Marginal probability of ``row`` in a query result."""
        descriptors = result.descriptors_of(row)
        if exact:
            return self.confidence(descriptors)
        return self.approximate_confidence(descriptors, epsilon)

    def certain_rows(self, result: MayBMSRelation, exact: bool = True,
                     epsilon: float = 0.3,
                     threshold: float = 1.0 - 1e-9) -> List[Row]:
        """Rows whose confidence reaches ``threshold`` (treated as certain)."""
        return [
            row for row in result.possible_rows()
            if self.tuple_confidence(result, row, exact, epsilon) >= threshold
        ]
