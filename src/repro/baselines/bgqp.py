"""Deterministic best-guess query processing (the "Det" baseline).

BGQP evaluates queries over a single designated possible world and ignores
all uncertainty.  It is the performance yardstick of the paper: UA-DBs aim to
stay within a few percent of BGQP while adding certainty labels.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.db import algebra
from repro.db.database import Database
from repro.db.evaluator import evaluate
from repro.db.relation import KRelation
from repro.db.sql import parse_query


def best_guess_query(world: Database, query: str | algebra.Operator) -> Tuple[KRelation, float]:
    """Evaluate ``query`` (SQL text or an algebra plan) over one possible world.

    Returns the result relation and the elapsed wall-clock seconds.
    """
    started = time.perf_counter()
    if isinstance(query, str):
        plan = parse_query(query, world.schema)
    else:
        plan = query
    result = evaluate(plan, world)
    return result, time.perf_counter() - started
