"""Baseline systems compared against UA-DBs in the paper's evaluation.

* :mod:`repro.baselines.bgqp` -- deterministic best-guess query processing,
* :mod:`repro.baselines.libkin` -- the Libkin/Guagliardo null-based
  certain-answer under-approximation,
* :mod:`repro.baselines.maybms` -- MayBMS-style possible-answer and
  confidence computation over a U-relation-like encoding,
* :mod:`repro.baselines.mcdb` -- MCDB-style tuple-bundle sampling,
* :mod:`repro.baselines.ctables_exact` -- exact certain answers over C-tables
  via symbolic evaluation plus tautology checking (the Z3 pipeline).
"""

from repro.baselines.bgqp import best_guess_query
from repro.baselines.libkin import libkin_certain_answers, libkin_query
from repro.baselines.maybms import MayBMSDatabase, MayBMSRelation, WorldSetDescriptor
from repro.baselines.mcdb import MCDBSampler
from repro.baselines.ctables_exact import CTableQueryEvaluator, exact_certain_answers

__all__ = [
    "best_guess_query",
    "libkin_certain_answers",
    "libkin_query",
    "MayBMSDatabase",
    "MayBMSRelation",
    "WorldSetDescriptor",
    "MCDBSampler",
    "CTableQueryEvaluator",
    "exact_certain_answers",
]
