"""Possible-annotation labelings: over-approximations of ``poss_K``.

The paper's labeling schemes (Section 4) under-approximate the *certain*
annotation of each tuple.  The dual notion -- an over-approximation of the
*possible* annotation ``poss_K`` (the LUB of a tuple's annotations across all
worlds) -- is what a UA-DB is missing when a query subtracts tuples: to bound
the certain annotation of ``Q1 - Q2`` from below we need to bound ``Q2`` from
above.  The schemes here provide that bound for the same three data models
the paper translates from.

A labeling ``P`` is *poss-complete* for an incomplete database ``D`` if for
every tuple ``poss_K(D, t) <=_K P(t)``.  RA+ evaluated over a poss-complete
labeling with ordinary K-relational semantics stays poss-complete because
``poss_K`` (a LUB) is sub-additive and sub-multiplicative -- the mirror image
of the paper's Lemma 3.
"""

from __future__ import annotations

from itertools import product as cartesian_product
from typing import Dict, List

from repro.db.database import Database
from repro.db.relation import KRelation
from repro.semirings import BOOLEAN, Semiring
from repro.incomplete.ctable import CTableDatabase
from repro.incomplete.kw_database import KWDatabase
from repro.incomplete.solver import is_satisfiable
from repro.incomplete.tidb import TIDatabase
from repro.incomplete.xdb import XDatabase

#: A possible-annotation labeling is a plain K-database, like the paper's labelings.
PossibleLabeling = Database


def label_possible_tidb(tidb: TIDatabase, semiring: Semiring = BOOLEAN) -> PossibleLabeling:
    """Exact possible labeling for a TI-DB: every stored tuple is possible.

    A TI-DB tuple appears in at least one world regardless of its
    probability, so labeling every tuple with 1_K is exact (not just an
    over-approximation) under set semantics.
    """
    labeling = Database(semiring, f"{tidb.name}_possible")
    for relation in tidb:
        k_relation = KRelation(relation.schema, semiring)
        for ti_tuple in relation:
            k_relation.add(ti_tuple.values, semiring.one)
        labeling.add_relation(k_relation)
    return labeling


def label_possible_xdb(xdb: XDatabase, semiring: Semiring = BOOLEAN) -> PossibleLabeling:
    """Exact possible labeling for an x-DB: every alternative is possible.

    Each alternative of each x-tuple can be selected in some world, so every
    alternative is labeled 1_K.  Distinct x-tuples sharing an identical
    alternative accumulate, which over-approximates the possible multiplicity
    under bag semantics and is exact under set semantics.
    """
    labeling = Database(semiring, f"{xdb.name}_possible")
    for relation in xdb:
        k_relation = KRelation(relation.schema, semiring)
        for x_tuple in relation:
            for alternative in x_tuple.alternatives:
                k_relation.add(alternative, semiring.one)
        labeling.add_relation(k_relation)
    return labeling


def label_possible_ctable(ctable_db: CTableDatabase, semiring: Semiring = BOOLEAN,
                          assignment_limit: int = 10_000) -> PossibleLabeling:
    """Poss-complete labeling for a C-table database.

    For each tuple spec the scheme enumerates assignments of the variables
    appearing *in that spec* (capped at ``assignment_limit`` combinations) and
    adds every instantiation whose local condition is satisfiable.  Ignoring
    the global condition and interactions between specs only adds rows, so
    the result over-approximates the possible rows; per-spec contributions
    are summed, over-approximating possible multiplicities under bag
    semantics.
    """
    labeling = Database(semiring, f"{ctable_db.name}_possible")
    for ctable in ctable_db:
        k_relation = KRelation(ctable.schema, semiring)
        for spec in ctable.tuples:
            spec_variables = sorted(spec.variables(), key=lambda v: v.name)
            if not spec_variables:
                if is_satisfiable(spec.condition):
                    k_relation.add(spec.values, semiring.one)
                continue
            domains: List[List] = []
            for variable in spec_variables:
                domain = ctable_db.domains.get(variable)
                if domain is None:
                    domain = ctable_db._variable_domain(variable)
                domains.append(list(domain))
            combinations = 1
            for domain in domains:
                combinations *= max(len(domain), 1)
            if combinations > assignment_limit:
                raise ValueError(
                    f"tuple spec {spec.values!r} has {combinations} variable "
                    f"assignments, exceeding the limit of {assignment_limit}"
                )
            seen: Dict[tuple, None] = {}
            for choice in cartesian_product(*domains):
                assignment = dict(zip(spec_variables, choice))
                row = spec.instantiate(assignment)
                if row is not None:
                    seen.setdefault(row, None)
            for row in seen:
                k_relation.add(row, semiring.one)
        labeling.add_relation(k_relation)
    return labeling


def label_possible_kw_exact(kwdb: KWDatabase) -> PossibleLabeling:
    """Exact possible labeling computed from a K^W database (``poss_K``)."""
    labeling = Database(kwdb.base_semiring, f"{kwdb.name}_exact_possible")
    for relation in kwdb:
        k_relation = KRelation(relation.schema, kwdb.base_semiring)
        for row in relation.rows():
            possible = kwdb.kw_semiring.poss(relation.annotation(row))
            if not kwdb.base_semiring.is_zero(possible):
                k_relation.add(row, possible)
        labeling.add_relation(k_relation)
    return labeling


def is_poss_complete(labeling: PossibleLabeling, kwdb: KWDatabase) -> bool:
    """Check that ``labeling`` over-approximates the possible annotations of ``kwdb``."""
    base = kwdb.base_semiring
    for kw_relation in kwdb:
        label_relation = labeling.relation(kw_relation.schema.name)
        for row in kw_relation.rows():
            possible = kwdb.kw_semiring.poss(kw_relation.annotation(row))
            if not base.leq(possible, label_relation.annotation(row)):
                return False
    return True
