"""Aggregation over UA-/UAP-databases with certainty bounds.

The paper's rewriting covers RA+; aggregation is listed as future work.  This
module evaluates ``GROUP BY`` aggregates over an annotated database and
returns, for every group of the best-guess world, the best-guess aggregate
value together with a lower and an upper bound derived from the certain and
possible components of the annotations:

* the *lower/upper bounds* sandwich the aggregate value the query would
  produce in any possible world that is consistent with the annotation
  bounds (for the monotone aggregates ``count``, ``sum`` of non-negative
  values, ``min`` and ``max``),
* a group's *existence* is labeled certain when at least one certainly
  present input row belongs to it,
* an aggregate value is labeled certain when its bounds collapse onto the
  best-guess value.

With a plain UA-DB (no possible component) the upper bounds that would need
possible information are reported as ``None`` (unknown).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.db import algebra
from repro.db.expressions import RowEnvironment
from repro.db.relation import Row
from repro.core.uadb import UADatabase
from repro.extensions.uapdb import UAPDatabase

AnnotatedDatabase = Union[UADatabase, UAPDatabase]


@dataclass(frozen=True)
class AggregateBound:
    """One aggregate of one group: best-guess value with certainty bounds."""

    name: str
    value: Any
    lower: Optional[Any]
    upper: Optional[Any]

    @property
    def certain(self) -> bool:
        """True when the bounds pin the aggregate to its best-guess value."""
        return self.lower is not None and self.lower == self.value == self.upper


@dataclass(frozen=True)
class BoundedAggregateRow:
    """One group of an aggregation result."""

    key: Row
    aggregates: Tuple[AggregateBound, ...]
    group_certain: bool

    @property
    def certain(self) -> bool:
        """True when the group certainly exists and every aggregate is pinned."""
        return self.group_certain and all(a.certain for a in self.aggregates)

    def aggregate(self, name: str) -> AggregateBound:
        """Look up an aggregate bound by output name."""
        for bound in self.aggregates:
            if bound.name == name:
                return bound
        raise KeyError(f"no aggregate named {name!r}")


def ua_aggregate(database: AnnotatedDatabase,
                 plan: algebra.Aggregate) -> List[BoundedAggregateRow]:
    """Evaluate ``plan`` (an :class:`~repro.db.algebra.Aggregate`) with bounds.

    The child plan is evaluated with the database's annotated semantics; the
    grouping and the aggregate functions are then computed three times, using
    the certain, best-guess and possible components of the result annotations
    as multiplicities.
    """
    if not isinstance(plan, algebra.Aggregate):
        raise TypeError("ua_aggregate expects an Aggregate plan")
    child = database.query(plan.child)
    base = child.base_semiring
    names = child.schema.attribute_names
    has_possible = hasattr(child.semiring, "h_poss")

    groups: Dict[Row, List[Tuple[Row, Any]]] = {}
    for row, annotation in child.items():
        env = RowEnvironment(names, row)
        key = tuple(expr.evaluate(env) for expr, _ in plan.group_by)
        groups.setdefault(key, []).append((row, annotation))

    results: List[BoundedAggregateRow] = []
    for key, members in sorted(groups.items(), key=lambda kv: _key_sort(kv[0])):
        certain_weights: List[Tuple[Row, int]] = []
        guess_weights: List[Tuple[Row, int]] = []
        possible_weights: List[Tuple[Row, Optional[int]]] = []
        for row, annotation in members:
            certain_weights.append((row, _weight(base, annotation.certain)))
            guess_weights.append((row, _weight(base, annotation.determinized)))
            if has_possible:
                possible_weights.append((row, _weight(base, annotation.possible)))
            else:
                possible_weights.append((row, None))
        if all(weight == 0 for _, weight in guess_weights):
            # The group exists only in the possible over-approximation; it is
            # not part of the best-guess answer, matching the UA-DB contract
            # of returning exactly the best-guess world's rows.
            continue
        group_certain = any(weight > 0 for _, weight in certain_weights)
        bounds = tuple(
            _aggregate_bound(agg, names, certain_weights, guess_weights, possible_weights)
            for agg in plan.aggregates
        )
        results.append(BoundedAggregateRow(key, bounds, group_certain))
    return results


# -- helpers -----------------------------------------------------------------------


def _weight(base, value: Any) -> int:
    """Interpret a K-annotation as a multiplicity (1 for any non-zero non-int)."""
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    return 0 if base.is_zero(value) else 1


def _key_sort(key: Row) -> Tuple:
    return tuple((value is None, str(value)) for value in key)


def _argument_values(agg: algebra.AggregateFunction, names: Sequence[str],
                     weights: Sequence[Tuple[Row, Optional[int]]]) -> Optional[List[Tuple[Any, int]]]:
    """Evaluate the aggregate argument per row; None if any weight is unknown."""
    values: List[Tuple[Any, int]] = []
    for row, weight in weights:
        if weight is None:
            return None
        if weight == 0:
            continue
        if agg.argument is None:
            value: Any = 1
        else:
            value = agg.argument.evaluate(RowEnvironment(names, row))
        values.append((value, weight))
    return values


def _compute(agg: algebra.AggregateFunction,
             values: Optional[List[Tuple[Any, int]]]) -> Optional[Any]:
    """Weighted aggregate over (value, multiplicity) pairs; None if unknown."""
    if values is None:
        return None
    func = agg.func.lower()
    non_null = [(v, w) for v, w in values if v is not None]
    if func == "count":
        source = values if agg.argument is None else non_null
        return sum(w for _, w in source)
    if not non_null:
        return None
    if func == "sum":
        return sum(v * w for v, w in non_null)
    if func == "avg":
        total = sum(w for _, w in non_null)
        return sum(v * w for v, w in non_null) / total
    if func == "min":
        return min(v for v, _ in non_null)
    if func == "max":
        return max(v for v, _ in non_null)
    raise ValueError(f"unsupported aggregate {agg.func!r}")


def _aggregate_bound(agg: algebra.AggregateFunction, names: Sequence[str],
                     certain_weights: Sequence[Tuple[Row, int]],
                     guess_weights: Sequence[Tuple[Row, int]],
                     possible_weights: Sequence[Tuple[Row, Optional[int]]]) -> AggregateBound:
    certain_values = _argument_values(agg, names, certain_weights)
    guess_values = _argument_values(agg, names, guess_weights)
    possible_values = _argument_values(agg, names, possible_weights)

    value = _compute(agg, guess_values)
    func = agg.func.lower()

    if func == "count":
        lower = _compute(agg, certain_values)
        upper = _compute(agg, possible_values)
    elif func == "sum":
        negatives = any(
            v is not None and v < 0
            for values in (certain_values or [], guess_values or [], possible_values or [])
            for v, _ in values
        )
        if negatives:
            # With mixed signs the contribution of an uncertain row can move
            # the sum in either direction; no sound bound without more work.
            lower = upper = None
        else:
            lower = _compute(agg, certain_values) or 0
            upper = _compute(agg, possible_values)
    elif func == "min":
        # More rows can only decrease a minimum.
        lower = _compute(agg, possible_values)
        upper = _compute(agg, certain_values)
    elif func == "max":
        lower = _compute(agg, certain_values)
        upper = _compute(agg, possible_values)
    else:
        # avg is not monotone in the row population; the value is only pinned
        # when the certain and possible populations are identical (then every
        # world sees exactly the same rows for this group).
        if (certain_values is not None and possible_values is not None
                and certain_values == possible_values):
            lower = upper = value
        else:
            lower = upper = None
    return AggregateBound(agg.name, value, lower, upper)
