"""UAP-DBs: uncertainty-annotated databases with possible-annotation bounds.

A UA-DB annotates each tuple with ``[c, d]`` where ``c`` under-approximates
the certain annotation and ``d`` is the tuple's annotation in the best-guess
world.  That is enough for RA+ (Theorem 4 of the paper), but not for
*difference*: to bound ``Q1 - Q2`` from below one must bound ``Q2`` from
above.  A UAP-DB therefore carries triples ``[c, d, p]`` where ``p``
over-approximates the tuple's *possible* annotation (its LUB across worlds),
so that::

    c  <=_K  cert_K(D, t)  <=_K  d  <=_K  poss_K(D, t)  <=_K  p

RA+ operators act component-wise and preserve all three bounds (the ``c`` and
``d`` arguments are the paper's Theorems 4/5; the ``p`` argument is the
mirror image of Lemma 3, since LUBs are sub-additive and sub-multiplicative).
Difference uses the cross-component rule::

    [c1, d1, p1] - [c2, d2, p2]  =  [c1 (-) p2,  d1 (-) d2,  p1 (-) c2]

where ``(-)`` is the base semiring's monus.  The rule is sound because the
monus is monotone in its first argument and antitone in its second: in every
world ``i`` the result annotation ``k1[i] (-) k2[i]`` is at least
``c1 (-) p2`` and at most ``p1 (-) c2``, while the best-guess component is
computed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.db import algebra
from repro.db.database import Database
from repro.db.evaluator import evaluate
from repro.db.relation import KRelation, Row
from repro.db.schema import RelationSchema
from repro.semirings import BOOLEAN, NATURAL, Semiring
from repro.semirings.base import SemiringHomomorphism
from repro.semirings.ua import UASemiring
from repro.incomplete.ctable import CTableDatabase
from repro.incomplete.kw_database import KWDatabase
from repro.incomplete.tidb import TIDatabase
from repro.incomplete.worlds import IncompleteDatabase
from repro.incomplete.xdb import XDatabase
from repro.core.uadb import UADatabase, UARelation
from repro.extensions.possible import (
    label_possible_ctable,
    label_possible_kw_exact,
    label_possible_tidb,
    label_possible_xdb,
)


@dataclass(frozen=True)
class UAPAnnotation:
    """A triple ``[certain, determinized, possible]`` annotating one tuple."""

    certain: Any
    determinized: Any
    possible: Any

    def __iter__(self) -> Iterator[Any]:
        yield self.certain
        yield self.determinized
        yield self.possible

    def __getitem__(self, index: int) -> Any:
        return (self.certain, self.determinized, self.possible)[index]

    def as_tuple(self) -> tuple:
        """Return the annotation as a plain ``(c, d, p)`` tuple."""
        return (self.certain, self.determinized, self.possible)

    def __repr__(self) -> str:
        return f"[{self.certain!r}, {self.determinized!r}, {self.possible!r}]"


class UAPSemiring(Semiring):
    """K^3 triples with the bound-preserving difference as monus.

    Addition, multiplication and the lattice operations act component-wise,
    so RA+ over UAP-relations is ordinary K-relational evaluation.  The monus
    mixes components (see the module docstring) and therefore requires the
    base semiring to have a monus itself.
    """

    def __init__(self, base: Semiring) -> None:
        self.base = base
        self.name = f"{base.name}_UAP"

    # -- construction --------------------------------------------------------

    def annotation(self, certain: Any, determinized: Any, possible: Any) -> UAPAnnotation:
        """Build and validate a triple (enforces ``c <= d <= p``)."""
        self.base.check(certain)
        self.base.check(determinized)
        self.base.check(possible)
        if not self.base.leq(certain, determinized) or not self.base.leq(determinized, possible):
            raise ValueError(
                f"UAP annotation invariant violated: expected {certain!r} <= "
                f"{determinized!r} <= {possible!r} in {self.base.name}"
            )
        return UAPAnnotation(certain, determinized, possible)

    def certain_annotation(self, value: Any) -> UAPAnnotation:
        """Annotation of a tuple whose value is the same in every world."""
        return self.annotation(value, value, value)

    # -- identities -----------------------------------------------------------

    @property
    def zero(self) -> UAPAnnotation:
        return UAPAnnotation(self.base.zero, self.base.zero, self.base.zero)

    @property
    def one(self) -> UAPAnnotation:
        return UAPAnnotation(self.base.one, self.base.one, self.base.one)

    # -- operations -----------------------------------------------------------

    def plus(self, a: UAPAnnotation, b: UAPAnnotation) -> UAPAnnotation:
        return UAPAnnotation(
            self.base.plus(a.certain, b.certain),
            self.base.plus(a.determinized, b.determinized),
            self.base.plus(a.possible, b.possible),
        )

    def times(self, a: UAPAnnotation, b: UAPAnnotation) -> UAPAnnotation:
        return UAPAnnotation(
            self.base.times(a.certain, b.certain),
            self.base.times(a.determinized, b.determinized),
            self.base.times(a.possible, b.possible),
        )

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, UAPAnnotation)
            and self.base.contains(value.certain)
            and self.base.contains(value.determinized)
            and self.base.contains(value.possible)
        )

    def leq(self, a: UAPAnnotation, b: UAPAnnotation) -> bool:
        return (
            self.base.leq(a.certain, b.certain)
            and self.base.leq(a.determinized, b.determinized)
            and self.base.leq(a.possible, b.possible)
        )

    def glb(self, a: UAPAnnotation, b: UAPAnnotation) -> UAPAnnotation:
        return UAPAnnotation(
            self.base.glb(a.certain, b.certain),
            self.base.glb(a.determinized, b.determinized),
            self.base.glb(a.possible, b.possible),
        )

    def lub(self, a: UAPAnnotation, b: UAPAnnotation) -> UAPAnnotation:
        return UAPAnnotation(
            self.base.lub(a.certain, b.certain),
            self.base.lub(a.determinized, b.determinized),
            self.base.lub(a.possible, b.possible),
        )

    def monus(self, a: UAPAnnotation, b: UAPAnnotation) -> UAPAnnotation:
        """The bound-preserving difference ``[c1 - p2, d1 - d2, p1 - c2]``."""
        return UAPAnnotation(
            self.base.monus(a.certain, b.possible),
            self.base.monus(a.determinized, b.determinized),
            self.base.monus(a.possible, b.certain),
        )

    # -- projections ------------------------------------------------------------

    @property
    def h_cert(self) -> SemiringHomomorphism:
        """Homomorphism extracting the certain under-approximation."""
        return SemiringHomomorphism(self, self.base, lambda t: t.certain, name="h_cert")

    @property
    def h_det(self) -> SemiringHomomorphism:
        """Homomorphism extracting the best-guess-world component."""
        return SemiringHomomorphism(self, self.base, lambda t: t.determinized, name="h_det")

    @property
    def h_poss(self) -> SemiringHomomorphism:
        """Homomorphism extracting the possible over-approximation."""
        return SemiringHomomorphism(self, self.base, lambda t: t.possible, name="h_poss")


class UAPRelation(KRelation):
    """A K_UAP-relation: tuples carry ``[certain, best-guess, possible]`` triples."""

    def __init__(self, schema: RelationSchema, uap_semiring: UAPSemiring,
                 data: Optional[dict] = None) -> None:
        super().__init__(schema, uap_semiring, data)

    @property
    def uap_semiring(self) -> UAPSemiring:
        """The UAP-semiring of this relation."""
        return self.semiring  # type: ignore[return-value]

    @property
    def base_semiring(self) -> Semiring:
        """The underlying semiring K."""
        return self.uap_semiring.base

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_components(cls, world: KRelation, labeling: KRelation,
                        possible: KRelation) -> "UAPRelation":
        """Combine a best-guess world with certain and possible labelings.

        The certain component is clamped below the world annotation and the
        possible component is lifted above it, so the invariant
        ``c <= d <= p`` always holds for the stored triples.
        """
        if world.semiring != labeling.semiring or world.semiring != possible.semiring:
            raise ValueError("world and labelings must share the same semiring")
        base = world.semiring
        uap = UAPSemiring(base)
        result = cls(world.schema, uap)
        for row, determinized in world.items():
            certain = labeling.annotation(row)
            if not base.leq(certain, determinized):
                certain = base.glb(certain, determinized)
            upper = base.lub(possible.annotation(row), determinized)
            result.set_annotation(row, uap.annotation(certain, determinized, upper))
        return result

    def add_tuple(self, values: Sequence[Any], certain: Any = None,
                  determinized: Any = None, possible: Any = None) -> None:
        """Add a tuple with explicit components.

        Defaults: uncertain (``c = 0``), present once in the best-guess world
        (``d = 1``), possible annotation equal to ``d``.
        """
        base = self.base_semiring
        determinized = base.one if determinized is None else determinized
        certain = base.zero if certain is None else certain
        possible = determinized if possible is None else possible
        self.add(values, self.uap_semiring.annotation(certain, determinized, possible))

    # -- inspection -------------------------------------------------------------

    def certain_component(self, row: Sequence[Any]) -> Any:
        """The certain under-approximation ``c`` of a row."""
        annotation = self.annotation(row)
        if self.semiring.is_zero(annotation):
            return self.base_semiring.zero
        return annotation.certain

    def determinized_component(self, row: Sequence[Any]) -> Any:
        """The best-guess-world component ``d`` of a row."""
        annotation = self.annotation(row)
        if self.semiring.is_zero(annotation):
            return self.base_semiring.zero
        return annotation.determinized

    def possible_component(self, row: Sequence[Any]) -> Any:
        """The possible over-approximation ``p`` of a row."""
        annotation = self.annotation(row)
        if self.semiring.is_zero(annotation):
            return self.base_semiring.zero
        return annotation.possible

    def is_certain(self, row: Sequence[Any]) -> bool:
        """True if the row is labeled certain (non-zero ``c`` component)."""
        return not self.base_semiring.is_zero(self.certain_component(row))

    def certain_rows(self) -> List[Row]:
        """Rows labeled as certain."""
        return [row for row in self.rows() if self.is_certain(row)]

    def best_guess_rows(self) -> List[Row]:
        """Rows present in the best-guess world (non-zero ``d`` component)."""
        return [
            row for row in self.rows()
            if not self.base_semiring.is_zero(self.determinized_component(row))
        ]

    def possible_rows(self) -> List[Row]:
        """Rows whose possible over-approximation is non-zero."""
        return [
            row for row in self.rows()
            if not self.base_semiring.is_zero(self.possible_component(row))
        ]

    def to_ua_relation(self) -> UARelation:
        """Forget the possible component, producing a plain UA-relation."""
        ua = UARelation(self.schema, UASemiring(self.base_semiring))
        for row, annotation in self.items():
            if self.base_semiring.is_zero(annotation.determinized):
                continue
            ua.add_tuple(row, annotation.certain, annotation.determinized)
        return ua

    def check_invariant(self) -> bool:
        """Verify ``c <= d <= p`` for every tuple."""
        base = self.base_semiring
        return all(
            base.leq(a.certain, a.determinized) and base.leq(a.determinized, a.possible)
            for _, a in self.items()
        )


class UAPDatabase:
    """A database of UAP-relations over a shared base semiring."""

    def __init__(self, base_semiring: Semiring = NATURAL, name: str = "uapdb") -> None:
        self.base_semiring = base_semiring
        self.uap_semiring = UAPSemiring(base_semiring)
        self.database = Database(self.uap_semiring, name)
        self.name = name

    # -- population ---------------------------------------------------------------

    def add_relation(self, relation: UAPRelation) -> None:
        """Register a UAP-relation."""
        self.database.add_relation(relation)

    def create_relation(self, schema: RelationSchema) -> UAPRelation:
        """Create, register and return an empty UAP-relation."""
        relation = UAPRelation(schema, self.uap_semiring)
        self.database.add_relation(relation)
        return relation

    def relation(self, name: str) -> UAPRelation:
        """Look up a UAP-relation by name."""
        return self.database.relation(name)  # type: ignore[return-value]

    def relation_names(self) -> Tuple[str, ...]:
        """Names of the registered relations."""
        return self.database.relation_names()

    def __iter__(self) -> Iterator[KRelation]:
        return iter(self.database)

    def __len__(self) -> int:
        return len(self.database)

    # -- construction from uncertain data models -------------------------------------

    @classmethod
    def from_components(cls, world: Database, labeling: Database, possible: Database,
                        name: str = "uapdb") -> "UAPDatabase":
        """Build a UAP-DB from a best-guess world and two labelings.

        Rows that appear only in the possible labeling (absent from the
        best-guess world) are also stored, with ``c = d = 0``, so that
        difference queries can subtract them.
        """
        uapdb = cls(world.semiring, name)
        base = world.semiring
        for relation in world:
            relation_name = relation.schema.name
            label_relation = (
                labeling.relation(relation_name) if relation_name in labeling
                else KRelation(relation.schema, base)
            )
            possible_relation = (
                possible.relation(relation_name) if relation_name in possible
                else KRelation(relation.schema, base)
            )
            uap_relation = UAPRelation.from_components(
                relation, label_relation, possible_relation
            )
            for row, upper in possible_relation.items():
                if row not in relation:
                    uap_relation.set_annotation(
                        row, uapdb.uap_semiring.annotation(base.zero, base.zero, upper)
                    )
            uapdb.add_relation(uap_relation)
        return uapdb

    @classmethod
    def from_tidb(cls, tidb: TIDatabase, semiring: Semiring = BOOLEAN,
                  name: Optional[str] = None) -> "UAPDatabase":
        """Best-guess world plus c-correct certain and exact possible labelings."""
        from repro.core.labeling import label_tidb

        world = tidb.best_guess_world(semiring)
        labeling = label_tidb(tidb, semiring)
        possible = label_possible_tidb(tidb, semiring)
        return cls.from_components(world, labeling, possible, name or f"{tidb.name}_uap")

    @classmethod
    def from_xdb(cls, xdb: XDatabase, semiring: Semiring = BOOLEAN,
                 name: Optional[str] = None,
                 world: Optional[Database] = None) -> "UAPDatabase":
        """Best-guess world plus c-correct certain and exact possible labelings."""
        from repro.core.labeling import label_xdb

        world = world or xdb.best_guess_world(semiring)
        labeling = label_xdb(xdb, semiring)
        possible = label_possible_xdb(xdb, semiring)
        return cls.from_components(world, labeling, possible, name or f"{xdb.name}_uap")

    @classmethod
    def from_ctable(cls, ctable_db: CTableDatabase, semiring: Semiring = BOOLEAN,
                    name: Optional[str] = None) -> "UAPDatabase":
        """Best-guess world plus c-sound certain and poss-complete possible labelings."""
        from repro.core.labeling import label_ctable

        world = ctable_db.best_guess_world(semiring)
        labeling = label_ctable(ctable_db, semiring)
        possible = label_possible_ctable(ctable_db, semiring)
        return cls.from_components(world, labeling, possible, name or f"{ctable_db.name}_uap")

    @classmethod
    def from_kw(cls, kwdb: KWDatabase, world_index: Optional[int] = None,
                name: Optional[str] = None) -> "UAPDatabase":
        """Designated world plus exact certain and possible labelings."""
        from repro.core.labeling import label_kw_exact

        index = kwdb.best_guess_index() if world_index is None else world_index
        world = kwdb.world(index)
        labeling = label_kw_exact(kwdb)
        possible = label_possible_kw_exact(kwdb)
        return cls.from_components(world, labeling, possible, name or f"{kwdb.name}_uap")

    @classmethod
    def from_incomplete(cls, incomplete: IncompleteDatabase,
                        world_index: Optional[int] = None,
                        name: str = "uapdb") -> "UAPDatabase":
        """Designated world plus exact labelings from explicit possible worlds."""
        kwdb = KWDatabase.from_incomplete(incomplete)
        return cls.from_kw(kwdb, world_index, name)

    # -- queries ------------------------------------------------------------------

    def query(self, plan: algebra.Operator) -> UAPRelation:
        """Evaluate an algebra plan (RA+ plus difference/intersection)."""
        result = evaluate(plan, self.database)
        uap_result = UAPRelation(result.schema, self.uap_semiring)
        for row, annotation in result.items():
            uap_result.set_annotation(row, annotation)
        return uap_result

    def sql(self, query: str) -> UAPRelation:
        """Parse and evaluate a SQL query with K_UAP semantics."""
        from repro.db.sql import parse_query

        plan = parse_query(query, self.database.schema)
        return self.query(plan)

    # -- views --------------------------------------------------------------------

    def to_ua_database(self) -> UADatabase:
        """Forget the possible components, producing a plain UA-DB."""
        uadb = UADatabase(self.base_semiring, self.name)
        for relation in self.database:
            uadb.add_relation(relation.to_ua_relation())  # type: ignore[arg-type]
        return uadb

    def best_guess_database(self) -> Database:
        """The best-guess world of every relation (``h_det``)."""
        return self.database.map_annotations(self.uap_semiring.h_det, f"{self.name}_bgw")

    def labeling_database(self) -> Database:
        """The certain labeling of every relation (``h_cert``)."""
        return self.database.map_annotations(self.uap_semiring.h_cert, f"{self.name}_labeling")

    def possible_database(self) -> Database:
        """The possible labeling of every relation (``h_poss``)."""
        return self.database.map_annotations(self.uap_semiring.h_poss, f"{self.name}_possible")

    def __repr__(self) -> str:
        return (
            f"<UAPDatabase {self.name!r} [{self.uap_semiring.name}] "
            f"{len(self.database)} relations>"
        )
