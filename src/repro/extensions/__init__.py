"""Extensions beyond the paper's core contribution (its Section 12 future work).

The UA-DB paper closes by listing extensions it leaves open: attribute-level
annotations, larger query classes (negation and aggregation), and uncertain
versions of semirings beyond sets and bags.  This package implements those
extensions on top of the core library:

* :mod:`repro.extensions.possible` -- labeling schemes that over-approximate
  the *possible* annotations of tuples (the LUB across worlds), the
  complement of the paper's certain-annotation under-approximations,
* :mod:`repro.extensions.uapdb` -- UAP-DBs: databases annotated with triples
  ``[c, d, p]`` that additionally bound the possible annotation from above,
  which is exactly the information needed to evaluate difference (negation)
  while preserving sound bounds,
* :mod:`repro.extensions.aggregation` -- grouping and aggregation over
  UAP-DBs with per-aggregate lower/upper bounds and a sound certainty label,
* :mod:`repro.extensions.attribute_level` -- attribute-level uncertainty
  labels, a finer-grained labeling that reduces the false-negative rate of
  projection queries (the scenario of the paper's Figure 15).

The semirings the conclusion mentions (provenance polynomials, why/lineage
provenance, fuzzy confidences) live in :mod:`repro.semirings.provenance` and
:mod:`repro.semirings.fuzzy` since they are plain semirings usable by the
core as well.
"""

from repro.extensions.possible import (
    label_possible_tidb,
    label_possible_xdb,
    label_possible_ctable,
    label_possible_kw_exact,
    is_poss_complete,
)
from repro.extensions.uapdb import UAPAnnotation, UAPSemiring, UAPRelation, UAPDatabase
from repro.extensions.aggregation import AggregateBound, BoundedAggregateRow, ua_aggregate
from repro.extensions.attribute_level import (
    AttributeLabel,
    AttributeUARelation,
    AttributeUADatabase,
)

__all__ = [
    "label_possible_tidb",
    "label_possible_xdb",
    "label_possible_ctable",
    "label_possible_kw_exact",
    "is_poss_complete",
    "UAPAnnotation",
    "UAPSemiring",
    "UAPRelation",
    "UAPDatabase",
    "AggregateBound",
    "BoundedAggregateRow",
    "ua_aggregate",
    "AttributeLabel",
    "AttributeUARelation",
    "AttributeUADatabase",
]
