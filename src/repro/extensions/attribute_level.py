"""Attribute-level uncertainty annotations (finer-grained UA labels).

The paper labels whole tuples as certain or uncertain; its conclusion lists
"attribute level annotations to encode certainty at finer granularity" as
future work.  This module implements that extension:

* every best-guess tuple carries an :class:`AttributeLabel` consisting of an
  *existence* flag (the tuple appears in every possible world, possibly with
  different attribute values) and the set of *uncertain attributes* (whose
  value may differ between worlds),
* a tuple is *certain* exactly when it certainly exists and has no uncertain
  attribute -- which coincides with the paper's tuple-level labeling, so the
  model is backwards compatible,
* queries propagate both pieces of information.  The payoff is projection:
  projecting an uncertain tuple onto attributes that are individually certain
  yields a certain answer, eliminating exactly the false negatives the
  paper's Figure 15 experiment measures.

The labels produced by :meth:`AttributeUADatabase.from_xdb` are c-sound for
x-DBs: existence certainty requires a non-optional x-tuple and an attribute
is certain only when every alternative agrees on it, so any answer labeled
certain really does appear in every possible world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.db import algebra
from repro.db.expressions import Expression, RowEnvironment
from repro.db.relation import Row, _row_sort_key
from repro.db.schema import Attribute, RelationSchema
from repro.incomplete.vtable import NamedNull, VTableDatabase
from repro.incomplete.xdb import XDatabase


@dataclass(frozen=True)
class AttributeLabel:
    """Uncertainty label of one best-guess tuple.

    ``existence_certain`` states that the tuple (as an entity) appears in
    every possible world; ``uncertain_attributes`` lists the attributes whose
    value may differ across worlds.
    """

    existence_certain: bool
    uncertain_attributes: FrozenSet[str] = frozenset()
    # Lower-cased uncertain-attribute names, computed once per label:
    # ``attribute_certain`` runs per cell when labeling result rows.
    _lowered: FrozenSet[str] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_lowered",
            frozenset(a.lower() for a in self.uncertain_attributes))

    @property
    def certain(self) -> bool:
        """True when the exact tuple is a certain answer."""
        return self.existence_certain and not self.uncertain_attributes

    def attribute_certain(self, name: str) -> bool:
        """True when the attribute's value is the same in every world."""
        return name.lower() not in self._lowered

    def better_than(self, other: "AttributeLabel") -> bool:
        """Partial preference order used when merging duplicate rows."""
        if self.certain != other.certain:
            return self.certain
        if self.existence_certain != other.existence_certain:
            return self.existence_certain
        return len(self.uncertain_attributes) < len(other.uncertain_attributes)


class AttributeUARelation:
    """Best-guess rows labeled with attribute-level uncertainty."""

    def __init__(self, schema: RelationSchema,
                 data: Optional[Dict[Row, AttributeLabel]] = None) -> None:
        self.schema = schema
        self._data: Dict[Row, AttributeLabel] = {}
        for row, label in (data or {}).items():
            self.add_row(row, label)

    # -- construction ---------------------------------------------------------

    def add_row(self, values: Sequence[Any], label: AttributeLabel) -> None:
        """Add a best-guess row; duplicate rows keep the better label."""
        row = self.schema.validate_row(values)
        self._validate_label(label)
        existing = self._data.get(row)
        if existing is None or label.better_than(existing):
            self._data[row] = label

    def add_tuple(self, values: Sequence[Any], existence_certain: bool = False,
                  uncertain_attributes: Sequence[str] = ()) -> None:
        """Convenience wrapper building the label in place."""
        self.add_row(values, AttributeLabel(existence_certain, frozenset(uncertain_attributes)))

    def _validate_label(self, label: AttributeLabel) -> None:
        for attribute in label.uncertain_attributes:
            if not self.schema.has_attribute(attribute):
                raise ValueError(
                    f"label mentions unknown attribute {attribute!r} of "
                    f"relation {self.schema.name!r}"
                )

    # -- access ----------------------------------------------------------------

    def label(self, row: Sequence[Any]) -> Optional[AttributeLabel]:
        """The label of ``row`` (None if the row is absent)."""
        return self._data.get(tuple(row))

    def is_certain(self, row: Sequence[Any]) -> bool:
        """True if the exact row is labeled certain."""
        label = self.label(row)
        return label is not None and label.certain

    def rows(self) -> List[Row]:
        """All best-guess rows, in a deterministic order."""
        return sorted(self._data.keys(), key=_row_sort_key)

    def items(self) -> Iterator[Tuple[Row, AttributeLabel]]:
        """Iterate over ``(row, label)`` pairs."""
        return iter(self._data.items())

    def certain_rows(self) -> List[Row]:
        """Rows labeled certain (existence certain, no uncertain attribute)."""
        return [row for row, label in self._data.items() if label.certain]

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._data

    def __repr__(self) -> str:
        return f"<AttributeUARelation {self.schema.name} {len(self._data)} rows>"


class AttributeUADatabase:
    """A database of attribute-labeled best-guess relations."""

    def __init__(self, name: str = "attr_uadb") -> None:
        self.name = name
        self._relations: Dict[str, AttributeUARelation] = {}

    # -- population ---------------------------------------------------------------

    def add_relation(self, relation: AttributeUARelation) -> None:
        """Register a relation (case-insensitive name, must be fresh)."""
        key = relation.schema.name.lower()
        if key in self._relations:
            raise ValueError(f"relation {relation.schema.name!r} already exists")
        self._relations[key] = relation

    def create_relation(self, schema: RelationSchema) -> AttributeUARelation:
        """Create, register and return an empty relation."""
        relation = AttributeUARelation(schema)
        self.add_relation(relation)
        return relation

    def relation(self, name: str) -> AttributeUARelation:
        """Look up a relation by name."""
        return self._relations[name.lower()]

    def relation_names(self) -> Tuple[str, ...]:
        """Names of the registered relations."""
        return tuple(rel.schema.name for rel in self._relations.values())

    def __iter__(self) -> Iterator[AttributeUARelation]:
        return iter(self._relations.values())

    # -- labeling schemes ------------------------------------------------------------

    @classmethod
    def from_xdb(cls, xdb: XDatabase, name: Optional[str] = None) -> "AttributeUADatabase":
        """Attribute-level labeling of an x-DB's best-guess world.

        The best-guess alternative of every x-tuple becomes a row; attributes
        on which the alternatives disagree are marked uncertain and existence
        is certain exactly for non-optional x-tuples.
        """
        database = cls(name or f"{xdb.name}_attr_ua")
        for x_relation in xdb:
            relation = AttributeUARelation(x_relation.schema)
            attribute_names = x_relation.schema.attribute_names
            for x_tuple in x_relation:
                best = x_tuple.best_alternative()
                if best is None:
                    continue
                uncertain = frozenset(
                    attribute_names[index]
                    for index in range(len(attribute_names))
                    if any(alt[index] != best[index] for alt in x_tuple.alternatives)
                )
                relation.add_row(best, AttributeLabel(not x_tuple.optional, uncertain))
            database.add_relation(relation)
        return database

    @classmethod
    def from_vtable(cls, vtable_db: VTableDatabase, guesses: Optional[Dict[NamedNull, Any]] = None,
                    name: Optional[str] = None) -> "AttributeUADatabase":
        """Attribute-level labeling of a V-table / Codd table.

        Cells holding labeled nulls are uncertain attributes; ``guesses`` maps
        nulls to the best-guess value used in the materialized world (nulls
        without a guess stay as SQL NULL).
        """
        guesses = guesses or {}
        database = cls(name or f"{vtable_db.name}_attr_ua")
        for vtable in vtable_db:
            relation = AttributeUARelation(vtable.schema)
            attribute_names = vtable.schema.attribute_names
            for row in vtable:
                uncertain = frozenset(
                    attribute_names[index]
                    for index, value in enumerate(row)
                    if isinstance(value, NamedNull)
                )
                concrete = tuple(
                    guesses.get(value) if isinstance(value, NamedNull) else value
                    for value in row
                )
                relation.add_row(concrete, AttributeLabel(True, uncertain))
            database.add_relation(relation)
        return database

    # -- queries ------------------------------------------------------------------

    def query(self, plan: algebra.Operator) -> AttributeUARelation:
        """Evaluate a plan (selection, projection, join, cross, union, distinct)."""
        return _AttributeEvaluator(self).run(plan)

    def __repr__(self) -> str:
        return f"<AttributeUADatabase {self.name!r} {len(self._relations)} relations>"


class _AttributeEvaluator:
    """Evaluates algebra plans over attribute-labeled relations."""

    def __init__(self, database: AttributeUADatabase) -> None:
        self.database = database

    def run(self, plan: algebra.Operator) -> AttributeUARelation:
        method = getattr(self, f"_eval_{type(plan).__name__.lower()}", None)
        if method is None:
            raise ValueError(
                f"operator {type(plan).__name__} is not supported over "
                "attribute-labeled relations"
            )
        return method(plan)

    # -- leaves ---------------------------------------------------------------

    def _eval_relationref(self, plan: algebra.RelationRef) -> AttributeUARelation:
        relation = self.database.relation(plan.name)
        if plan.alias and plan.alias.lower() != plan.name.lower():
            renamed = AttributeUARelation(relation.schema.rename(plan.alias))
            for row, label in relation.items():
                renamed.add_row(row, label)
            return renamed
        return relation

    def _eval_qualify(self, plan: algebra.Qualify) -> AttributeUARelation:
        child = self.run(plan.child)
        attributes = [
            Attribute(f"{plan.qualifier}.{attr.name.split('.')[-1]}", attr.data_type)
            for attr in child.schema.attributes
        ]
        schema = RelationSchema(plan.qualifier, attributes)
        result = AttributeUARelation(schema)
        renames = dict(zip(child.schema.attribute_names, schema.attribute_names))
        for row, label in child.items():
            uncertain = frozenset(
                renames.get(attr, attr) for attr in label.uncertain_attributes
            )
            result.add_row(row, AttributeLabel(label.existence_certain, uncertain))
        return result

    # -- unary operators --------------------------------------------------------

    def _eval_selection(self, plan: algebra.Selection) -> AttributeUARelation:
        child = self.run(plan.child)
        names = child.schema.attribute_names
        referenced = _referenced_attributes(plan.predicate, names)
        result = AttributeUARelation(child.schema)
        for row, label in child.items():
            env = RowEnvironment(names, row)
            if plan.predicate.evaluate(env) is not True:
                continue
            # The predicate outcome could flip in another world if it reads an
            # uncertain attribute, so existence certainty requires certainty of
            # every referenced attribute.
            predicate_certain = all(label.attribute_certain(attr) for attr in referenced)
            result.add_row(row, AttributeLabel(
                label.existence_certain and predicate_certain,
                label.uncertain_attributes,
            ))
        return result

    def _eval_projection(self, plan: algebra.Projection) -> AttributeUARelation:
        child = self.run(plan.child)
        names = child.schema.attribute_names
        schema = RelationSchema(
            child.schema.name, [Attribute(name) for _, name in plan.items]
        )
        result = AttributeUARelation(schema)
        per_item_refs = [
            _referenced_attributes(expr, names) for expr, _ in plan.items
        ]
        for row, label in child.items():
            env = RowEnvironment(names, row)
            out_row = tuple(expr.evaluate(env) for expr, _ in plan.items)
            uncertain = frozenset(
                name for (expr, name), refs in zip(plan.items, per_item_refs)
                if any(not label.attribute_certain(attr) for attr in refs)
            )
            result.add_row(out_row, AttributeLabel(label.existence_certain, uncertain))
        return result

    def _eval_distinct(self, plan: algebra.Distinct) -> AttributeUARelation:
        # Rows are already de-duplicated; distinct is the identity here.
        return self.run(plan.child)

    # -- binary operators ---------------------------------------------------------

    def _eval_crossproduct(self, plan: algebra.CrossProduct) -> AttributeUARelation:
        return self._join(self.run(plan.left), self.run(plan.right), None)

    def _eval_join(self, plan: algebra.Join) -> AttributeUARelation:
        return self._join(self.run(plan.left), self.run(plan.right), plan.predicate)

    def _join(self, left: AttributeUARelation, right: AttributeUARelation,
              predicate: Optional[Expression]) -> AttributeUARelation:
        schema = left.schema.concat(right.schema)
        names = schema.attribute_names
        left_arity = left.schema.arity
        rename_left = dict(zip(left.schema.attribute_names, names[:left_arity]))
        rename_right = dict(zip(right.schema.attribute_names, names[left_arity:]))
        referenced = (
            _referenced_attributes(predicate, names) if predicate is not None else []
        )
        result = AttributeUARelation(schema)
        for left_row, left_label in left.items():
            for right_row, right_label in right.items():
                combined = left_row + right_row
                if predicate is not None:
                    if predicate.evaluate(RowEnvironment(names, combined)) is not True:
                        continue
                uncertain = frozenset(
                    {rename_left[a] for a in left_label.uncertain_attributes}
                    | {rename_right[a] for a in right_label.uncertain_attributes}
                )
                joined = AttributeLabel(
                    left_label.existence_certain and right_label.existence_certain,
                    uncertain,
                )
                if referenced and not all(joined.attribute_certain(a) for a in referenced):
                    joined = AttributeLabel(False, uncertain)
                result.add_row(combined, joined)
        return result

    def _eval_union(self, plan: algebra.Union) -> AttributeUARelation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        if left.schema.arity != right.schema.arity:
            raise ValueError("UNION requires union-compatible schemas")
        result = AttributeUARelation(left.schema)
        for row, label in left.items():
            result.add_row(row, label)
        rename = dict(zip(right.schema.attribute_names, left.schema.attribute_names))
        for row, label in right.items():
            uncertain = frozenset(rename.get(a, a) for a in label.uncertain_attributes)
            result.add_row(row, AttributeLabel(label.existence_certain, uncertain))
        return result


def _referenced_attributes(expression: Optional[Expression],
                           names: Sequence[str]) -> List[str]:
    """Schema attribute names referenced by ``expression`` (resolved best-effort)."""
    if expression is None:
        return []
    resolved: List[str] = []
    full = {name.lower(): name for name in names}
    bases: Dict[str, List[str]] = {}
    for name in names:
        bases.setdefault(name.lower().split(".")[-1], []).append(name)
    for column in expression.columns():
        key = column.full_name.lower()
        if key in full:
            resolved.append(full[key])
            continue
        candidates = bases.get(column.name.lower().split(".")[-1], [])
        if len(candidates) == 1:
            resolved.append(candidates[0])
        else:
            # Ambiguous or unknown references conservatively taint everything
            # they might denote.
            resolved.extend(candidates)
    return resolved
